//! The P language toolchain — a reproduction of "P: Safe Asynchronous
//! Event-Driven Programming" (PLDI 2013).
//!
//! P is a domain-specific language for asynchronous event-driven programs:
//! a program is a collection of state machines communicating through
//! events. This crate is the facade over the full toolchain:
//!
//! | Stage | Crate | Paper |
//! |---|---|---|
//! | parse | [`parser`] | §3, Figure 3 |
//! | static checks + ghost erasure | [`typecheck`] | §3.3 |
//! | operational semantics | [`semantics`] | §3.1, Figures 4–6 |
//! | systematic testing | [`checker`] | §5 |
//! | execution runtime | [`runtime`] | §4 |
//! | C code generation | [`codegen`] | §4 |
//! | benchmark corpus | [`corpus`] | §2, §4.1, §5, §6 |
//! | tracing + profiling | [`telemetry`] | §6 (measurement) |
//!
//! # Examples
//!
//! Compile, verify and run a program:
//!
//! ```
//! use p_core::Compiled;
//!
//! let src = r#"
//!     event inc;
//!     machine Counter {
//!         var n : int;
//!         state Run { on inc do bump; }
//!         action bump { n := n + 1; }
//!     }
//!     main Counter();
//! "#;
//! let compiled = Compiled::from_source(src).unwrap();
//!
//! // Systematic testing (§5): explore all schedules.
//! let report = compiled.verify();
//! assert!(report.passed());
//!
//! // Execution (§4): erase ghosts and run under the driver runtime.
//! let runtime = compiled.runtime().unwrap().start();
//! let id = runtime
//!     .create_machine("Counter", &[("n", p_core::Value::Int(0))])
//!     .unwrap();
//! runtime.add_event(id, "inc", p_core::Value::Null).unwrap();
//! assert_eq!(runtime.read_var(id, "n"), Some(p_core::Value::Int(1)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::error::Error;
use std::fmt;

pub use p_ast as ast;
pub use p_checker as checker;
pub use p_codegen as codegen;
pub use p_corpus as corpus;
pub use p_parser as parser;
pub use p_runtime as runtime;
pub use p_semantics as semantics;
pub use p_telemetry as telemetry;
pub use p_typecheck as typecheck;

pub use p_ast::Program;
pub use p_checker::{
    CheckerOptions, DelayReport, FaultKind, FaultReport, LivenessReport, Report, Verifier,
};
pub use p_codegen::COutput;
pub use p_runtime::{DriverHost, Runtime, RuntimeBuilder};
pub use p_semantics::{ForeignRegistry, LoweredProgram, MachineId, Value};
pub use p_telemetry::Telemetry;

/// Any failure along the compilation pipeline.
#[derive(Debug)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(p_parser::ParseError),
    /// The static checker rejected the program.
    Check(p_typecheck::CheckErrors),
    /// Lowering failed.
    Lower(p_semantics::LowerError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Check(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CompileError {}

/// A program that has passed the front end: parsed, statically checked,
/// and lowered to the executable table form (ghosts included — they are
/// needed for verification and erased only for execution/codegen).
#[derive(Debug)]
pub struct Compiled {
    program: Program,
    lowered: LoweredProgram,
    warnings: Vec<p_typecheck::Diagnostic>,
}

impl Compiled {
    /// Parses and checks P source text.
    ///
    /// # Errors
    ///
    /// Returns the first parse error, all checker errors, or a lowering
    /// failure.
    pub fn from_source(source: &str) -> Result<Compiled, CompileError> {
        let program = p_parser::parse(source).map_err(CompileError::Parse)?;
        Compiled::from_program(program)
    }

    /// Checks an already-parsed (or builder-made) program.
    ///
    /// # Errors
    ///
    /// Returns checker errors or a lowering failure.
    pub fn from_program(program: Program) -> Result<Compiled, CompileError> {
        let info = p_typecheck::check(&program).map_err(CompileError::Check)?;
        let lowered = p_semantics::lower(&program).map_err(CompileError::Lower)?;
        Ok(Compiled {
            program,
            lowered,
            warnings: info.warnings,
        })
    }

    /// The source-level program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The lowered (table-driven) program, ghosts included.
    pub fn lowered(&self) -> &LoweredProgram {
        &self.lowered
    }

    /// Checker warnings (e.g. shadowed action bindings).
    pub fn warnings(&self) -> &[p_typecheck::Diagnostic] {
        &self.warnings
    }

    /// A verifier over this program with default options.
    pub fn verifier(&self) -> Verifier<'_> {
        Verifier::new(&self.lowered)
    }

    /// Exhaustive systematic testing with default bounds (§5).
    pub fn verify(&self) -> Report {
        self.verifier().check_exhaustive()
    }

    /// Exhaustive systematic testing with `jobs` parallel worker
    /// threads over a sharded visited set. Explores the same states and
    /// returns the same verdict as [`Compiled::verify`]; `jobs <= 1`
    /// runs the sequential engine.
    pub fn verify_parallel(&self, jobs: usize) -> Report {
        self.verifier().check_exhaustive_parallel(jobs)
    }

    /// Delay-bounded systematic testing with the causal scheduler (§5).
    pub fn verify_delay_bounded(&self, delay_bound: usize) -> DelayReport {
        self.verifier().check_delay_bounded(delay_bound)
    }

    /// Bounded liveness checking (§3.2; the paper's future work).
    pub fn verify_liveness(&self) -> LivenessReport {
        self.verifier().check_liveness()
    }

    /// Systematic testing under environment-fault injection: the checker
    /// may drop, duplicate, or delay queued events, at most `budget`
    /// times per path (empty `kinds` = all fault kinds). Budget 0
    /// coincides with [`Compiled::verify`].
    pub fn verify_with_faults(&self, budget: usize, kinds: &[FaultKind]) -> FaultReport {
        self.verifier().check_with_faults(budget, kinds)
    }

    /// An execution runtime builder over the erased program (§4).
    ///
    /// # Errors
    ///
    /// Fails if the program has no real machines.
    pub fn runtime(&self) -> Result<RuntimeBuilder, p_runtime::RuntimeError> {
        p_runtime::Runtime::builder(&self.program)
    }

    /// Generates the C translation unit for the erased program (§4).
    ///
    /// # Errors
    ///
    /// Fails if the program has no real machines.
    pub fn emit_c(&self) -> Result<COutput, p_codegen::CodegenError> {
        p_codegen::generate_c(&self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_end_to_end() {
        let compiled = Compiled::from_source(p_corpus::PING_PONG_SRC).unwrap();
        assert!(compiled.warnings().is_empty());
        let report = compiled.verify();
        assert!(report.passed());
        let c = compiled.emit_c().unwrap();
        assert!(c.code.contains("PDriverDecl"));
    }

    #[test]
    fn parse_errors_are_reported() {
        match Compiled::from_source("event ;") {
            Err(CompileError::Parse(_)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn check_errors_are_reported() {
        let src = "machine M { var x : int; state S { entry { x := true; } } } main M();";
        match Compiled::from_source(src) {
            Err(CompileError::Check(e)) => assert!(e.error_count() > 0),
            other => panic!("expected check error, got {other:?}"),
        }
    }

    #[test]
    fn fault_injection_via_facade() {
        let compiled = Compiled::from_source(p_corpus::LOSSY_LINK_SRC).unwrap();
        assert!(compiled.verify_with_faults(0, &[]).report.passed());
        let faulty = compiled.verify_with_faults(1, &[FaultKind::Drop]);
        assert!(
            !faulty.report.passed(),
            "dropping cfg must break the handshake"
        );
        // The fault trace replays on a fresh verifier.
        let cx = faulty.report.counterexample.unwrap();
        assert!(compiled.verifier().replay(&cx).reproduced());
    }

    #[test]
    fn facade_reexports_are_usable() {
        let program = corpus::elevator();
        let compiled = Compiled::from_program(program).unwrap();
        let d0 = compiled.verify_delay_bounded(0);
        assert!(d0.report.passed());
    }
}
