//! `p` — the command-line front end of the P toolchain.
//!
//! ```text
//! p check FILE                      parse + static checks
//! p fmt FILE                        print the normalized program
//! p info FILE                       machines / states / transitions
//! p verify FILE [--delay N] [--max-states N] [--fine] [--jobs N] [--por]
//!              [--symmetry] [--compiled]
//!              [--faults N] [--fault-kinds drop,dup,delay]
//!              [--profile OUT.json] [--progress]
//!              [--checkpoint DIR] [--checkpoint-every N] [--resume DIR]
//!              [--mem-limit BYTES] [--abort-after N]
//! p liveness FILE                   bounded liveness check (§3.2)
//! p run FILE MACHINE EVENT[:INT]... create a machine and feed it events
//!       [--stats] [--shards N] [--trace OUT.json] [--metrics OUT.json]
//! p compile FILE [-o OUT.c]         generate the C translation unit (§4)
//! p dot FILE [MACHINE] [-o OUT.dot] state-diagram export
//! ```

use std::fs;
use std::process::ExitCode;

use p_core::{CheckerOptions, Compiled, Value};

/// Exit code for a property violation (counterexample found).
const EXIT_VIOLATION: u8 = 1;
/// Exit code for usage, I/O, and checkpoint-compatibility errors.
const EXIT_ERROR: u8 = 2;
/// Exit code for an interrupted run (SIGINT/SIGTERM/`--abort-after`);
/// a final checkpoint was written when one was configured.
const EXIT_INTERRUPTED: u8 = 3;

/// SIGINT/SIGTERM plumbing. Handlers only flip an atomic flag (the one
/// async-signal-safe thing worth doing); the checker polls it at its
/// control points and shuts down with a final checkpoint.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    const SIGINT: i32 = 2;
    const SIGPIPE: i32 = 13;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    static INTERRUPT: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_signal(_sig: i32) {
        if let Some(flag) = INTERRUPT.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Restores default SIGPIPE so `p verify ... | head` dies quietly
    /// instead of panicking on a broken stdout.
    pub fn default_sigpipe() {
        unsafe {
            signal(SIGPIPE, SIG_DFL);
        }
    }

    /// Installs the SIGINT/SIGTERM handler and returns the shared flag.
    pub fn install_interrupt() -> Arc<AtomicBool> {
        let flag = INTERRUPT
            .get_or_init(|| Arc::new(AtomicBool::new(false)))
            .clone();
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        flag
    }
}

#[cfg(not(unix))]
mod signals {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub fn default_sigpipe() {}

    pub fn install_interrupt() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }
}

fn main() -> ExitCode {
    signals::default_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    let ok = |()| ExitCode::SUCCESS;
    match command.as_str() {
        "check" => check(rest).map(ok),
        "fmt" => fmt(rest).map(ok),
        "info" => info(rest).map(ok),
        "verify" => verify(rest),
        "liveness" => liveness(rest),
        "run" => run_program(rest).map(ok),
        "compile" => compile(rest).map(ok),
        "dot" => dot(rest).map(ok),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: p <check|fmt|info|verify|liveness|run|compile|dot> FILE [options]\n\
     \n\
     p check FILE                      parse + static checks\n\
     p fmt FILE                        print the normalized program\n\
     p info FILE                       machines / states / transitions\n\
     p verify FILE [--delay N] [--max-states N] [--fine] [--jobs N] [--por]\n\
                   [--symmetry] [--compiled]\n\
                   [--faults N] [--fault-kinds drop,dup,delay]\n\
                   [--profile OUT.json] [--progress]\n\
                   [--checkpoint DIR] [--checkpoint-every N] [--resume DIR]\n\
                   [--mem-limit BYTES[k|m|g]] [--abort-after N]\n\
                   exit codes: 0 passed, 1 violation, 2 error, 3 interrupted\n\
     p liveness FILE                   bounded liveness check\n\
     p run FILE MACHINE EVENT[:INT]... create a machine, feed it events\n\
           [--stats] [--shards N] [--trace OUT.json] [--metrics OUT.json]\n\
           --shards N > 1 drives the sharded executor instead of the\n\
           in-process runtime (same output shape, per-shard stats)\n\
     p compile FILE [-o OUT.c]         generate C (section 4 layout)\n\
     p dot FILE [MACHINE] [-o OUT.dot] state-diagram export"
        .to_owned()
}

fn read_source(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load(path: &str) -> Result<(String, Compiled), String> {
    let source = read_source(path)?;
    let compiled = match Compiled::from_source(&source) {
        Ok(c) => c,
        Err(p_core::CompileError::Parse(e)) => {
            return Err(format!("{path}:{}", e.render(&source)));
        }
        Err(e) => return Err(e.to_string()),
    };
    Ok((source, compiled))
}

fn check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let (_, compiled) = load(path)?;
    for w in compiled.warnings() {
        println!("{w}");
    }
    println!(
        "{path}: OK ({} machine(s), {} event(s), {} warning(s))",
        compiled.program().machines.len(),
        compiled.program().events.len(),
        compiled.warnings().len()
    );
    Ok(())
}

fn fmt(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let (_, compiled) = load(path)?;
    print!("{}", p_core::ast::print_program(compiled.program()));
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let (_, compiled) = load(path)?;
    let p = compiled.program();
    println!("{path}:");
    println!("  events: {}", p.events.len());
    println!(
        "  machines: {} ({} ghost)",
        p.machines.len(),
        p.ghost_machines().count()
    );
    for m in &p.machines {
        println!(
            "    {}{}: {} states, {} transitions, {} actions, {} vars",
            if m.ghost { "ghost " } else { "" },
            p.name(m.name),
            m.states.len(),
            m.transition_count(),
            m.actions.len(),
            m.vars.len()
        );
    }
    println!(
        "  total: {} states, {} transitions",
        p.total_states(),
        p.total_transitions()
    );
    Ok(())
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or_else(usage)?;
    let (_, compiled) = load(path)?;

    let mut delay: Option<usize> = None;
    let mut faults: Option<usize> = None;
    let mut fault_kinds: Vec<p_core::FaultKind> = Vec::new();
    let mut profile: Option<String> = None;
    let mut progress = false;
    let mut checkpoint_dir: Option<String> = None;
    let mut checkpoint_every: Option<usize> = None;
    let mut abort_after: Option<usize> = None;
    let mut use_compiled = false;
    let mut options = CheckerOptions::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--delay" => {
                delay = Some(parse_flag_value(args, &mut i, "--delay")?);
            }
            "--profile" => {
                profile = Some(parse_flag_path(args, &mut i, "--profile")?);
            }
            "--checkpoint" => {
                checkpoint_dir = Some(parse_flag_path(args, &mut i, "--checkpoint")?);
            }
            "--checkpoint-every" => {
                let every = parse_flag_value(args, &mut i, "--checkpoint-every")?;
                if every == 0 {
                    return Err("--checkpoint-every must be at least 1".to_owned());
                }
                checkpoint_every = Some(every);
            }
            "--resume" => {
                options.resume = Some(parse_flag_path(args, &mut i, "--resume")?.into());
            }
            "--abort-after" => {
                abort_after = Some(parse_flag_value(args, &mut i, "--abort-after")?);
            }
            "--mem-limit" => {
                let value = args
                    .get(i + 1)
                    .ok_or("--mem-limit needs a value".to_owned())?;
                options.mem_limit = Some(parse_mem_limit(value)?);
                i += 2;
            }
            "--progress" => {
                progress = true;
                i += 1;
            }
            "--faults" => {
                faults = Some(parse_flag_value(args, &mut i, "--faults")?);
            }
            "--fault-kinds" => {
                let list = args
                    .get(i + 1)
                    .ok_or("--fault-kinds needs a value".to_owned())?;
                fault_kinds = p_core::FaultKind::parse_list(list)
                    .map_err(|e| format!("--fault-kinds: {e}"))?;
                i += 2;
            }
            "--max-states" => {
                options.max_states = parse_flag_value(args, &mut i, "--max-states")?;
            }
            "--fine" => {
                options.granularity = p_core::semantics::Granularity::Fine;
                i += 1;
            }
            "--jobs" => {
                options.jobs = parse_flag_value(args, &mut i, "--jobs")?;
                if options.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--por" => {
                options.por = true;
                i += 1;
            }
            "--symmetry" => {
                options.symmetry = true;
                i += 1;
            }
            "--compiled" => {
                use_compiled = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if delay.is_some() && faults.is_some() {
        return Err("--delay and --faults cannot be combined".to_owned());
    }
    if options.jobs > 1 && (delay.is_some() || faults.is_some()) {
        return Err(
            "--jobs applies to the exhaustive search only (not --delay/--faults)".to_owned(),
        );
    }
    if faults.is_none() && !fault_kinds.is_empty() {
        return Err("--fault-kinds needs --faults N".to_owned());
    }
    if options.por && (delay.is_some() || faults.is_some()) {
        return Err(
            "--por applies to the exhaustive search only (not --delay/--faults)".to_owned(),
        );
    }
    if options.symmetry && (delay.is_some() || faults.is_some()) {
        return Err(
            "--symmetry applies to the exhaustive search only (not --delay/--faults)".to_owned(),
        );
    }
    if use_compiled && matches!(options.granularity, p_core::semantics::Granularity::Fine) {
        return Err(
            "--compiled accelerates atomic runs and cannot be combined with --fine".to_owned(),
        );
    }
    if (profile.is_some() || progress) && (delay.is_some() || faults.is_some()) {
        return Err(
            "--profile/--progress apply to the exhaustive search only (not --delay/--faults)"
                .to_owned(),
        );
    }
    let robustness = checkpoint_dir.is_some()
        || checkpoint_every.is_some()
        || abort_after.is_some()
        || options.resume.is_some()
        || options.mem_limit.is_some();
    if robustness && (delay.is_some() || faults.is_some()) {
        return Err(
            "--checkpoint/--resume/--mem-limit/--abort-after apply to the \
                    exhaustive search only (not --delay/--faults)"
                .to_owned(),
        );
    }
    if checkpoint_every.is_some() && checkpoint_dir.is_none() && options.resume.is_none() {
        return Err("--checkpoint-every needs --checkpoint DIR (or --resume DIR)".to_owned());
    }
    if abort_after.is_some() && checkpoint_dir.is_none() && options.resume.is_none() {
        return Err("--abort-after needs --checkpoint DIR (or --resume DIR)".to_owned());
    }
    // Resuming keeps checkpointing into the same directory unless the
    // caller pointed --checkpoint elsewhere.
    let checkpoint_dir = checkpoint_dir
        .map(std::path::PathBuf::from)
        .or_else(|| options.resume.clone());
    if let Some(dir) = checkpoint_dir {
        let mut policy = p_core::checker::CheckpointPolicy::new(dir);
        if let Some(every) = checkpoint_every {
            policy.every_states = every;
        }
        policy.abort_after_states = abort_after;
        options.checkpoint = Some(policy);
    }

    let (telemetry, ring) = if profile.is_some() || progress {
        let mut builder = p_core::Telemetry::builder();
        if progress {
            builder = builder.progress(std::time::Duration::from_millis(100));
        }
        let (t, ring) = builder.build();
        (t, ring)
    } else {
        (p_core::Telemetry::disabled(), None)
    };

    let mode = checker_mode(&options);
    let workers = options.jobs.max(1) as u64;
    if delay.is_none() && faults.is_none() {
        options.interrupt = Some(signals::install_interrupt());
    }
    let ckpt_dir = options.checkpoint.as_ref().map(|p| p.dir.clone());
    let mut verifier = compiled
        .verifier()
        .with_options(options)
        .with_telemetry(telemetry.clone());
    if use_compiled {
        let digest = p_core::semantics::compiled::program_digest(compiled.lowered());
        let table = p_core::corpus::compiled::compiled_for_digest(digest).ok_or_else(|| {
            format!(
                "--compiled: no ahead-of-time compiled module matches this program \
                 (digest {digest:032x}); only corpus programs ship checked-in tables \
                 — regenerate them with CORPUS_REGEN=1 cargo test -p p-corpus"
            )
        })?;
        verifier = verifier.with_compiled(table).map_err(|e| e.to_string())?;
        println!("backend: compiled (digest {digest:032x})");
    }
    let mut interrupted = false;
    let (passed, stats, counterexample, complete) = match (delay, faults) {
        (None, None) => {
            let r = verifier.try_check_exhaustive().map_err(|e| e.to_string())?;
            interrupted = r.interrupted;
            (r.passed(), r.stats, r.counterexample, r.complete)
        }
        (Some(d), _) => {
            let r = verifier
                .try_check_delay_bounded(d)
                .map_err(|e| e.to_string())?;
            println!("delay bound {d}, {} scheduler node(s)", r.scheduler_nodes);
            (
                r.report.passed(),
                r.report.stats,
                r.report.counterexample,
                r.report.complete,
            )
        }
        (None, Some(budget)) => {
            let r = verifier
                .try_check_with_faults(budget, &fault_kinds)
                .map_err(|e| e.to_string())?;
            println!(
                "fault budget {budget} ({}), {} fault node(s), {} injection(s) explored",
                r.kinds
                    .iter()
                    .map(|k| k.tag())
                    .collect::<Vec<_>>()
                    .join(","),
                r.fault_nodes,
                r.fault_transitions
            );
            (
                r.report.passed(),
                r.report.stats,
                r.report.counterexample,
                r.report.complete,
            )
        }
    };

    if let Some(target) = &profile {
        write_profile(
            target,
            path,
            mode,
            workers,
            &telemetry,
            ring.as_deref(),
            &stats,
            passed,
            complete,
        )?;
        println!("wrote {target}");
    }

    println!("{stats}");
    match counterexample {
        None if interrupted => {
            match &ckpt_dir {
                Some(dir) => println!(
                    "{path}: INTERRUPTED (checkpoint written to {}; continue with \
                     --resume {0})",
                    dir.display()
                ),
                None => println!("{path}: INTERRUPTED (no --checkpoint configured)"),
            }
            Ok(ExitCode::from(EXIT_INTERRUPTED))
        }
        None => {
            println!("{path}: PASSED");
            Ok(ExitCode::SUCCESS)
        }
        Some(cx) => {
            println!("{path}: FAILED\n{cx}");
            let replayed = compiled.verifier().replay(&cx).reproduced();
            println!(
                "replay: {}",
                if replayed { "reproduced" } else { "DIVERGED" }
            );
            Ok(ExitCode::from(EXIT_VIOLATION))
        }
    }
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `--mem-limit 32m`.
fn parse_mem_limit(value: &str) -> Result<usize, String> {
    let (digits, shift) = match value.chars().last() {
        Some('k' | 'K') => (&value[..value.len() - 1], 10),
        Some('m' | 'M') => (&value[..value.len() - 1], 20),
        Some('g' | 'G') => (&value[..value.len() - 1], 30),
        _ => (value, 0),
    };
    let base: usize = digits
        .parse()
        .map_err(|_| format!("--mem-limit: `{value}` is not a byte count"))?;
    base.checked_mul(1usize << shift)
        .filter(|&b| b > 0)
        .ok_or_else(|| format!("--mem-limit: `{value}` is out of range"))
}

fn parse_flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<usize, String> {
    let value = args
        .get(*i + 1)
        .ok_or_else(|| format!("{flag} needs a value"))?;
    let parsed = value
        .parse()
        .map_err(|_| format!("{flag}: `{value}` is not a number"))?;
    *i += 2;
    Ok(parsed)
}

fn parse_flag_path(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    let value = args
        .get(*i + 1)
        .ok_or_else(|| format!("{flag} needs a path"))?
        .clone();
    *i += 2;
    Ok(value)
}

/// The `mode` tag stamped into profile/bench rows for this option set.
fn checker_mode(options: &CheckerOptions) -> &'static str {
    match (options.por, options.symmetry, options.jobs > 1) {
        (true, true, _) => "por+symmetry",
        (false, true, _) => "symmetry",
        (true, false, _) => "por",
        (false, false, true) => "parallel",
        (false, false, false) => "exhaustive",
    }
}

/// Bare file name without the extension, for labeling profile rows.
fn file_stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_owned())
}

fn stats_to_metrics(
    name: &str,
    mode: &str,
    stats: &p_core::checker::ExplorationStats,
    workers: u64,
    passed: bool,
    complete: bool,
) -> p_core::telemetry::ExplorationMetrics {
    p_core::telemetry::ExplorationMetrics {
        name: name.to_owned(),
        mode: mode.to_owned(),
        states: stats.unique_states as u64,
        transitions: stats.transitions as u64,
        seconds: stats.duration.as_secs_f64(),
        stored_bytes: stats.stored_bytes as u64,
        max_depth: stats.max_depth as u64,
        dedup_hits: stats.dedup_hits as u64,
        sleep_pruned: stats.sleep_pruned as u64,
        symmetry_merges: stats.symmetry_merges as u64,
        workers,
        spilled_states: stats.spilled_states as u64,
        spill_bytes: stats.spill_bytes,
        cold_hits: stats.cold_hits,
        passed,
        complete,
        exec_seconds: stats.phases.exec as f64 / 1e9,
        digest_seconds: stats.phases.digest as f64 / 1e9,
        clone_seconds: stats.phases.clone as f64 / 1e9,
        canon_seconds: stats.phases.canon as f64 / 1e9,
        table_seconds: stats.phases.table as f64 / 1e9,
    }
}

/// Writes the `--profile` document: a Chrome-loadable trace with the
/// exploration snapshots, the metrics report, and the final metrics row
/// riding along as extra top-level keys.
#[allow(clippy::too_many_arguments)]
fn write_profile(
    target: &str,
    source_path: &str,
    mode: &str,
    workers: u64,
    telemetry: &p_core::Telemetry,
    ring: Option<&p_core::telemetry::RingRecorder>,
    stats: &p_core::checker::ExplorationStats,
    passed: bool,
    complete: bool,
) -> Result<(), String> {
    use p_core::telemetry::json::{num, str as jstr};
    let records = ring
        .map(p_core::telemetry::RingRecorder::drain)
        .unwrap_or_default();
    let metrics = stats_to_metrics(
        &file_stem(source_path),
        mode,
        stats,
        workers,
        passed,
        complete,
    );
    let doc = p_core::telemetry::chrome::chrome_document(
        &records,
        telemetry
            .metrics()
            .map(p_core::telemetry::MetricsRegistry::report),
        vec![
            ("exploration", metrics.to_json()),
            ("source", jstr(source_path)),
            ("dropped_records", num(telemetry.dropped_records() as f64)),
        ],
    );
    fs::write(target, doc.render_pretty()).map_err(|e| format!("cannot write {target}: {e}"))
}

fn liveness(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or_else(usage)?;
    let (_, compiled) = load(path)?;
    let report = compiled.verify_liveness();
    println!(
        "{} state(s), complete = {}",
        report.stats.unique_states, report.complete
    );
    if report.passed() {
        println!("{path}: no liveness violations");
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &report.violations {
            println!("violation: {v}");
        }
        eprintln!("error: {} liveness violation(s)", report.violations.len());
        Ok(ExitCode::from(EXIT_VIOLATION))
    }
}

fn run_program(args: &[String]) -> Result<(), String> {
    let mut stats = false;
    let mut shards = 1usize;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => {
                stats = true;
                i += 1;
            }
            "--shards" => {
                shards = parse_flag_value(args, &mut i, "--shards")?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
            }
            "--trace" => {
                trace = Some(parse_flag_path(args, &mut i, "--trace")?);
            }
            "--metrics" => {
                metrics = Some(parse_flag_path(args, &mut i, "--metrics")?);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let path = positional.first().copied().ok_or_else(usage)?;
    let machine = positional
        .get(1)
        .copied()
        .ok_or("run needs a machine name".to_owned())?;
    let (_, compiled) = load(path)?;

    let (telemetry, ring) = if trace.is_some() || metrics.is_some() {
        let (t, ring) = p_core::Telemetry::builder().build();
        (t, ring)
    } else {
        (p_core::Telemetry::disabled(), None)
    };
    if shards > 1 {
        return run_sharded(
            path,
            &compiled,
            machine,
            &positional,
            shards,
            stats,
            &trace,
            &metrics,
            telemetry,
            ring,
        );
    }
    let runtime = {
        let mut builder = compiled.runtime().map_err(|e| e.to_string())?;
        builder.telemetry(telemetry.clone());
        builder.start()
    };

    let id = runtime
        .create_machine(machine, &[])
        .map_err(|e| e.to_string())?;
    println!(
        "created {machine} {id}, state = {}",
        runtime.current_state(id).unwrap_or_default()
    );
    for spec in &positional[2..] {
        let (event, payload) = parse_event_spec(spec)?;
        runtime
            .add_event(id, event, payload)
            .map_err(|e| e.to_string())?;
        println!(
            "  {spec:<24} -> state = {}, queue = {}",
            runtime
                .current_state(id)
                .unwrap_or_else(|| "<deleted>".into()),
            runtime.queue_len(id).unwrap_or(0)
        );
    }

    if stats {
        println!("{}", runtime.stats().to_json().render_pretty());
    }
    let metrics_report = telemetry
        .metrics()
        .map(p_core::telemetry::MetricsRegistry::report);
    if let Some(target) = &trace {
        use p_core::telemetry::json::{num, str as jstr};
        let records = ring
            .as_deref()
            .map(p_core::telemetry::RingRecorder::drain)
            .unwrap_or_default();
        let doc = p_core::telemetry::chrome::chrome_document(
            &records,
            metrics_report.clone(),
            vec![
                ("source", jstr(path)),
                ("stats", runtime.stats().to_json()),
                ("dropped_records", num(telemetry.dropped_records() as f64)),
            ],
        );
        fs::write(target, doc.render_pretty())
            .map_err(|e| format!("cannot write {target}: {e}"))?;
        println!("wrote {target}");
    }
    if let Some(target) = &metrics {
        let report = metrics_report.unwrap_or_else(|| p_core::telemetry::json::obj(vec![]));
        fs::write(target, report.render_pretty())
            .map_err(|e| format!("cannot write {target}: {e}"))?;
        println!("wrote {target}");
    }
    Ok(())
}

/// Splits a `EVENT` / `EVENT:INT` argument into name and payload.
fn parse_event_spec(spec: &str) -> Result<(&str, Value), String> {
    match spec.split_once(':') {
        None => Ok((spec, Value::Null)),
        Some((e, v)) => Ok((
            e,
            Value::Int(
                v.parse()
                    .map_err(|_| format!("payload `{v}` is not an integer"))?,
            ),
        )),
    }
}

/// `p run --shards N` with N > 1: the same create-and-feed loop driven
/// through the sharded executor. Each injection is awaited (the executor
/// delivers asynchronously) before its state line prints, so the output
/// keeps the single-runtime shape.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    path: &str,
    compiled: &Compiled,
    machine: &str,
    positional: &[&String],
    shards: usize,
    stats: bool,
    trace: &Option<String>,
    metrics: &Option<String>,
    telemetry: p_core::Telemetry,
    ring: Option<std::sync::Arc<p_core::telemetry::RingRecorder>>,
) -> Result<(), String> {
    use p_core::runtime::{Executor, Injection};

    let exec = Executor::builder(compiled.program())
        .map_err(|e| e.to_string())?
        .shards(shards)
        .telemetry(telemetry.clone())
        .start();
    let id = exec
        .create_machine(machine, &[])
        .map_err(|e| e.to_string())?;
    println!(
        "created {machine} {id} ({} shard(s)), state = {}",
        exec.shards(),
        exec.current_state(id).unwrap_or_default()
    );
    for spec in positional.iter().skip(2) {
        let (event, payload) = parse_event_spec(spec)?;
        let before = exec.events_processed();
        exec.inject(Injection::new(id, event, payload))
            .map_err(|e| e.to_string())?;
        // Await the delivery so the printed state reflects this event.
        // Bounded wait: a quarantined machine never processes it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while exec.events_processed() <= before && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        println!(
            "  {spec:<24} -> state = {}, queue = {}",
            exec.current_state(id).unwrap_or_else(|| "<deleted>".into()),
            exec.queue_len(id).unwrap_or(0)
        );
    }

    let exec_stats = exec.stats();
    if stats {
        println!("{}", exec_stats.to_json().render_pretty());
    }
    exec.shutdown().map_err(|e| e.to_string())?;
    let metrics_report = telemetry
        .metrics()
        .map(p_core::telemetry::MetricsRegistry::report);
    if let Some(target) = trace {
        use p_core::telemetry::json::{num, str as jstr};
        let records = ring
            .as_deref()
            .map(p_core::telemetry::RingRecorder::drain)
            .unwrap_or_default();
        let doc = p_core::telemetry::chrome::chrome_document(
            &records,
            metrics_report.clone(),
            vec![
                ("source", jstr(path)),
                ("stats", exec_stats.to_json()),
                ("dropped_records", num(telemetry.dropped_records() as f64)),
            ],
        );
        fs::write(target, doc.render_pretty())
            .map_err(|e| format!("cannot write {target}: {e}"))?;
        println!("wrote {target}");
    }
    if let Some(target) = metrics {
        let report = metrics_report.unwrap_or_else(|| p_core::telemetry::json::obj(vec![]));
        fs::write(target, report.render_pretty())
            .map_err(|e| format!("cannot write {target}: {e}"))?;
        println!("wrote {target}");
    }
    Ok(())
}

fn compile(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let (_, compiled) = load(path)?;
    let out = compiled.emit_c().map_err(|e| e.to_string())?;
    match output_flag(args)? {
        Some(target) => {
            fs::write(&target, &out.code).map_err(|e| format!("cannot write {target}: {e}"))?;
            println!(
                "wrote {target}: {} lines, {} functions, {} states",
                out.stats.lines, out.stats.functions, out.stats.states
            );
        }
        None => print!("{}", out.code),
    }
    Ok(())
}

fn dot(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let (_, compiled) = load(path)?;
    // Optional machine name (any non-flag second argument).
    let machine = args.get(1).filter(|a| !a.starts_with('-'));
    let rendered = match machine {
        Some(name) => {
            p_core::codegen::machine_to_dot(compiled.program(), name).map_err(|e| e.to_string())?
        }
        None => p_core::codegen::program_to_dot(compiled.program()),
    };
    match output_flag(args)? {
        Some(target) => {
            fs::write(&target, &rendered).map_err(|e| format!("cannot write {target}: {e}"))?;
            println!("wrote {target}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn output_flag(args: &[String]) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == "-o") {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or("-o needs a path".to_owned()),
    }
}
