//! Recursive-descent parser for the textual P syntax.
//!
//! The grammar (a concrete rendering of Figure 3 plus the paper's sugar) is
//! documented in the crate root.

use p_ast::{
    ActionBinding, ActionDecl, BinOp, EventDecl, Expr, ExprKind, ForeignFnDecl, ForeignParam,
    Initializer, Interner, MachineDecl, MainDecl, Program, Span, StateDecl, Stmt, StmtKind, Symbol,
    TransitionDecl, TransitionKind, Ty, UnOp, VarDecl,
};

use crate::lexer::{lex, Token, TokenKind};
use crate::ParseError;

/// Words that cannot be used as identifiers.
const KEYWORDS: &[&str] = &[
    "event", "machine", "ghost", "var", "action", "state", "defer", "postpone", "entry", "exit",
    "on", "goto", "push", "do", "foreign", "fn", "main", "skip", "new", "delete", "send", "raise",
    "leave", "return", "assert", "if", "else", "while", "call", "this", "msg", "arg", "null",
    "true", "false", "void", "bool", "int", "byte", "id",
];

/// Parses a complete P program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered. Semantic
/// validation (unknown names, type errors, ghost-erasure violations) is the
/// job of `p-typecheck`, not the parser.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        source,
        tokens,
        pos: 0,
        interner: Interner::new(),
    };
    parser.program()
}

struct Parser<'s> {
    source: &'s str,
    tokens: Vec<Token>,
    pos: usize,
    interner: Interner,
}

impl Parser<'_> {
    fn peek(&self) -> Token {
        self.tokens[self.pos]
    }

    fn peek2(&self) -> Token {
        self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos];
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn text(&self, t: Token) -> &str {
        t.text(self.source)
    }

    /// Whether the current token is the identifier-keyword `kw`.
    fn at_kw(&self, kw: &str) -> bool {
        let t = self.peek();
        t.kind == TokenKind::Ident && self.text(t) == kw
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Token, ParseError> {
        if self.at_kw(kw) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(self.err_at(t, &format!("expected keyword `{kw}`")))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(self.err_at(t, &format!("expected {}", kind.describe())))
        }
    }

    fn err_at(&self, t: Token, what: &str) -> ParseError {
        let found = if t.kind == TokenKind::Eof {
            "end of input".to_owned()
        } else {
            format!("`{}`", self.text(t))
        };
        ParseError::new(format!("{what}, found {found}"), t.span)
    }

    /// Parses a non-keyword identifier and interns it.
    fn name(&mut self) -> Result<(Symbol, Span), ParseError> {
        let t = self.peek();
        if t.kind != TokenKind::Ident {
            return Err(self.err_at(t, "expected identifier"));
        }
        let text = self.text(t).to_owned();
        if KEYWORDS.contains(&text.as_str()) {
            return Err(self.err_at(t, "expected identifier (this word is reserved)"));
        }
        self.bump();
        Ok((self.interner.intern(&text), t.span))
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        let t = self.peek();
        if t.kind == TokenKind::Ident {
            if let Some(ty) = Ty::from_keyword(self.text(t)) {
                self.bump();
                return Ok(ty);
            }
        }
        Err(self.err_at(t, "expected type (void, bool, int, event, id)"))
    }

    // ----- program structure -------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut events = Vec::new();
        let mut machines = Vec::new();
        let mut main = None;

        loop {
            let t = self.peek();
            if t.kind == TokenKind::Eof {
                break;
            }
            if self.at_kw("event") {
                events.push(self.event_decl()?);
            } else if self.at_kw("machine") || self.at_kw("ghost") {
                machines.push(self.machine_decl()?);
            } else if self.at_kw("main") {
                if main.is_some() {
                    return Err(self.err_at(t, "duplicate `main` declaration"));
                }
                main = Some(self.main_decl()?);
            } else {
                return Err(self.err_at(t, "expected `event`, `machine`, `ghost` or `main`"));
            }
        }

        let main = main.ok_or_else(|| {
            ParseError::new(
                "program is missing its `main` declaration".to_owned(),
                self.peek().span,
            )
        })?;
        if machines.is_empty() {
            return Err(ParseError::new(
                "program declares no machines".to_owned(),
                self.peek().span,
            ));
        }

        Ok(Program {
            events,
            machines,
            main,
            interner: std::mem::take(&mut self.interner),
        })
    }

    fn event_decl(&mut self) -> Result<EventDecl, ParseError> {
        let start = self.expect_kw("event")?.span;
        let (name, _) = self.name()?;
        let payload = if self.eat(TokenKind::Colon) {
            self.ty()?
        } else {
            Ty::Void
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(EventDecl {
            name,
            payload,
            span: start.merge(end),
        })
    }

    fn main_decl(&mut self) -> Result<MainDecl, ParseError> {
        let start = self.expect_kw("main")?.span;
        let (machine, _) = self.name()?;
        self.expect(TokenKind::LParen)?;
        let inits = self.initializer_list()?;
        self.expect(TokenKind::RParen)?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(MainDecl {
            machine,
            inits,
            span: start.merge(end),
        })
    }

    fn initializer_list(&mut self) -> Result<Vec<Initializer>, ParseError> {
        let mut inits = Vec::new();
        if self.peek().kind == TokenKind::RParen {
            return Ok(inits);
        }
        loop {
            let (var, _) = self.name()?;
            self.expect(TokenKind::Eq)?;
            let value = self.expr()?;
            inits.push(Initializer { var, value });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok(inits)
    }

    fn machine_decl(&mut self) -> Result<MachineDecl, ParseError> {
        let ghost = self.eat_kw("ghost");
        let start = self.expect_kw("machine")?.span;
        let (name, _) = self.name()?;
        self.expect(TokenKind::LBrace)?;

        let mut decl = MachineDecl {
            name,
            ghost,
            vars: Vec::new(),
            actions: Vec::new(),
            states: Vec::new(),
            transitions: Vec::new(),
            bindings: Vec::new(),
            foreign: Vec::new(),
            span: start,
        };

        loop {
            let t = self.peek();
            if t.kind == TokenKind::RBrace {
                break;
            }
            if self.at_kw("var") || (self.at_kw("ghost") && self.text(self.peek2()) == "var") {
                let ghost_var = self.eat_kw("ghost");
                self.expect_kw("var")?;
                loop {
                    let (vname, vspan) = self.name()?;
                    self.expect(TokenKind::Colon)?;
                    let ty = self.ty()?;
                    decl.vars.push(VarDecl {
                        name: vname,
                        ty,
                        ghost: ghost_var,
                        span: vspan,
                    });
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Semi)?;
            } else if self.at_kw("action") {
                self.bump();
                let (aname, aspan) = self.name()?;
                let body = self.block()?;
                decl.actions.push(ActionDecl {
                    name: aname,
                    body,
                    span: aspan,
                });
            } else if self.at_kw("state") {
                self.state_decl(&mut decl)?;
            } else if self.at_kw("foreign") {
                decl.foreign.push(self.foreign_decl()?);
            } else {
                return Err(self.err_at(
                    t,
                    "expected `var`, `ghost var`, `action`, `state`, `foreign` or `}`",
                ));
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        decl.span = start.merge(end);
        Ok(decl)
    }

    fn foreign_decl(&mut self) -> Result<ForeignFnDecl, ParseError> {
        let start = self.expect_kw("foreign")?.span;
        self.expect_kw("fn")?;
        let (name, _) = self.name()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                // `name : type` (usable from a model body) or a bare type.
                let t = self.peek();
                let is_type_kw =
                    t.kind == TokenKind::Ident && Ty::from_keyword(self.text(t)).is_some();
                if is_type_kw {
                    params.push(ForeignParam::unnamed(self.ty()?));
                } else {
                    let (pname, _) = self.name()?;
                    self.expect(TokenKind::Colon)?;
                    params.push(ForeignParam::named(pname, self.ty()?));
                }
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.eat(TokenKind::Colon) {
            self.ty()?
        } else {
            Ty::Void
        };
        let (model_body, end) = if self.peek().kind == TokenKind::LBrace {
            let body = self.block()?;
            (Some(body), self.tokens[self.pos - 1].span)
        } else {
            (None, self.expect(TokenKind::Semi)?.span)
        };
        Ok(ForeignFnDecl {
            name,
            params,
            ret,
            model_body,
            span: start.merge(end),
        })
    }

    fn state_decl(&mut self, machine: &mut MachineDecl) -> Result<(), ParseError> {
        let start = self.expect_kw("state")?.span;
        let (name, _) = self.name()?;
        self.expect(TokenKind::LBrace)?;

        let mut state = StateDecl::empty(name);
        state.span = start;

        loop {
            let t = self.peek();
            if t.kind == TokenKind::RBrace {
                break;
            }
            if self.at_kw("defer") {
                self.bump();
                state.deferred.extend(self.event_name_list()?);
                self.expect(TokenKind::Semi)?;
            } else if self.at_kw("postpone") {
                self.bump();
                state.postponed.extend(self.event_name_list()?);
                self.expect(TokenKind::Semi)?;
            } else if self.at_kw("entry") {
                self.bump();
                state.entry = self.block()?;
            } else if self.at_kw("exit") {
                self.bump();
                state.exit = self.block()?;
            } else if self.at_kw("on") {
                let on_span = self.bump().span;
                let (event, _) = self.name()?;
                if self.eat_kw("goto") || self.eat_kw("push") {
                    // Re-inspect which keyword we consumed.
                    let consumed = self.tokens[self.pos - 1];
                    let kind = if self.text(consumed) == "goto" {
                        TransitionKind::Step
                    } else {
                        TransitionKind::Call
                    };
                    let (to, to_span) = self.name()?;
                    self.expect(TokenKind::Semi)?;
                    machine.transitions.push(TransitionDecl {
                        kind,
                        from: name,
                        event,
                        to,
                        span: on_span.merge(to_span),
                    });
                } else if self.eat_kw("do") {
                    let (action, a_span) = self.name()?;
                    self.expect(TokenKind::Semi)?;
                    machine.bindings.push(ActionBinding {
                        state: name,
                        event,
                        action,
                        span: on_span.merge(a_span),
                    });
                } else {
                    let t = self.peek();
                    return Err(self.err_at(t, "expected `goto`, `push` or `do`"));
                }
            } else {
                return Err(self.err_at(
                    t,
                    "expected `defer`, `postpone`, `entry`, `exit`, `on` or `}`",
                ));
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        state.span = start.merge(end);
        machine.states.push(state);
        Ok(())
    }

    fn event_name_list(&mut self) -> Result<Vec<Symbol>, ParseError> {
        let mut names = Vec::new();
        loop {
            let (n, _) = self.name()?;
            names.push(n);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok(names)
    }

    // ----- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return Err(self.err_at(self.peek(), "expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Stmt::spanned(StmtKind::Block(stmts), start.merge(end)))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let t = self.peek();
        if t.kind == TokenKind::LBrace {
            return self.block();
        }
        if t.kind != TokenKind::Ident {
            return Err(self.err_at(t, "expected statement"));
        }
        let start = t.span;
        match self.text(t) {
            "skip" => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(StmtKind::Skip, start.merge(end)))
            }
            "delete" => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(StmtKind::Delete, start.merge(end)))
            }
            "leave" => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(StmtKind::Leave, start.merge(end)))
            }
            "return" => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(StmtKind::Return, start.merge(end)))
            }
            "send" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let target = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let (event, _) = self.name()?;
                let payload = if self.eat(TokenKind::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(
                    StmtKind::Send {
                        target,
                        event,
                        payload,
                    },
                    start.merge(end),
                ))
            }
            "raise" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (event, _) = self.name()?;
                let payload = if self.eat(TokenKind::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(
                    StmtKind::Raise { event, payload },
                    start.merge(end),
                ))
            }
            "assert" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(StmtKind::Assert(cond), start.merge(end)))
            }
            "if" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then = self.block()?;
                let els = if self.eat_kw("else") {
                    if self.at_kw("if") {
                        self.stmt()?
                    } else {
                        self.block()?
                    }
                } else {
                    Stmt::block(Vec::new())
                };
                let span = start.merge(els.span);
                Ok(Stmt::spanned(
                    StmtKind::If {
                        cond,
                        then: Box::new(then),
                        els: Box::new(els),
                    },
                    span,
                ))
            }
            "while" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                let span = start.merge(body.span);
                Ok(Stmt::spanned(
                    StmtKind::While {
                        cond,
                        body: Box::new(body),
                    },
                    span,
                ))
            }
            "call" => {
                self.bump();
                let (state, _) = self.name()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(StmtKind::CallState(state), start.merge(end)))
            }
            _ => self.assign_or_call_stmt(),
        }
    }

    /// `x := ...;`, `x := new M(...);`, `x := f(...);` or `f(...);`
    fn assign_or_call_stmt(&mut self) -> Result<Stmt, ParseError> {
        let (first, first_span) = self.name()?;
        match self.peek().kind {
            TokenKind::Assign => {
                self.bump();
                if self.at_kw("new") {
                    self.bump();
                    let (machine, _) = self.name()?;
                    self.expect(TokenKind::LParen)?;
                    let inits = self.initializer_list()?;
                    self.expect(TokenKind::RParen)?;
                    let end = self.expect(TokenKind::Semi)?.span;
                    return Ok(Stmt::spanned(
                        StmtKind::New {
                            dst: first,
                            machine,
                            inits,
                        },
                        first_span.merge(end),
                    ));
                }
                let value = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                // Normalize a bare top-level call `x := f(a);` into the
                // ForeignCall statement form so printing round-trips.
                if let ExprKind::ForeignCall(func, args) = value.kind {
                    return Ok(Stmt::spanned(
                        StmtKind::ForeignCall {
                            dst: Some(first),
                            func,
                            args,
                        },
                        first_span.merge(end),
                    ));
                }
                Ok(Stmt::spanned(
                    StmtKind::Assign { dst: first, value },
                    first_span.merge(end),
                ))
            }
            TokenKind::LParen => {
                self.bump();
                let mut args = Vec::new();
                if self.peek().kind != TokenKind::RParen {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::spanned(
                    StmtKind::ForeignCall {
                        dst: None,
                        func: first,
                        args,
                    },
                    first_span.merge(end),
                ))
            }
            _ => {
                let t = self.peek();
                Err(self.err_at(t, "expected `:=` or `(` after identifier"))
            }
        }
    }

    // ----- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.expr_bp(0)
    }

    /// Precedence-climbing expression parser; all binary operators are
    /// left-associative.
    fn expr_bp(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::OrOr => BinOp::Or,
                TokenKind::AndAnd => BinOp::And,
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.expr_bp(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::spanned(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek();
        match t.kind {
            TokenKind::Bang => {
                self.bump();
                let inner = self.unary()?;
                let span = t.span.merge(inner.span);
                Ok(Expr::spanned(
                    ExprKind::Unary(UnOp::Not, Box::new(inner)),
                    span,
                ))
            }
            TokenKind::Minus => {
                self.bump();
                let inner = self.unary()?;
                let span = t.span.merge(inner.span);
                Ok(Expr::spanned(
                    ExprKind::Unary(UnOp::Neg, Box::new(inner)),
                    span,
                ))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek();
        match t.kind {
            TokenKind::Int => {
                self.bump();
                let value: i64 = self
                    .text(t)
                    .parse()
                    .map_err(|_| self.err_at(t, "integer literal out of range"))?;
                Ok(Expr::spanned(ExprKind::Int(value), t.span))
            }
            TokenKind::Star => {
                self.bump();
                Ok(Expr::spanned(ExprKind::Nondet, t.span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                let end = self.expect(TokenKind::RParen)?.span;
                Ok(Expr::spanned(inner.kind, t.span.merge(end)))
            }
            TokenKind::Ident => match self.text(t) {
                "this" => {
                    self.bump();
                    Ok(Expr::spanned(ExprKind::This, t.span))
                }
                "msg" => {
                    self.bump();
                    Ok(Expr::spanned(ExprKind::Msg, t.span))
                }
                "arg" => {
                    self.bump();
                    Ok(Expr::spanned(ExprKind::Arg, t.span))
                }
                "null" => {
                    self.bump();
                    Ok(Expr::spanned(ExprKind::Null, t.span))
                }
                "true" => {
                    self.bump();
                    Ok(Expr::spanned(ExprKind::Bool(true), t.span))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::spanned(ExprKind::Bool(false), t.span))
                }
                _ => {
                    let (name, span) = self.name()?;
                    if self.peek().kind == TokenKind::LParen {
                        self.bump();
                        let mut args = Vec::new();
                        if self.peek().kind != TokenKind::RParen {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        let end = self.expect(TokenKind::RParen)?.span;
                        Ok(Expr::spanned(
                            ExprKind::ForeignCall(name, args),
                            span.merge(end),
                        ))
                    } else {
                        Ok(Expr::spanned(ExprKind::Name(name), span))
                    }
                }
            },
            _ => Err(self.err_at(t, "expected expression")),
        }
    }
}
