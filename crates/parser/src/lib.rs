//! Parser for the textual P language.
//!
//! The paper presents P as "a textual language with a simple core calculus"
//! (Figure 3). This crate implements a concrete syntax for that calculus,
//! including the sugar used throughout the paper: per-state deferred and
//! postponed sets, entry/exit blocks, `on e goto n` step transitions,
//! `on e push n` call transitions, `on e do a` action bindings, ghost
//! machines/variables, foreign functions, and the `call n` statement.
//!
//! # Grammar
//!
//! ```text
//! program     := (event | machine)* main
//! event       := "event" IDENT (":" type)? ";"
//! machine     := "ghost"? "machine" IDENT "{" item* "}"
//! item        := ("ghost")? "var" IDENT ":" type ("," IDENT ":" type)* ";"
//!              | "action" IDENT block
//!              | "state" IDENT "{" stateItem* "}"
//!              | "foreign" "fn" IDENT "(" (param ("," param)*)? ")"
//!                (":" type)? (";" | block)     -- block = erasable model body
//! param       := IDENT ":" type | type
//! stateItem   := "defer" IDENT ("," IDENT)* ";"
//!              | "postpone" IDENT ("," IDENT)* ";"
//!              | "entry" block | "exit" block
//!              | "on" IDENT ("goto" | "push") IDENT ";"
//!              | "on" IDENT "do" IDENT ";"
//! main        := "main" IDENT "(" inits? ")" ";"
//! inits       := IDENT "=" expr ("," IDENT "=" expr)*
//! block       := "{" stmt* "}"
//! stmt        := "skip" ";" | "delete" ";" | "leave" ";" | "return" ";"
//!              | IDENT ":=" "new" IDENT "(" inits? ")" ";"
//!              | IDENT ":=" expr ";"
//!              | IDENT "(" (expr ("," expr)*)? ")" ";"
//!              | "send" "(" expr "," IDENT ("," expr)? ")" ";"
//!              | "raise" "(" IDENT ("," expr)? ")" ";"
//!              | "assert" "(" expr ")" ";"
//!              | "if" "(" expr ")" block ("else" (block | if-stmt))?
//!              | "while" "(" expr ")" block
//!              | "call" IDENT ";"
//!              | block
//! expr        := precedence-climbing over
//!                "||" < "&&" < "=="/"!=" < "<"/"<="/">"/">=" < "+"/"-"
//!                < "*"/"/", unary "!" and "-",
//!                primaries: this msg arg null true false INT "*" IDENT
//!                IDENT "(" args ")" "(" expr ")"
//! ```
//!
//! Line comments `// ...` and block comments `/* ... */` are skipped.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     event ping;
//!     event pong;
//!     machine Main {
//!         state Init {
//!             entry { raise(ping); }
//!             on ping goto Done;
//!         }
//!         state Done { }
//!     }
//!     main Main();
//! "#;
//! let program = p_parser::parse(src).unwrap();
//! assert_eq!(program.machines.len(), 1);
//! assert_eq!(program.events.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod lexer;
mod parser;

pub use error::ParseError;
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;

#[cfg(test)]
mod fuzz {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The front end is total: arbitrary input produces `Ok` or a
        /// positioned error, never a panic.
        #[test]
        fn parser_never_panics(input in ".{0,200}") {
            let _ = crate::parse(&input);
        }

        /// Arbitrary ASCII keyword soup also parses or errors cleanly.
        #[test]
        fn keyword_soup_never_panics(
            words in proptest::collection::vec(
                prop_oneof![
                    Just("machine"), Just("state"), Just("event"), Just("on"),
                    Just("goto"), Just("push"), Just("entry"), Just("{"),
                    Just("}"), Just("("), Just(")"), Just(";"), Just(":="),
                    Just("x"), Just("M"), Just("main"), Just("*"), Just("defer"),
                ],
                0..40,
            )
        ) {
            let input = words.join(" ");
            let _ = crate::parse(&input);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_ast::{print_program, ExprKind, StmtKind, TransitionKind, Ty};

    const ELEVATOR_FRAGMENT: &str = r#"
        event OpenDoor;
        event CloseDoor;
        event DoorOpened;
        event SendCmdToOpen;
        event unit;

        machine Elevator {
            ghost var Door : id;
            action Ignore { skip; }
            state Init {
                entry {
                    Door := new DoorM(owner = this);
                    raise(unit);
                }
                on unit goto Closed;
            }
            state Closed {
                defer CloseDoor;
                on OpenDoor goto Opening;
            }
            state Opening {
                defer CloseDoor;
                entry { send(Door, SendCmdToOpen); }
                on OpenDoor do Ignore;
                on DoorOpened goto Opened;
            }
            state Opened { }
        }

        ghost machine DoorM {
            var owner : id;
            state Idle {
                entry {
                    if (*) { send(owner, DoorOpened); }
                }
                on SendCmdToOpen goto Idle;
            }
        }

        main Elevator();
    "#;

    #[test]
    fn parses_elevator_fragment() {
        let p = parse(ELEVATOR_FRAGMENT).unwrap();
        assert_eq!(p.events.len(), 5);
        assert_eq!(p.machines.len(), 2);
        let elevator = p.machine_named("Elevator").unwrap();
        assert!(!elevator.ghost);
        assert_eq!(elevator.states.len(), 4);
        assert_eq!(elevator.transitions.len(), 3);
        assert_eq!(elevator.bindings.len(), 1);
        assert!(elevator.vars[0].ghost);
        let door = p.machine_named("DoorM").unwrap();
        assert!(door.ghost);
        assert_eq!(p.name(p.main.machine), "Elevator");
    }

    #[test]
    fn transition_kinds_distinguished() {
        let src = r#"
            event e;
            machine M {
                state A { on e goto B; }
                state B { on e push A; }
            }
            main M();
        "#;
        let p = parse(src).unwrap();
        let m = p.machine_named("M").unwrap();
        assert_eq!(m.transitions[0].kind, TransitionKind::Step);
        assert_eq!(m.transitions[1].kind, TransitionKind::Call);
    }

    #[test]
    fn parses_all_statement_forms() {
        let src = r#"
            event e : int;
            machine M {
                var x : int;
                var target : id;
                foreign fn compute(int, int) : int;
                state S {
                    entry {
                        skip;
                        x := 1 + 2 * 3;
                        target := new M();
                        send(target, e, x);
                        raise(e, 0);
                        assert(x == 7);
                        if (x < 10) { x := x + 1; } else { x := 0; }
                        while (x > 0) { x := x - 1; }
                        call S;
                        x := compute(x, 2);
                        compute(1, 2);
                        leave;
                    }
                    exit { return; }
                }
            }
            main M(x = 5);
        "#;
        let p = parse(src).unwrap();
        let m = p.machine_named("M").unwrap();
        let entry = &m.states[0].entry;
        let stmts = entry.flatten();
        assert_eq!(stmts.len(), 12);
        assert!(matches!(stmts[0].kind, StmtKind::Skip));
        assert!(matches!(stmts[2].kind, StmtKind::New { .. }));
        assert!(matches!(
            stmts[10].kind,
            StmtKind::ForeignCall { dst: None, .. }
        ));
        assert!(matches!(
            stmts[9].kind,
            StmtKind::ForeignCall { dst: Some(_), .. }
        ));
        assert_eq!(p.main.inits.len(), 1);
        assert_eq!(m.foreign[0].param_types(), vec![Ty::Int, Ty::Int]);
    }

    #[test]
    fn nondet_star_in_expression_position() {
        let src = r#"
            event e;
            ghost machine G {
                var x : bool;
                state S {
                    entry { x := * && true; if (*) { raise(e); } }
                    on e goto S;
                }
            }
            main G();
        "#;
        let p = parse(src).unwrap();
        let g = p.machine_named("G").unwrap();
        let stmts = g.states[0].entry.flatten();
        match &stmts[0].kind {
            StmtKind::Assign { value, .. } => assert!(value.contains_nondet()),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn star_is_multiplication_in_binary_position() {
        let src = r#"
            machine M {
                var x : int;
                state S { entry { x := 2 * 3; } }
            }
            main M();
        "#;
        let p = parse(src).unwrap();
        let m = p.machine_named("M").unwrap();
        let stmts = m.states[0].entry.flatten();
        match &stmts[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary(op, _, _) => assert_eq!(*op, p_ast::BinOp::Mul),
                other => panic!("expected binary, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn precedence_parses_correctly() {
        let src = r#"
            machine M {
                var b : bool;
                state S { entry { b := 1 + 2 * 3 == 7 && true; } }
            }
            main M();
        "#;
        let p = parse(src).unwrap();
        let m = p.machine_named("M").unwrap();
        let stmts = m.states[0].entry.flatten();
        let text = match &stmts[0].kind {
            StmtKind::Assign { value, .. } => p_ast::print_expr(value, &p.interner),
            other => panic!("expected assign, got {other:?}"),
        };
        assert_eq!(text, "1 + 2 * 3 == 7 && true");
    }

    #[test]
    fn error_on_missing_main() {
        let err = parse("event e; machine M { state S { } }").unwrap_err();
        assert!(err.message().contains("main"));
    }

    #[test]
    fn error_on_reserved_word_as_name() {
        let err = parse("event machine;").unwrap_err();
        assert!(err.message().contains("reserved"));
    }

    #[test]
    fn error_reports_position() {
        let src = "event a;\nevent ;";
        let err = parse(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.starts_with("2:"), "got {rendered}");
    }

    #[test]
    fn print_parse_print_is_identity_on_elevator() {
        let p1 = parse(ELEVATOR_FRAGMENT).unwrap();
        let text1 = print_program(&p1);
        let p2 = parse(&text1).unwrap();
        let text2 = print_program(&p2);
        assert_eq!(text1, text2);
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            machine M {
                var x : int;
                state S {
                    entry {
                        if (x == 1) { x := 10; }
                        else if (x == 2) { x := 20; }
                        else { x := 30; }
                    }
                }
            }
            main M();
        "#;
        let p = parse(src).unwrap();
        let text1 = print_program(&p);
        let p2 = parse(&text1).unwrap();
        assert_eq!(text1, print_program(&p2));
    }

    #[test]
    fn comments_are_ignored() {
        let src = r#"
            // a line comment
            event e; /* block */ machine M { state S { } } main M();
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn multi_var_declaration() {
        let src = r#"
            machine M {
                var x : int, y : bool;
                state S { }
            }
            main M();
        "#;
        let p = parse(src).unwrap();
        let m = p.machine_named("M").unwrap();
        assert_eq!(m.vars.len(), 2);
        assert_eq!(m.vars[0].ty, Ty::Int);
        assert_eq!(m.vars[1].ty, Ty::Bool);
    }

    #[test]
    fn foreign_fn_with_model_body() {
        let src = r#"
            machine M {
                foreign fn f(int) : bool { skip; }
                state S { }
            }
            main M();
        "#;
        let p = parse(src).unwrap();
        let m = p.machine_named("M").unwrap();
        assert!(m.foreign[0].model_body.is_some());
    }

    #[test]
    fn negative_via_unary_minus() {
        let src = r#"
            machine M {
                var x : int;
                state S { entry { x := -5 + 1; } }
            }
            main M();
        "#;
        let p = parse(src).unwrap();
        let m = p.machine_named("M").unwrap();
        let stmts = m.states[0].entry.flatten();
        match &stmts[0].kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(
                    value.kind,
                    ExprKind::Binary(p_ast::BinOp::Add, _, _)
                ));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }
}
