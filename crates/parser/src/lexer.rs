//! Lexical analysis for the textual P syntax.

use p_ast::Span;

use crate::ParseError;

/// The kind of a lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are recognized by the parser).
    Ident,
    /// An integer literal.
    Int,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` (multiplication or nondeterministic choice, by position)
    Star,
    /// `/`
    Slash,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description used in error messages.
    pub fn describe(self) -> &'static str {
        match self {
            TokenKind::Ident => "identifier",
            TokenKind::Int => "integer literal",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::Comma => "`,`",
            TokenKind::Semi => "`;`",
            TokenKind::Colon => "`:`",
            TokenKind::Assign => "`:=`",
            TokenKind::Eq => "`=`",
            TokenKind::EqEq => "`==`",
            TokenKind::Ne => "`!=`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::AndAnd => "`&&`",
            TokenKind::OrOr => "`||`",
            TokenKind::Bang => "`!`",
            TokenKind::Eof => "end of input",
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte range in the source.
    pub span: Span,
}

impl Token {
    /// The token's text within `source`.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.span.start as usize..self.span.end as usize]
    }
}

/// Tokenizes `source`, producing a token stream terminated by
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns an error on any byte that cannot start a token and on
/// unterminated block comments.
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;

    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut j = i + 2;
                loop {
                    if j + 1 >= bytes.len() {
                        return Err(ParseError::new(
                            "unterminated block comment".to_owned(),
                            Span::new(start, bytes.len()),
                        ));
                    }
                    if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        break;
                    }
                    j += 1;
                }
                i = j + 2;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Int,
                    span: Span::new(start, i),
                });
            }
            _ => {
                let two = |a: u8, b2: u8| bytes[i] == a && bytes.get(i + 1) == Some(&b2);
                let (kind, len) = if two(b':', b'=') {
                    (TokenKind::Assign, 2)
                } else if two(b'=', b'=') {
                    (TokenKind::EqEq, 2)
                } else if two(b'!', b'=') {
                    (TokenKind::Ne, 2)
                } else if two(b'<', b'=') {
                    (TokenKind::Le, 2)
                } else if two(b'>', b'=') {
                    (TokenKind::Ge, 2)
                } else if two(b'&', b'&') {
                    (TokenKind::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (TokenKind::OrOr, 2)
                } else {
                    let kind = match b {
                        b'{' => TokenKind::LBrace,
                        b'}' => TokenKind::RBrace,
                        b'(' => TokenKind::LParen,
                        b')' => TokenKind::RParen,
                        b',' => TokenKind::Comma,
                        b';' => TokenKind::Semi,
                        b':' => TokenKind::Colon,
                        b'=' => TokenKind::Eq,
                        b'<' => TokenKind::Lt,
                        b'>' => TokenKind::Gt,
                        b'+' => TokenKind::Plus,
                        b'-' => TokenKind::Minus,
                        b'*' => TokenKind::Star,
                        b'/' => TokenKind::Slash,
                        b'!' => TokenKind::Bang,
                        other => {
                            return Err(ParseError::new(
                                format!("unexpected character `{}`", other as char),
                                Span::new(start, start + 1),
                            ))
                        }
                    };
                    (kind, 1)
                };
                i += len;
                tokens.push(Token {
                    kind,
                    span: Span::new(start, i),
                });
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(bytes.len(), bytes.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation() {
        assert_eq!(
            kinds(":= == != <= >= && || { } ( ) , ; : = < > + - * / !"),
            vec![
                TokenKind::Assign,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Colon,
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Bang,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_idents_and_ints() {
        let src = "Elevator x_1 42";
        let toks = lex(src).unwrap();
        assert_eq!(toks[0].text(src), "Elevator");
        assert_eq!(toks[1].text(src), "x_1");
        assert_eq!(toks[2].kind, TokenKind::Int);
        assert_eq!(toks[2].text(src), "42");
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line comment\nb /* block\ncomment */ c"),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("a /* never ends").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        let err = lex("a # b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}
