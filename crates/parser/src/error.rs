//! Parser diagnostics.

use std::error::Error;
use std::fmt;

use p_ast::Span;

/// An error produced while lexing or parsing P source text.
///
/// # Examples
///
/// ```
/// let err = p_parser::parse("event ;").unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates an error at `span`.
    pub fn new(message: String, span: Span) -> ParseError {
        ParseError { message, span }
    }

    /// The error message (without location).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the error with `line:col` information resolved against the
    /// original source.
    pub fn render(&self, source: &str) -> String {
        match self.span.line_col(source) {
            Some((line, col)) => format!("{}:{}: {}", line, col, self.message),
            None => self.message.clone(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_synthetic() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "at bytes {}: {}", self.span, self.message)
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_resolves_line_and_column() {
        let src = "event a;\nevent ;";
        let err = ParseError::new("expected identifier".to_owned(), Span::new(15, 16));
        assert_eq!(err.render(src), "2:7: expected identifier");
    }

    #[test]
    fn display_without_source() {
        let err = ParseError::new("boom".to_owned(), Span::new(3, 4));
        assert_eq!(err.to_string(), "at bytes 3..4: boom");
        let synth = ParseError::new("boom".to_owned(), Span::SYNTHETIC);
        assert_eq!(synth.to_string(), "boom");
    }
}
