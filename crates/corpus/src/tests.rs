//! Corpus validation: every program parses, checks, and verifies; every
//! buggy variant is caught — within a delay bound of 2, as §5 claims.

use p_checker::{CheckerOptions, Verifier};
use p_semantics::lower;

use super::*;

fn verify_ok(program: &Program, name: &str) -> p_checker::Report {
    p_typecheck::check(program).unwrap_or_else(|e| panic!("{name} failed checks: {e}"));
    let lowered = lower(program).unwrap();
    let report = Verifier::new(&lowered)
        .with_options(CheckerOptions {
            max_states: 500_000,
            ..CheckerOptions::default()
        })
        .check_exhaustive();
    if let Some(cx) = &report.counterexample {
        panic!("{name} has a safety violation:\n{cx}");
    }
    assert!(report.complete, "{name} exploration truncated");
    report
}

#[test]
fn ping_pong_verifies() {
    let r = verify_ok(&ping_pong(), "ping_pong");
    assert!(r.stats.unique_states > 5);
}

#[test]
fn elevator_verifies() {
    let r = verify_ok(&elevator(), "elevator");
    assert!(r.stats.unique_states > 50);
}

#[test]
fn switch_led_verifies() {
    let r = verify_ok(&switch_led(), "switch_led");
    assert!(r.stats.unique_states > 50);
}

#[test]
fn german_verifies() {
    let r = verify_ok(&german(), "german");
    assert!(r.stats.unique_states > 50);
}

#[test]
fn german3_verifies_and_scales_past_german2() {
    let r3 = verify_ok(&german3(), "german3");
    let r2 = verify_ok(&german(), "german");
    assert!(
        r3.stats.unique_states > r2.stats.unique_states,
        "3 clients must explore more: {} vs {}",
        r3.stats.unique_states,
        r2.stats.unique_states
    );
}

#[test]
fn usb_machines_verify() {
    for (name, program) in figure8_machines() {
        verify_ok(&program, name);
    }
}

#[test]
fn lossy_link_verifies_fault_free_but_breaks_under_faults() {
    let program = lossy_link();
    verify_ok(&program, "lossy_link");
    let lowered = lower(&program).unwrap();
    let verifier = Verifier::new(&lowered);
    assert!(verifier.check_with_faults(0, &[]).report.passed());
    let faulty = verifier.check_with_faults(1, &[]);
    assert!(
        !faulty.report.passed(),
        "one environment fault must break the handshake"
    );
}

#[test]
fn all_programs_typecheck() {
    for (name, program) in all() {
        p_typecheck::check(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn buggy_variants_fail_exhaustive_search() {
    for (name, _, buggy) in figure7_benchmarks() {
        let lowered = lower(&buggy).unwrap();
        let report = Verifier::new(&lowered).check_exhaustive();
        assert!(
            !report.passed(),
            "{name} buggy variant was not caught by exhaustive search"
        );
    }
}

#[test]
fn bugs_found_within_delay_bound_two() {
    // The §5 empirical claim: "bugs are found within a delay bound of 2".
    for (name, _, buggy) in figure7_benchmarks() {
        let lowered = lower(&buggy).unwrap();
        let verifier = Verifier::new(&lowered);
        let found_at = (0..=2).find(|&d| !verifier.check_delay_bounded(d).report.passed());
        assert!(
            found_at.is_some(),
            "{name} bug not found within delay bound 2"
        );
    }
}

#[test]
fn correct_programs_pass_delay_bounded_checking() {
    for (name, correct, _) in figure7_benchmarks() {
        let lowered = lower(&correct).unwrap();
        let verifier = Verifier::new(&lowered);
        for d in 0..=2 {
            let report = verifier.check_delay_bounded(d);
            assert!(
                report.report.passed(),
                "{name} false positive at delay bound {d}: {:?}",
                report.report.counterexample
            );
        }
    }
}

#[test]
fn elevator_budget_scales_state_space() {
    let small = lower(&elevator_with_budget(1)).unwrap();
    let large = lower(&elevator_with_budget(3)).unwrap();
    let small_states = Verifier::new(&small).check_exhaustive().stats.unique_states;
    let large_states = Verifier::new(&large).check_exhaustive().stats.unique_states;
    assert!(
        large_states > small_states,
        "budget must scale exploration: {small_states} vs {large_states}"
    );
}

#[test]
fn machine_shapes_match_the_paper() {
    // §4.1: the switch-and-LED P code has one driver machine with ~15
    // states and ~23 transitions plus four ghost machines.
    let p = switch_led();
    assert_eq!(p.ghost_machines().count(), 4);
    let driver = p.machine_named("Driver").unwrap();
    assert!(
        (12..=16).contains(&driver.states.len()),
        "driver has {} states",
        driver.states.len()
    );
    assert!(
        driver.transition_count() >= 20,
        "driver has {} transitions",
        driver.transition_count()
    );

    // Figure 8 ordering: DSM is the largest machine, HSM the smallest.
    let sizes: Vec<(String, usize)> = figure8_machines()
        .iter()
        .map(|(name, p)| {
            let real = p.real_machines().next().unwrap();
            (name.to_string(), real.states.len())
        })
        .collect();
    let hsm = sizes.iter().find(|(n, _)| n == "HSM").unwrap().1;
    let dsm = sizes.iter().find(|(n, _)| n == "DSM").unwrap().1;
    assert!(dsm > hsm, "DSM ({dsm}) must be larger than HSM ({hsm})");
}

#[test]
fn elevator_liveness_passes_with_postpone_annotations() {
    let program = elevator_with_budget(1);
    let lowered = lower(&program).unwrap();
    let report = Verifier::new(&lowered).check_liveness();
    let starved: Vec<_> = report
        .violations
        .iter()
        .filter(|v| matches!(v, p_checker::LivenessViolation::EventNeverDequeued { .. }))
        .collect();
    assert!(
        starved.is_empty(),
        "postponed events must not be flagged: {starved:?}"
    );
}

#[test]
fn german_family_generator_matches_checked_in_files() {
    let families: [(&str, usize, i64, &str); 3] = [
        ("programs/german3.p", 3, GERMAN3_BUDGET, GERMAN3_SRC),
        ("programs/german4.p", 4, GERMAN4_BUDGET, GERMAN4_SRC),
        ("programs/german5.p", 5, GERMAN5_BUDGET, GERMAN5_SRC),
    ];
    for (path, clients, budget, checked_in) in families {
        let generated = german_family_src(clients, budget);
        if std::env::var_os("CORPUS_REGEN").is_some() {
            let target = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
            std::fs::write(&target, &generated)
                .unwrap_or_else(|e| panic!("cannot regenerate {path}: {e}"));
            continue;
        }
        assert_eq!(
            generated, checked_in,
            "{path} is stale; regenerate with CORPUS_REGEN=1 cargo test -p p-corpus"
        );
    }
}

#[test]
fn german_family_scales_with_client_count() {
    let states = |p: &Program, name: &str| verify_ok(p, name).stats.unique_states;
    let g3 = states(&german3(), "german3");
    let g4 = states(&german4(), "german4");
    assert!(
        g4 > g3,
        "four clients must explore more: {g4} vs {g3} states"
    );
}

#[test]
fn budget_substitution_changes_main_only() {
    let src = with_budget(ELEVATOR_SRC, 7);
    assert!(src.contains("main User(budget = 7);"));
    assert_eq!(src.matches("budget = 7").count(), 1);
}

#[test]
fn programs_print_and_reparse() {
    for (name, program) in all() {
        let text = p_ast::print_program(&program);
        let reparsed =
            p_parser::parse(&text).unwrap_or_else(|e| panic!("{name} failed to reparse: {e}"));
        assert_eq!(
            text,
            p_ast::print_program(&reparsed),
            "{name} print/parse/print not a fixpoint"
        );
    }
}

#[test]
fn compiled_modules_match_checked_in_files() {
    let mut programs = all();
    programs.push(("elevator_buggy", elevator_buggy()));
    programs.push(("switch_led_buggy", switch_led_buggy()));
    programs.push(("german_buggy", german_buggy()));

    let names: Vec<&str> = programs.iter().map(|&(n, _)| n).collect();
    let mut registered = compiled::compiled_names();
    registered.sort_unstable();
    let mut expected = names.clone();
    expected.sort_unstable();
    assert_eq!(
        registered, expected,
        "src/compiled/mod.rs registry out of sync with the corpus"
    );

    let regen = std::env::var_os("CORPUS_REGEN").is_some();
    for (name, program) in &programs {
        let lowered = lower(program).unwrap_or_else(|e| panic!("{name} fails to lower: {e}"));
        let out = p_codegen::generate_rust(&lowered, name);
        let path = format!("src/compiled/{name}.rs");
        if regen {
            let target = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(&path);
            std::fs::write(&target, &out.code)
                .unwrap_or_else(|e| panic!("cannot regenerate {path}: {e}"));
            continue;
        }
        let table = compiled::compiled_program(name)
            .unwrap_or_else(|| panic!("{name} missing from the compiled registry"));
        assert_eq!(
            table.digest(),
            out.digest,
            "{path} is stale; regenerate with CORPUS_REGEN=1 cargo test -p p-corpus"
        );
        let checked_in =
            std::fs::read_to_string(std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(&path))
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        assert_eq!(
            checked_in, out.code,
            "{path} is stale; regenerate with CORPUS_REGEN=1 cargo test -p p-corpus"
        );
    }
}
