//! Ahead-of-time compiled corpus programs.
//!
//! Each submodule is the output of `p_codegen::generate_rust` over the
//! lowered form of one corpus program (ghosts included — these tables
//! feed the model checker, not the deployment runtime). The files are
//! checked in and kept in sync by a corpus test; regenerate them with
//! `CORPUS_REGEN=1 cargo test -p p-corpus` after changing a program, the
//! lowering, or the emitter.
//!
//! The registry offers two lookups: by corpus name (tests, benches) and
//! by program digest (the CLI's `--compiled` flag, which verifies an
//! arbitrary input file and can use a compiled table exactly when that
//! file lowers to a digest-identical program).

mod elevator;
mod elevator_buggy;
mod german;
mod german3;
mod german4;
mod german5;
mod german_buggy;
mod lossy_link;
mod ping_pong;
mod switch_led;
mod switch_led_buggy;
mod usb_dsm;
mod usb_hsm;
mod usb_psm20;
mod usb_psm30;

use p_semantics::compiled::CompiledProgram;

/// The registry: every checked-in compiled corpus program.
static TABLES: &[(&str, &'static dyn CompiledProgram)] = &[
    ("ping_pong", &ping_pong::Compiled),
    ("elevator", &elevator::Compiled),
    ("elevator_buggy", &elevator_buggy::Compiled),
    ("switch_led", &switch_led::Compiled),
    ("switch_led_buggy", &switch_led_buggy::Compiled),
    ("german", &german::Compiled),
    ("german_buggy", &german_buggy::Compiled),
    ("german3", &german3::Compiled),
    ("german4", &german4::Compiled),
    ("german5", &german5::Compiled),
    ("usb_hsm", &usb_hsm::Compiled),
    ("usb_psm30", &usb_psm30::Compiled),
    ("usb_psm20", &usb_psm20::Compiled),
    ("usb_dsm", &usb_dsm::Compiled),
    ("lossy_link", &lossy_link::Compiled),
];

/// Names of all checked-in compiled programs, in registry order.
pub fn compiled_names() -> Vec<&'static str> {
    TABLES.iter().map(|&(name, _)| name).collect()
}

/// Looks up the compiled table for corpus program `name`.
pub fn compiled_program(name: &str) -> Option<&'static dyn CompiledProgram> {
    TABLES
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, table)| table)
}

/// Looks up a compiled table by the digest of a lowered program
/// (`p_semantics::compiled::program_digest`). This is how the CLI
/// decides whether `--compiled` applies to an input file: only a
/// program bit-identical to a corpus program after lowering matches.
pub fn compiled_for_digest(digest: u128) -> Option<&'static dyn CompiledProgram> {
    TABLES
        .iter()
        .map(|&(_, table)| table)
        .find(|table| table.digest() == digest)
}
