//! The benchmark corpus: every P program used in the paper's evaluation,
//! reconstructed from the paper's figures and descriptions.
//!
//! * [`ping_pong`] — the quickstart example;
//! * [`elevator`] — Figures 1 and 2 (Elevator + User/Door/Timer ghosts);
//! * [`switch_led`] — the switch-and-LED device driver of §4.1 (one real
//!   driver machine, four ghost machines);
//! * [`german`] — a software implementation of German's cache-coherence
//!   protocol (the third benchmark of Figure 7);
//! * [`usb_hsm`] / [`usb_psm30`] / [`usb_psm20`] / [`usb_dsm`] — scaled
//!   analogs of the four USB 3.0 machines of Figure 8 (hub, 3.0 port,
//!   2.0 port and device state machines);
//! * `*_buggy` variants with seeded concurrency bugs, used for the
//!   "bugs are found within a delay bound of 2" experiment of §5;
//! * [`lossy_link`] — the fault-injection benchmark (this reproduction's
//!   robustness extension): correct under reliable FIFO delivery, broken
//!   when the environment drops or reorders its configuration message.
//!
//! All programs are stored as textual P source (`programs/*.p`) and
//! parsed on demand; the environment machines take a *budget* parameter
//! bounding how many stimuli they inject, which is the scaling knob for
//! the exploration experiments.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use p_ast::Program;

/// Source text of the ping-pong quickstart.
pub const PING_PONG_SRC: &str = include_str!("../programs/ping_pong.p");
/// Source text of the elevator (Figures 1–2).
pub const ELEVATOR_SRC: &str = include_str!("../programs/elevator.p");
/// Source text of the switch-and-LED driver (§4.1).
pub const SWITCH_LED_SRC: &str = include_str!("../programs/switch_led.p");
/// Source text of German's cache-coherence protocol (two clients).
pub const GERMAN_SRC: &str = include_str!("../programs/german.p");
/// Source text of German's protocol with three clients.
pub const GERMAN3_SRC: &str = include_str!("../programs/german3.p");
/// Source text of the USB hub state machine analog (Figure 8, HSM).
pub const USB_HSM_SRC: &str = include_str!("../programs/usb_hsm.p");
/// Source text of the USB 3.0 port state machine analog (Figure 8, PSM 3.0).
pub const USB_PSM30_SRC: &str = include_str!("../programs/usb_psm30.p");
/// Source text of the USB 2.0 port state machine analog (Figure 8, PSM 2.0).
pub const USB_PSM20_SRC: &str = include_str!("../programs/usb_psm20.p");
/// Source text of the USB device state machine analog (Figure 8, DSM).
pub const USB_DSM_SRC: &str = include_str!("../programs/usb_dsm.p");
/// Source text of the lossy-link configuration handshake (the
/// fault-injection benchmark: correct under reliable FIFO delivery,
/// broken when the environment drops or reorders the `cfg` message).
pub const LOSSY_LINK_SRC: &str = include_str!("../programs/lossy_link.p");

fn parse(source: &str, what: &str) -> Program {
    match p_parser::parse(source) {
        Ok(p) => p,
        Err(e) => panic!(
            "corpus program {what} failed to parse: {}",
            e.render(source)
        ),
    }
}

/// Replaces the `budget = N` argument of the `main` declaration.
fn with_budget(source: &str, budget: i64) -> String {
    let Some(pos) = source.rfind("budget = ") else {
        return source.to_owned();
    };
    let tail = &source[pos..];
    let end = tail.find(')').expect("main initializer list is closed");
    format!(
        "{}budget = {budget}{}",
        &source[..pos],
        &source[pos + end..]
    )
}

/// The ping-pong quickstart program.
pub fn ping_pong() -> Program {
    parse(PING_PONG_SRC, "ping_pong")
}

/// The elevator of Figures 1–2, with the default user budget.
pub fn elevator() -> Program {
    parse(ELEVATOR_SRC, "elevator")
}

/// The elevator with `budget` user stimuli (the Figure 7 scaling knob).
pub fn elevator_with_budget(budget: i64) -> Program {
    parse(&with_budget(ELEVATOR_SRC, budget), "elevator")
}

/// The elevator with a seeded bug: `Opening` no longer ignores repeated
/// `OpenDoor` presses, so a second press while the door is opening is an
/// unhandled event. Found at small delay bounds (§5).
pub fn elevator_buggy() -> Program {
    let src = ELEVATOR_SRC.replace(
        "        on OpenDoor do Ignore;\n        on DoorOpened goto Opened;\n",
        "        on DoorOpened goto Opened;\n",
    );
    assert_ne!(src, ELEVATOR_SRC, "bug seeding must change the program");
    parse(&src, "elevator_buggy")
}

/// The switch-and-LED driver of §4.1, default stimulus budget.
pub fn switch_led() -> Program {
    parse(SWITCH_LED_SRC, "switch_led")
}

/// The switch-and-LED driver with `budget` OS/hardware stimuli.
pub fn switch_led_with_budget(budget: i64) -> Program {
    parse(&with_budget(SWITCH_LED_SRC, budget), "switch_led")
}

/// The switch-and-LED driver with a seeded bug: the driver forgets to
/// defer `SwitchStateChange` while a LED transfer is in flight, so a
/// switch flip racing the transfer is an unhandled event.
pub fn switch_led_buggy() -> Program {
    let src = SWITCH_LED_SRC.replace("        defer SwitchStateChange; // bug-seed-marker\n", "");
    assert_ne!(src, SWITCH_LED_SRC, "bug seeding must change the program");
    parse(&src, "switch_led_buggy")
}

/// German's cache-coherence protocol with two clients.
pub fn german() -> Program {
    parse(GERMAN_SRC, "german")
}

/// German's protocol with `budget` client requests.
pub fn german_with_budget(budget: i64) -> Program {
    parse(&with_budget(GERMAN_SRC, budget), "german")
}

/// German's protocol with three clients (multi-sharer invalidation).
pub fn german3() -> Program {
    parse(GERMAN3_SRC, "german3")
}

/// Three-client German with `budget` requests.
pub fn german3_with_budget(budget: i64) -> Program {
    parse(&with_budget(GERMAN3_SRC, budget), "german3")
}

/// German's protocol with a seeded bug: the home node grants shared
/// access without first invalidating the exclusive owner, so exclusive
/// ownership and sharers coexist — caught by the coherence assertion.
pub fn german_buggy() -> Program {
    let src = GERMAN_SRC.replace("if (exclHeld) { // bug-seed-marker", "if (false) {");
    assert_ne!(src, GERMAN_SRC, "bug seeding must change the program");
    parse(&src, "german_buggy")
}

/// The USB hub state machine analog (Figure 8, HSM).
pub fn usb_hsm() -> Program {
    parse(USB_HSM_SRC, "usb_hsm")
}

/// The USB 3.0 port state machine analog (Figure 8, PSM 3.0).
pub fn usb_psm30() -> Program {
    parse(USB_PSM30_SRC, "usb_psm30")
}

/// The USB 2.0 port state machine analog (Figure 8, PSM 2.0).
pub fn usb_psm20() -> Program {
    parse(USB_PSM20_SRC, "usb_psm20")
}

/// The USB device state machine analog (Figure 8, DSM).
pub fn usb_dsm() -> Program {
    parse(USB_DSM_SRC, "usb_dsm")
}

/// The lossy-link handshake: correct under reliable FIFO delivery,
/// drop/reorder-sensitive under fault injection.
pub fn lossy_link() -> Program {
    parse(LOSSY_LINK_SRC, "lossy_link")
}

/// The lossy-link handshake with `budget` data messages.
pub fn lossy_link_with_budget(budget: i64) -> Program {
    parse(&with_budget(LOSSY_LINK_SRC, budget), "lossy_link")
}

/// Every corpus program with its name (buggy variants excluded).
pub fn all() -> Vec<(&'static str, Program)> {
    vec![
        ("ping_pong", ping_pong()),
        ("elevator", elevator()),
        ("switch_led", switch_led()),
        ("german", german()),
        ("german3", german3()),
        ("usb_hsm", usb_hsm()),
        ("usb_psm30", usb_psm30()),
        ("usb_psm20", usb_psm20()),
        ("usb_dsm", usb_dsm()),
        ("lossy_link", lossy_link()),
    ]
}

/// The three Figure 7 benchmarks with their buggy variants:
/// `(name, correct, buggy)`.
pub fn figure7_benchmarks() -> Vec<(&'static str, Program, Program)> {
    vec![
        ("elevator", elevator(), elevator_buggy()),
        ("switch_led", switch_led(), switch_led_buggy()),
        ("german", german(), german_buggy()),
    ]
}

/// The four Figure 8 machines: `(name, program)`.
pub fn figure8_machines() -> Vec<(&'static str, Program)> {
    vec![
        ("HSM", usb_hsm()),
        ("PSM 3.0", usb_psm30()),
        ("PSM 2.0", usb_psm20()),
        ("DSM", usb_dsm()),
    ]
}

#[cfg(test)]
mod tests;
