// Scaled analog of the USB 2.0 *port* state machine (PSM 2.0) of Figure 8.
// Compared with the 3.0 port, the 2.0 port adds connect debouncing and an
// explicit drive-reset handshake before the port is enabled, and models
// babble/error disable. Driven by a reactive ghost hub controller and a
// nondeterministic ghost bus.

// hub -> port
event SuspendPort;
event ResumePort;
event ResetPort;
// port -> hub
event PortEnabled;
event PortSuspended;
event PortResumed;
event PortDisabled;
event PortGone;
event PortConnected;
// bus hardware -> port
event DeviceConnect;
event Disconnect;
event DebounceDone;
event ResetDone;
event ResumeDone;
event BabbleError;
// port -> bus hardware
event StartDebounce;
event DriveReset;
event DriveResume;
// wiring + local
event WirePort : id;
event unit;

machine Psm20 {
    var errorCount : int;
    ghost var hubV : id;
    ghost var hwV : id;

    action ignoreIt { skip; }

    state Disconnected2 {
        on DeviceConnect goto Debouncing;
        // A Disconnect whose matching connect was absorbed by the queue's
        // duplicate suppression (the paper's anti-flooding rule) is stray.
        on Disconnect do ignoreIt;
        on DebounceDone do ignoreIt;
        on ResetDone do ignoreIt;
        on ResumeDone do ignoreIt;
        on BabbleError do ignoreIt;
    }

    state Debouncing {
        defer SuspendPort, ResumePort, ResetPort;
        postpone SuspendPort, ResumePort, ResetPort;
        entry {
            errorCount := 0;
            send(hwV, StartDebounce);
        }
        on DebounceDone goto NotifyConnected;
        on BabbleError do ignoreIt;
        on ResetDone do ignoreIt;
        on ResumeDone do ignoreIt;
        on Disconnect goto CleanupPort2;
    }

    state NotifyConnected {
        entry {
            send(hubV, PortConnected);
            raise(unit);
        }
        on unit goto AwaitReset;
    }

    state AwaitReset {
        defer SuspendPort, ResumePort;
        postpone SuspendPort, ResumePort;
        on ResetPort goto DrivingReset;
        on BabbleError do ignoreIt;
        // Stale hardware completions from a previous connect session.
        on DebounceDone do ignoreIt;
        on ResetDone do ignoreIt;
        on ResumeDone do ignoreIt;
        on Disconnect goto CleanupPort2;
    }

    state DrivingReset {
        defer SuspendPort, ResumePort, ResetPort;
        postpone SuspendPort, ResumePort, ResetPort;
        entry { send(hwV, DriveReset); }
        on ResetDone goto NotifyEnabled;
        on BabbleError do ignoreIt;
        on DebounceDone do ignoreIt;
        on ResumeDone do ignoreIt;
        on Disconnect goto CleanupPort2;
    }

    state NotifyEnabled {
        entry {
            send(hubV, PortEnabled);
            raise(unit);
        }
        on unit goto Enabled2;
    }

    state Enabled2 {
        on SuspendPort goto SuspendingPort;
        on ResetPort goto DrivingReset;
        on ResumePort do ignoreIt;
        on BabbleError goto DisablingPort;
        on DebounceDone do ignoreIt;
        on ResetDone do ignoreIt;
        on ResumeDone do ignoreIt;
        on Disconnect goto CleanupPort2;
    }

    state SuspendingPort {
        entry {
            send(hubV, PortSuspended);
            raise(unit);
        }
        on unit goto Suspended2;
    }

    state Suspended2 {
        on ResumePort goto ResumingPort;
        on ResetPort goto DrivingReset;
        on BabbleError goto DisablingPort;
        on DebounceDone do ignoreIt;
        on ResetDone do ignoreIt;
        on ResumeDone do ignoreIt;
        on Disconnect goto CleanupPort2;
    }

    state ResumingPort {
        defer SuspendPort, ResetPort;
        postpone SuspendPort, ResetPort;
        entry { send(hwV, DriveResume); }
        on ResumeDone goto NotifyResumed;
        on BabbleError goto DisablingPort;
        on DebounceDone do ignoreIt;
        on ResetDone do ignoreIt;
        on Disconnect goto CleanupPort2;
    }

    state NotifyResumed {
        entry {
            send(hubV, PortResumed);
            raise(unit);
        }
        on unit goto Enabled2;
    }

    state DisablingPort {
        entry {
            errorCount := errorCount + 1;
            send(hubV, PortDisabled);
            raise(unit);
        }
        on unit goto Disabled2;
    }

    state Disabled2 {
        defer SuspendPort, ResumePort;
        postpone SuspendPort, ResumePort;
        on ResetPort goto DrivingReset;
        on BabbleError do ignoreIt;
        on DebounceDone do ignoreIt;
        on ResetDone do ignoreIt;
        on ResumeDone do ignoreIt;
        on Disconnect goto CleanupPort2;
    }

    state CleanupPort2 {
        entry {
            send(hubV, PortGone);
            raise(unit);
        }
        on unit goto Disconnected2;
    }
}

ghost machine HubCtrl20 {
    var port : id;
    var hw : id;
    var budget : int;

    action settle { skip; }

    action onConnected {
        send(port, ResetPort);
    }

    action onEnabled {
        if (*) {
            send(port, SuspendPort);
        }
    }

    action onSuspended {
        send(port, ResumePort);
    }

    action onDisabled {
        send(port, ResetPort);
    }

    state CInit {
        entry {
            hw := new BusHw(budget = budget);
            port := new Psm20(hubV = this, hwV = hw);
            send(hw, WirePort, port);
        }
        on PortConnected do onConnected;
        on PortEnabled do onEnabled;
        on PortSuspended do onSuspended;
        on PortResumed do settle;
        on PortDisabled do onDisabled;
        on PortGone do settle;
    }
}

ghost machine BusHw {
    var port : id;
    var connected : bool;
    var budget : int;

    action onDebounce {
        send(port, DebounceDone);
    }

    action onReset {
        send(port, ResetDone);
    }

    action onResume {
        send(port, ResumeDone);
    }

    state BInit {
        on WirePort goto BWire;
    }

    state BWire {
        entry {
            port := arg;
            connected := false;
            raise(unit);
        }
        on unit goto BLoop;
    }

    state BLoop {
        entry {
            if (budget > 0) {
                budget := budget - 1;
                if (connected) {
                    if (*) {
                        send(port, BabbleError);
                    } else {
                        send(port, Disconnect);
                        connected := false;
                    }
                } else {
                    send(port, DeviceConnect);
                    connected := true;
                }
                raise(unit);
            }
        }
        on unit goto BLoop;
        on StartDebounce do onDebounce;
        on DriveReset do onReset;
        on DriveResume do onResume;
    }
}

main HubCtrl20(budget = 4);
