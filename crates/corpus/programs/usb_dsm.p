// Scaled analog of the USB *device* state machine (DSM) of Figure 8 — the
// largest machine of the paper's case study. The real DeviceSm tracks the
// USB device lifecycle (detached → attached → powered → default →
// addressed → configured, with suspend/resume, re-reset and detach at
// inconvenient moments); a ghost HostModel drives it with a bounded,
// phase-constrained but nondeterministic stimulus stream, mirroring how
// the paper "carefully constrains the environment machines".

// host -> device
event Attach;
event PowerOn;
event BusReset;
event SetAddress : int;
event GetDescriptor;
event SetConfiguration : int;
event DataRequest;
event Suspend;
event Resume;
event Detach;
// device -> host
event ResetComplete;
event AddressAck : int;
event DescriptorData : int;
event ConfigAck : int;
event DataResponse : int;
event SuspendAck;
event ResumeAck;
event DetachAck;
// local
event unit;

machine DeviceSm {
    var addr : int;
    var cfg : int;
    var seq : int;
    ghost var hostV : id;

    // A real USB device STALLs control requests that are invalid in its
    // current state; here that also absorbs strays created by the queue's
    // duplicate-suppression rule (the host's phase tracking can drift when
    // one of its commands is deduplicated away).
    action stallIt { skip; }

    state Detached {
        on Attach goto Attached;
        on PowerOn do stallIt;
        on BusReset do stallIt;
        on SetAddress do stallIt;
        on GetDescriptor do stallIt;
        on SetConfiguration do stallIt;
        on DataRequest do stallIt;
        on Suspend do stallIt;
        on Resume do stallIt;
        on Detach do stallIt;
    }

    state Attached {
        on PowerOn goto Powered;
        on Detach goto Cleanup;
        on Attach do stallIt;
        on BusReset do stallIt;
        on SetAddress do stallIt;
        on GetDescriptor do stallIt;
        on SetConfiguration do stallIt;
        on DataRequest do stallIt;
        on Suspend do stallIt;
        on Resume do stallIt;
    }

    state Powered {
        on BusReset goto Resetting;
        on Detach goto Cleanup;
        on Attach do stallIt;
        on PowerOn do stallIt;
        on SetAddress do stallIt;
        on GetDescriptor do stallIt;
        on SetConfiguration do stallIt;
        on DataRequest do stallIt;
        on Suspend do stallIt;
        on Resume do stallIt;
    }

    state Resetting {
        entry {
            addr := 0;
            cfg := 0;
            seq := 0;
            send(hostV, ResetComplete);
            raise(unit);
        }
        on unit goto DefaultState;
    }

    state DefaultState {
        on SetAddress goto SettingAddress;
        on GetDescriptor goto SendingDescriptorDefault;
        on BusReset goto Resetting;
        on Detach goto Cleanup;
        on Attach do stallIt;
        on PowerOn do stallIt;
        on SetConfiguration do stallIt;
        on DataRequest do stallIt;
        on Suspend do stallIt;
        on Resume do stallIt;
    }

    state SendingDescriptorDefault {
        entry {
            send(hostV, DescriptorData, 0);
            raise(unit);
        }
        on unit goto DefaultState;
    }

    state SettingAddress {
        entry {
            addr := arg;
            assert(addr > 0);
            send(hostV, AddressAck, addr);
            raise(unit);
        }
        on unit goto AddressState;
    }

    state AddressState {
        on GetDescriptor goto SendingDescriptor;
        on SetConfiguration goto Configuring;
        on BusReset goto Resetting;
        on Detach goto Cleanup;
        on Attach do stallIt;
        on PowerOn do stallIt;
        on SetAddress do stallIt;
        on DataRequest do stallIt;
        on Suspend do stallIt;
        on Resume do stallIt;
    }

    state SendingDescriptor {
        entry {
            send(hostV, DescriptorData, addr);
            raise(unit);
        }
        on unit goto AddressState;
    }

    state Configuring {
        entry {
            cfg := arg;
            assert(addr > 0);
            assert(cfg > 0);
            send(hostV, ConfigAck, cfg);
            raise(unit);
        }
        on unit goto Configured;
    }

    state Configured {
        on DataRequest goto ServicingData;
        on GetDescriptor goto SendingDescriptorCfg;
        on SetConfiguration goto Configuring;
        on Suspend goto Suspending;
        on BusReset goto Resetting;
        on Detach goto Cleanup;
        on Attach do stallIt;
        on PowerOn do stallIt;
        on SetAddress do stallIt;
        on Resume do stallIt;
    }

    state SendingDescriptorCfg {
        entry {
            send(hostV, DescriptorData, cfg);
            raise(unit);
        }
        on unit goto Configured;
    }

    state ServicingData {
        entry {
            seq := seq + 1;
            send(hostV, DataResponse, seq);
            raise(unit);
        }
        on unit goto Configured;
    }

    state Suspending {
        entry {
            send(hostV, SuspendAck);
            raise(unit);
        }
        on unit goto Suspended;
    }

    state Suspended {
        defer DataRequest, GetDescriptor, SetConfiguration;
        postpone DataRequest, GetDescriptor, SetConfiguration;
        on Resume goto Resuming;
        on BusReset goto Resetting;
        on Detach goto Cleanup;
        on Attach do stallIt;
        on PowerOn do stallIt;
        on SetAddress do stallIt;
        on Suspend do stallIt;
    }

    state Resuming {
        entry {
            send(hostV, ResumeAck);
            raise(unit);
        }
        on unit goto Configured;
    }

    state Cleanup {
        entry {
            addr := 0;
            cfg := 0;
            send(hostV, DetachAck);
            raise(unit);
        }
        on unit goto Detached;
    }
}

ghost machine HostModel {
    var dev : id;
    var phase : int;
    var budget : int;

    action ack { skip; }

    state HInit {
        entry {
            dev := new DeviceSm(hostV = this);
            phase := 0;
            raise(unit);
        }
        on unit goto HLoop;
    }

    state HLoop {
        entry {
            if (budget > 0) {
                budget := budget - 1;
                if (phase == 0) {
                    send(dev, Attach);
                    phase := 1;
                } else { if (phase == 1) {
                    send(dev, PowerOn);
                    phase := 2;
                } else { if (phase == 2) {
                    send(dev, BusReset);
                    phase := 3;
                } else { if (phase == 3) {
                    if (*) {
                        send(dev, SetAddress, 5);
                        phase := 4;
                    } else {
                        send(dev, BusReset);
                    }
                } else { if (phase == 4) {
                    if (*) {
                        send(dev, GetDescriptor);
                    } else { if (*) {
                        send(dev, SetConfiguration, 1);
                        phase := 5;
                    } else {
                        send(dev, BusReset);
                        phase := 3;
                    } }
                } else { if (phase == 5) {
                    if (*) {
                        send(dev, DataRequest);
                    } else { if (*) {
                        send(dev, Suspend);
                        phase := 6;
                    } else { if (*) {
                        send(dev, BusReset);
                        phase := 3;
                    } else {
                        send(dev, Detach);
                        phase := 0;
                    } } }
                } else {
                    if (*) {
                        send(dev, Resume);
                        phase := 5;
                    } else {
                        send(dev, BusReset);
                        phase := 3;
                    }
                } } } } } }
                raise(unit);
            }
        }
        on unit goto HLoop;
        on ResetComplete do ack;
        on AddressAck do ack;
        on DescriptorData do ack;
        on ConfigAck do ack;
        on DataResponse do ack;
        on SuspendAck do ack;
        on ResumeAck do ack;
        on DetachAck do ack;
    }
}

main HostModel(budget = 7);
