// A sink that must be configured before it accepts data, fed over a
// link modeled as reliable FIFO by the semantics' queues. Fault-free
// exploration passes: `cfg` is sent before any `data`, so the sink is
// already in `Ready` whenever data arrives. A lossy environment breaks
// it — if the `cfg` message is dropped or overtaken, `data` reaches
// `WaitCfg`, which has no handler for it. The bug is found by
// `p verify FILE --faults 1` and missed at `--faults 0`.

event cfg : int;
event data : int;

machine Sink {
    var seen : int;

    state WaitCfg {
        entry { seen := 0; }
        on cfg goto Ready;
    }

    state Ready {
        on data do take;
        on cfg do ignore; // a re-delivered cfg is harmless
    }

    action take { seen := seen + 1; }
    action ignore { }
}

ghost machine Link {
    var sink : id;
    var i : int;
    var budget : int;

    state Go {
        entry {
            sink := new Sink();
            send(sink, cfg, 1);
            i := 0;
            while (i < budget) {
                i := i + 1;
                send(sink, data, i);
            }
        }
    }
}

main Link(budget = 2);
