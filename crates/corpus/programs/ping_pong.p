// The quickstart program: a client and a server exchanging ping/pong a
// bounded number of times, with an assertion tying the two counters
// together.

event ping : id;
event pong;
event unit;

machine Client {
    var server : id;
    var sent : int;
    var received : int;
    var rounds : int;

    state Init {
        entry {
            server := new Server();
            sent := 0;
            received := 0;
            raise(unit);
        }
        on unit goto Sending;
    }

    state Sending {
        entry {
            if (sent < rounds) {
                sent := sent + 1;
                send(server, ping, this);
            } else {
                raise(unit);
            }
        }
        on pong goto Counting;
        on unit goto Done;
    }

    state Counting {
        entry {
            received := received + 1;
            assert(received <= sent);
            raise(unit);
        }
        on unit goto Sending;
    }

    state Done {
        entry { assert(received == rounds); }
        defer pong;
    }
}

machine Server {
    var last : id;

    state Waiting {
        on ping do reply;
    }

    action reply {
        last := arg;
        send(last, pong);
    }
}

main Client(rounds = 3);
