// Scaled analog of the USB 3.0 *port* state machine (PSM 3.0) of Figure 8:
// link training, U0 operation, U3 suspend/resume, error recovery and hot
// reset, driven by a reactive ghost hub controller and a nondeterministic
// ghost link partner.

// hub -> port
event SuspendPort;
event ResumePort;
event ResetPort;
// port -> hub
event PortUp;
event PortSuspended;
event PortResumed;
event PortFailed;
event PortGone;
// link hardware -> port
event DeviceConnect;
event Disconnect;
event LinkError;
event TrainingDone;
event TrainingFail;
// port -> link hardware
event StartTraining;
event Retrain;
// wiring + local
event WirePort : id;
event unit;

machine Psm30 {
    var retrainCount : int;
    ghost var hubV : id;
    ghost var hwV : id;

    action ignoreIt { skip; }

    state PortDisconnected {
        on DeviceConnect goto Training;
        on Disconnect do ignoreIt;
        on TrainingDone do ignoreIt;
        on TrainingFail do ignoreIt;
        on LinkError do ignoreIt;
    }

    state Training {
        defer SuspendPort, ResumePort, ResetPort;
        postpone SuspendPort, ResumePort, ResetPort;
        entry {
            retrainCount := 0;
            send(hwV, StartTraining);
        }
        on LinkError do ignoreIt;
        on TrainingDone goto EnteringU0;
        on TrainingFail goto RetryTraining;
        on Disconnect goto CleanupPort;
    }

    state RetryTraining {
        defer SuspendPort, ResumePort, ResetPort;
        postpone SuspendPort, ResumePort, ResetPort;
        entry {
            retrainCount := retrainCount + 1;
            if (retrainCount > 1) {
                send(hubV, PortFailed);
                raise(unit);
            } else {
                send(hwV, Retrain);
            }
        }
        on unit goto PortError;
        on LinkError do ignoreIt;
        on TrainingDone goto EnteringU0;
        on TrainingFail goto RetryTraining;
        on Disconnect goto CleanupPort;
    }

    state EnteringU0 {
        entry {
            send(hubV, PortUp);
            raise(unit);
        }
        on unit goto U0;
    }

    state U0 {
        on LinkError goto Recovery;
        on SuspendPort goto EnteringU3;
        on ResetPort goto Training;
        on Disconnect goto CleanupPort;
        on ResumePort do ignoreIt;
        // Stale training responses from a previous connect session.
        on TrainingDone do ignoreIt;
        on TrainingFail do ignoreIt;
    }

    state Recovery {
        defer SuspendPort, ResumePort, ResetPort;
        postpone SuspendPort, ResumePort, ResetPort;
        entry {
            send(hwV, Retrain);
        }
        on LinkError do ignoreIt;
        on TrainingDone goto U0;
        on TrainingFail goto RetryTraining;
        on Disconnect goto CleanupPort;
    }

    state EnteringU3 {
        entry {
            send(hubV, PortSuspended);
            raise(unit);
        }
        on unit goto U3;
    }

    state U3 {
        on LinkError do ignoreIt;
        on ResumePort goto ExitingU3;
        on ResetPort goto Training;
        on Disconnect goto CleanupPort;
        on TrainingDone do ignoreIt;
        on TrainingFail do ignoreIt;
    }

    state ExitingU3 {
        entry {
            send(hubV, PortResumed);
            raise(unit);
        }
        on unit goto U0;
    }

    state PortError {
        defer SuspendPort, ResumePort;
        postpone SuspendPort, ResumePort;
        on LinkError do ignoreIt;
        on TrainingDone do ignoreIt;
        on TrainingFail do ignoreIt;
        on ResetPort goto Training;
        on Disconnect goto CleanupPort;
    }

    state CleanupPort {
        entry {
            send(hubV, PortGone);
            raise(unit);
        }
        on unit goto PortDisconnected;
    }
}

ghost machine HubCtrl {
    var port : id;
    var hw : id;
    var budget : int;

    action settle { skip; }

    action onUp {
        if (*) {
            send(port, SuspendPort);
        }
    }

    action onSuspended {
        send(port, ResumePort);
    }

    action onFailed {
        send(port, ResetPort);
    }

    state CInit {
        entry {
            hw := new LinkHw(budget = budget);
            port := new Psm30(hubV = this, hwV = hw);
            send(hw, WirePort, port);
        }
        on PortUp do onUp;
        on PortSuspended do onSuspended;
        on PortResumed do settle;
        on PortFailed do onFailed;
        on PortGone do settle;
    }
}

ghost machine LinkHw {
    var port : id;
    var connected : bool;
    var budget : int;

    action onTrainReq {
        if (*) {
            send(port, TrainingDone);
        } else {
            send(port, TrainingFail);
        }
    }

    state LInit {
        on WirePort goto LWire;
    }

    state LWire {
        entry {
            port := arg;
            connected := false;
            raise(unit);
        }
        on unit goto LLoop;
    }

    state LLoop {
        entry {
            if (budget > 0) {
                budget := budget - 1;
                if (connected) {
                    if (*) {
                        send(port, LinkError);
                    } else {
                        send(port, Disconnect);
                        connected := false;
                    }
                } else {
                    send(port, DeviceConnect);
                    connected := true;
                }
                raise(unit);
            }
        }
        on unit goto LLoop;
        on StartTraining do onTrainReq;
        on Retrain do onTrainReq;
    }
}

main HubCtrl(budget = 3);
