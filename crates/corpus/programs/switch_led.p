// The switch-and-LED device driver of §4.1 of the paper: one real driver
// machine (14 control states) and four ghost machines — the OS power
// model, the application issuing I/O requests, the switch hardware and
// the LED hardware.
//
// The driver serializes un-coordinated events from three sources: power
// transitions from the OS, set-LED / get-switch requests from the
// application, and switch-change interrupts from the hardware. Requests
// arriving while the device is powered off or mid-transfer are explicitly
// deferred (and `postpone`d, since a hostile environment can starve them
// legitimately).

// OS -> driver
event DevicePowerUp;
event DevicePowerDown;
// app -> driver
event IoctlSetLed : int;
event IoctlGetSwitch;
// driver -> app
event IoctlComplete : int;
event IoctlFailed;
// driver -> switch hardware
event ArmSwitch;
event DisarmSwitch;
// switch hardware -> driver
event SwitchStateChange : int;
event SwitchDisarmed;
// driver -> LED hardware
event LedTransfer : int;
// LED hardware -> driver
event TransferComplete;
event TransferFailed;
// wiring
event WireDriver : id;
// local events
event unit;
event fail;

machine Driver {
    var switchState : int;
    var ledState : int;
    var pendingLed : int;
    var retries : int;
    ghost var appV : id;
    ghost var switchV : id;
    ghost var ledV : id;

    action cacheSwitch { switchState := arg; }

    state DInit {
        entry {
            retries := 0;
            raise(unit);
        }
        on unit goto PoweredOff;
    }

    state PoweredOff {
        defer IoctlSetLed, IoctlGetSwitch;
        postpone IoctlSetLed, IoctlGetSwitch;
        on DevicePowerUp goto PoweringUp;
    }

    state PoweringUp {
        defer IoctlSetLed, IoctlGetSwitch, DevicePowerDown;
        postpone IoctlSetLed, IoctlGetSwitch, DevicePowerDown;
        entry {
            send(switchV, ArmSwitch);
            raise(unit);
        }
        on unit goto WaitInitialSwitch;
    }

    state WaitInitialSwitch {
        defer IoctlSetLed, IoctlGetSwitch, DevicePowerDown;
        postpone IoctlSetLed, IoctlGetSwitch, DevicePowerDown;
        on SwitchStateChange goto CacheInitial;
    }

    state CacheInitial {
        entry {
            switchState := arg;
            raise(unit);
        }
        on unit goto Idle;
    }

    state Idle {
        on SwitchStateChange do cacheSwitch;
        on IoctlGetSwitch goto CompletingGet;
        on IoctlSetLed goto StartingTransfer;
        on DevicePowerDown goto Disarming;
    }

    state CompletingGet {
        entry {
            send(appV, IoctlComplete, switchState);
            raise(unit);
        }
        on unit goto Idle;
    }

    state StartingTransfer {
        entry {
            pendingLed := arg;
            send(ledV, LedTransfer, pendingLed);
            raise(unit);
        }
        on unit goto Transferring;
    }

    state Transferring {
        defer IoctlSetLed, IoctlGetSwitch, DevicePowerDown;
        postpone IoctlSetLed, IoctlGetSwitch, DevicePowerDown;
        defer SwitchStateChange; // bug-seed-marker
        postpone SwitchStateChange;
        on TransferComplete goto CompletingSet;
        on TransferFailed goto RetryingTransfer;
    }

    state CompletingSet {
        entry {
            ledState := pendingLed;
            retries := 0;
            send(appV, IoctlComplete, ledState);
            raise(unit);
        }
        on unit goto Idle;
    }

    state RetryingTransfer {
        defer IoctlSetLed, IoctlGetSwitch, DevicePowerDown, SwitchStateChange;
        postpone IoctlSetLed, IoctlGetSwitch, DevicePowerDown, SwitchStateChange;
        entry {
            retries := retries + 1;
            if (retries > 1) {
                raise(fail);
            } else {
                send(ledV, LedTransfer, pendingLed);
                raise(unit);
            }
        }
        on unit goto Transferring;
        on fail goto FailingRequest;
    }

    state FailingRequest {
        entry {
            retries := 0;
            send(appV, IoctlFailed);
            raise(unit);
        }
        on unit goto Idle;
    }

    state Disarming {
        defer IoctlSetLed, IoctlGetSwitch, DevicePowerUp;
        postpone IoctlSetLed, IoctlGetSwitch, DevicePowerUp;
        entry { send(switchV, DisarmSwitch); }
        on SwitchStateChange do cacheSwitch;
        on SwitchDisarmed goto PoweringDown;
    }

    state PoweringDown {
        defer IoctlSetLed, IoctlGetSwitch, DevicePowerUp;
        postpone IoctlSetLed, IoctlGetSwitch, DevicePowerUp;
        entry { raise(unit); }
        on unit goto PoweredOff;
    }
}

// ---- environment (four ghost machines) -------------------------------

ghost machine OsModel {
    var sw : id;
    var led : id;
    var app : id;
    var drv : id;
    var powered : bool;
    var budget : int;

    state Init {
        entry {
            sw := new SwitchHw(flips = 1);
            led := new LedHw();
            app := new AppModel(budget = 2);
            drv := new Driver(switchV = sw, ledV = led, appV = app);
            send(sw, WireDriver, drv);
            send(led, WireDriver, drv);
            send(app, WireDriver, drv);
            powered := false;
            raise(unit);
        }
        on unit goto Loop;
    }

    state Loop {
        entry {
            if (budget > 0) {
                budget := budget - 1;
                if (powered) {
                    send(drv, DevicePowerDown);
                    powered := false;
                } else {
                    send(drv, DevicePowerUp);
                    powered := true;
                }
                raise(unit);
            }
        }
        on unit goto Loop;
    }
}

ghost machine AppModel {
    var drv : id;
    var budget : int;

    action noteCompletion { skip; }

    state AInit {
        // WireDriver doubles as the go signal: the app starts issuing
        // requests only after the OS wired everything up. The driver's
        // ghost appV is set through that same event.
        on WireDriver goto Wire;
    }

    state Wire {
        entry {
            drv := arg;
            send(drv, IoctlSetLed, 1);
            raise(unit);
        }
        on unit goto ALoop;
    }

    state ALoop {
        entry {
            if (budget > 0) {
                budget := budget - 1;
                if (*) {
                    send(drv, IoctlSetLed, budget);
                } else {
                    send(drv, IoctlGetSwitch);
                }
                raise(unit);
            }
        }
        on unit goto ALoop;
        on IoctlComplete do noteCompletion;
        on IoctlFailed do noteCompletion;
    }
}

ghost machine SwitchHw {
    var driver : id;
    var armed : bool;
    var cur : int;
    var flips : int;

    state SwInit {
        on WireDriver goto SwWire;
    }

    state SwWire {
        entry {
            driver := arg;
            cur := 0;
            raise(unit);
        }
        on unit goto SwIdle;
    }

    state SwIdle {
        on ArmSwitch goto SwArming;
        on DisarmSwitch goto SwAckDisarm;
    }

    state SwArming {
        entry {
            send(driver, SwitchStateChange, cur);
            raise(unit);
        }
        on unit goto SwArmed;
    }

    state SwArmed {
        entry {
            if (flips > 0) {
                if (*) {
                    flips := flips - 1;
                    cur := 1 - cur;
                    send(driver, SwitchStateChange, cur);
                    raise(unit);
                }
            }
        }
        on unit goto SwArmed;
        on DisarmSwitch goto SwAckDisarm;
    }

    state SwAckDisarm {
        entry {
            send(driver, SwitchDisarmed);
            raise(unit);
        }
        on unit goto SwIdle;
    }
}

ghost machine LedHw {
    var driver : id;

    state LInit {
        on WireDriver goto LWire;
    }

    state LWire {
        entry {
            driver := arg;
            raise(unit);
        }
        on unit goto LIdle;
    }

    state LIdle {
        on LedTransfer goto LWork;
    }

    state LWork {
        entry {
            if (*) {
                send(driver, TransferComplete);
            } else {
                send(driver, TransferFailed);
            }
            raise(unit);
        }
        on unit goto LIdle;
    }
}

main OsModel(budget = 2);
