// The elevator of Figures 1 and 2 of the paper: a real Elevator machine
// driven by three ghost machines modeling the environment (User) and the
// hardware (Door, Timer).
//
// The Elevator's control protocol reproduces the paper's structure:
// explicit deferred sets (CloseDoor is deferred almost everywhere and
// handled only in OkToClose), an Ignore action for repeated OpenDoor
// presses, and the StoppingTimer / WaitingForTimer / ReturnState
// subroutine entered through *call* transitions from Opened and OkToClose
// and exited by raising StopTimerReturned.
//
// CloseDoor can legitimately starve while the user keeps the door open,
// so it is annotated `postpone` in the states that defer it (§3.2's
// refined liveness specification).

// user -> elevator
event OpenDoor;
event CloseDoor;
// elevator -> door
event SendCmdToOpen;
event SendCmdToClose;
event SendCmdToStop;
event SendCmdToReset;
// door -> elevator
event DoorOpened;
event DoorClosed;
event DoorStopped;
event ObjectDetected;
// elevator -> timer
event StartTimer;
event StopTimer;
// timer -> elevator
event TimerFired;
event TimerStopped;
// local events
event unit;
event StopTimerReturned;

machine Elevator {
    ghost var TimerV : id;
    ghost var DoorV : id;

    action Ignore { skip; }

    state Init {
        entry {
            TimerV := new Timer(owner = this);
            DoorV := new Door(owner = this);
            raise(unit);
        }
        on unit goto Closed;
    }

    state Closed {
        defer CloseDoor;
        postpone CloseDoor;
        on OpenDoor goto Opening;
    }

    state Opening {
        defer CloseDoor;
        postpone CloseDoor;
        entry { send(DoorV, SendCmdToOpen); }
        on OpenDoor do Ignore;
        on DoorOpened goto Opened;
    }

    state Opened {
        defer CloseDoor;
        postpone CloseDoor;
        entry {
            send(DoorV, SendCmdToReset);
            send(TimerV, StartTimer);
        }
        on TimerFired goto OkToClose;
        on StopTimerReturned goto Opened;
        on OpenDoor push StoppingTimer;
    }

    state OkToClose {
        defer OpenDoor;
        postpone OpenDoor;
        entry { send(TimerV, StartTimer); }
        on TimerFired goto Closing;
        on StopTimerReturned goto Closing;
        on CloseDoor push StoppingTimer;
    }

    state Closing {
        defer CloseDoor;
        postpone CloseDoor;
        entry { send(DoorV, SendCmdToClose); }
        on OpenDoor goto StoppingDoor;
        on DoorClosed goto Closed;
        on ObjectDetected goto Opening;
    }

    state StoppingDoor {
        defer CloseDoor;
        postpone CloseDoor;
        entry { send(DoorV, SendCmdToStop); }
        on OpenDoor do Ignore;
        on DoorOpened goto Opened;
        on DoorClosed goto Closed;
        on DoorStopped goto Opening;
        on ObjectDetected goto Opening;
    }

    // ---- subroutine: stop the timer, absorbing the fired/stopped race.
    state StoppingTimer {
        defer OpenDoor, CloseDoor, ObjectDetected;
        postpone OpenDoor, CloseDoor, ObjectDetected;
        entry { send(TimerV, StopTimer); }
        on TimerFired goto WaitingForTimer;
        on TimerStopped goto ReturnState;
    }

    state WaitingForTimer {
        defer OpenDoor, CloseDoor, ObjectDetected;
        postpone OpenDoor, CloseDoor, ObjectDetected;
        on TimerStopped goto ReturnState;
    }

    state ReturnState {
        entry { raise(StopTimerReturned); }
    }
}

// ---- environment (ghost machines, Figure 2) --------------------------

ghost machine User {
    var elevator : id;
    var budget : int;

    state Init {
        entry {
            elevator := new Elevator();
            raise(unit);
        }
        on unit goto Loop;
    }

    state Loop {
        entry {
            if (budget > 0) {
                budget := budget - 1;
                if (*) {
                    send(elevator, OpenDoor);
                } else {
                    send(elevator, CloseDoor);
                }
                raise(unit);
            }
        }
        on unit goto Loop;
    }
}

ghost machine Door {
    var owner : id;

    action IgnoreCmd { skip; }

    state WaitForCmd {
        on SendCmdToReset do IgnoreCmd;
        on SendCmdToStop do IgnoreCmd;
        on SendCmdToOpen goto DoorOpening;
        on SendCmdToClose goto DoorClosing;
    }

    state DoorOpening {
        defer SendCmdToReset;
        entry {
            send(owner, DoorOpened);
            raise(unit);
        }
        on unit goto WaitForCmd;
    }

    state DoorClosing {
        defer SendCmdToReset;
        entry {
            if (*) {
                send(owner, ObjectDetected);
                raise(unit);
            } else {
                // Local phase marker (the event is only raised, never
                // sent, so reusing StopTimerReturned as "half closed" is
                // safe — the elevator never sees it from the door).
                raise(StopTimerReturned);
            }
        }
        on unit goto WaitForCmd;
        on StopTimerReturned goto DoorClosingPhase2;
    }

    state DoorClosingPhase2 {
        defer SendCmdToReset;
        entry {
            if (*) {
                send(owner, DoorClosed);
                raise(unit);
            }
        }
        on unit goto WaitForCmd;
        on SendCmdToStop goto SendDoorStopped;
    }

    state SendDoorStopped {
        defer SendCmdToReset;
        entry {
            send(owner, DoorStopped);
            raise(unit);
        }
        on unit goto WaitForCmd;
    }
}

ghost machine Timer {
    var owner : id;

    state TimerIdle {
        on StartTimer goto TimerStarted;
        on StopTimer goto SendStopResp;
    }

    state TimerStarted {
        entry {
            if (*) { raise(unit); }
        }
        on unit goto TimerFiredState;
        on StopTimer goto SendStopResp;
    }

    state TimerFiredState {
        entry {
            send(owner, TimerFired);
        }
        on StartTimer goto TimerStarted;
        on StopTimer goto SendStopResp;
    }

    state SendStopResp {
        entry {
            send(owner, TimerStopped);
            raise(unit);
        }
        on unit goto TimerIdle;
        defer StartTimer;
    }
}

main User(budget = 2);
