// A software implementation of German's cache coherence protocol — the
// third benchmark of Figure 7 of the paper.
//
// A Home (directory) machine serializes coherence requests from two
// Client caches. Shared grants may coexist; an exclusive grant requires
// invalidating every sharer and the previous owner first. The coherence
// invariant is checked by assertions in the Home machine: exclusive
// ownership and sharers never coexist.
//
// The environment ghost machine creates the protocol machines and injects
// a bounded number of DoShared/DoExcl commands into the clients.

// environment -> client
event DoShared;
event DoExcl;
// client -> home (payload: the requesting client)
event ReqShared : id;
event ReqExcl : id;
// home -> client
event GrantShared;
event GrantExcl;
event Invalidate;
// client -> home (payload: the acknowledging client)
event InvalidateAck : id;
// local events
event unit;
event waitAck;
event grantNow;

machine Home {
    var s1 : id;
    var s2 : id;
    var s1v : bool;
    var s2v : bool;
    var sharers : int;
    var exclHeld : bool;
    var exclOwner : id;
    var reqClient : id;
    var pendingInv : int;

    action handleAck {
        if (s1v) {
            if (arg == s1) {
                s1v := false;
                sharers := sharers - 1;
            }
        }
        if (s2v) {
            if (arg == s2) {
                s2v := false;
                sharers := sharers - 1;
            }
        }
        if (exclHeld) {
            if (arg == exclOwner) {
                exclHeld := false;
            }
        }
        pendingInv := pendingInv - 1;
        if (pendingInv == 0) {
            raise(grantNow);
        }
    }

    state HomeIdle {
        entry {
            assert(!(exclHeld && (sharers > 0)));
            assert(sharers >= 0);
        }
        on ReqShared goto CheckShared;
        on ReqExcl goto CheckExcl;
    }

    state CheckShared {
        defer ReqShared, ReqExcl;
        postpone ReqShared, ReqExcl;
        entry {
            reqClient := arg;
            if (exclHeld) { // bug-seed-marker
                send(exclOwner, Invalidate);
                pendingInv := 1;
                raise(waitAck);
            } else {
                raise(grantNow);
            }
        }
        on waitAck goto WaitAckShared;
        on grantNow goto DoGrantShared;
    }

    state WaitAckShared {
        defer ReqShared, ReqExcl;
        postpone ReqShared, ReqExcl;
        on InvalidateAck do handleAck;
        on grantNow goto DoGrantShared;
    }

    state DoGrantShared {
        entry {
            if (s1v) {
                s2 := reqClient;
                s2v := true;
            } else {
                s1 := reqClient;
                s1v := true;
            }
            sharers := sharers + 1;
            send(reqClient, GrantShared);
            raise(unit);
        }
        on unit goto HomeIdle;
    }

    state CheckExcl {
        defer ReqShared, ReqExcl;
        postpone ReqShared, ReqExcl;
        entry {
            reqClient := arg;
            pendingInv := 0;
            if (exclHeld) {
                send(exclOwner, Invalidate);
                pendingInv := pendingInv + 1;
            }
            if (s1v) {
                send(s1, Invalidate);
                pendingInv := pendingInv + 1;
            }
            if (s2v) {
                send(s2, Invalidate);
                pendingInv := pendingInv + 1;
            }
            if (pendingInv == 0) {
                raise(grantNow);
            } else {
                raise(waitAck);
            }
        }
        on grantNow goto DoGrantExcl;
        on waitAck goto WaitAckExcl;
    }

    state WaitAckExcl {
        defer ReqShared, ReqExcl;
        postpone ReqShared, ReqExcl;
        on InvalidateAck do handleAck;
        on grantNow goto DoGrantExcl;
    }

    state DoGrantExcl {
        entry {
            assert(sharers == 0);
            assert(!exclHeld);
            exclOwner := reqClient;
            exclHeld := true;
            send(reqClient, GrantExcl);
            raise(unit);
        }
        on unit goto HomeIdle;
    }
}

machine Client {
    var home : id;

    action ackInv {
        send(home, InvalidateAck, this);
    }

    action ignoreCmd { skip; }

    state Invalid {
        on DoShared goto AskingShared;
        on DoExcl goto AskingExcl;
    }

    state AskingShared {
        defer DoShared, DoExcl;
        postpone DoShared, DoExcl;
        entry { send(home, ReqShared, this); }
        on GrantShared goto SharedState;
    }

    state SharedState {
        on Invalidate goto AckAndInvalid;
        on DoExcl goto AskingExcl;
        on DoShared do ignoreCmd;
    }

    state AskingExcl {
        defer DoShared, DoExcl;
        postpone DoShared, DoExcl;
        entry { send(home, ReqExcl, this); }
        on Invalidate do ackInv;
        on GrantExcl goto ExclusiveState;
    }

    state ExclusiveState {
        on Invalidate goto AckAndInvalid;
        on DoShared do ignoreCmd;
        on DoExcl do ignoreCmd;
    }

    state AckAndInvalid {
        entry {
            send(home, InvalidateAck, this);
            raise(unit);
        }
        on unit goto Invalid;
    }
}

ghost machine Env {
    var h : id;
    var c1 : id;
    var c2 : id;
    var budget : int;

    state Init {
        entry {
            h := new Home(s1v = false, s2v = false, sharers = 0,
                          exclHeld = false, pendingInv = 0);
            c1 := new Client(home = h);
            c2 := new Client(home = h);
            raise(unit);
        }
        on unit goto Loop;
    }

    state Loop {
        entry {
            if (budget > 0) {
                budget := budget - 1;
                if (*) {
                    if (*) {
                        send(c1, DoShared);
                    } else {
                        send(c1, DoExcl);
                    }
                } else {
                    if (*) {
                        send(c2, DoShared);
                    } else {
                        send(c2, DoExcl);
                    }
                }
                raise(unit);
            }
        }
        on unit goto Loop;
    }
}

main Env(budget = 2);
