// Scaled analog of the USB *hub* state machine (HSM) of Figure 8: the
// real HubSm manages hub start/stop and suspend/resume while forwarding
// port status changes to the OS; ghost machines model the OS and one
// downstream port.

// OS -> hub
event HubStart;
event HubStop;
event HubSuspend;
event HubResume;
// hub -> OS
event HubNotification : int;
event HubStarted;
event HubStopped;
event HubSuspendAck;
event HubResumeAck;
// hub -> port
event EnablePortNotify;
event DisablePortNotify;
// port -> hub
event PortStatusChange : int;
event PortNotifyDisabled;
// wiring + local
event WirePort : id;
event unit;

machine HubSm {
    var lastStatus : int;
    ghost var osV : id;
    ghost var portV : id;

    action ignoreChange { skip; }

    state HubOff {
        on HubStart goto HubStarting;
        // Stray power commands whose predecessors were deduplicated away.
        on HubSuspend do ignoreChange;
        on HubResume do ignoreChange;
        on HubStop do ignoreChange;
    }

    state HubStarting {
        defer HubSuspend, HubStop;
        postpone HubSuspend, HubStop;
        entry {
            send(portV, EnablePortNotify);
            send(osV, HubStarted);
            raise(unit);
        }
        on unit goto HubReady;
    }

    state HubReady {
        on PortStatusChange goto ForwardChange;
        on HubSuspend goto HubSuspending;
        on HubStop goto HubStopping;
        on HubStart do ignoreChange;
        on HubResume do ignoreChange;
    }

    state ForwardChange {
        entry {
            lastStatus := arg;
            send(osV, HubNotification, lastStatus);
            raise(unit);
        }
        on unit goto HubReady;
    }

    state HubSuspending {
        entry {
            send(osV, HubSuspendAck);
            raise(unit);
        }
        on unit goto HubSuspended;
    }

    state HubSuspended {
        defer PortStatusChange, HubStop;
        postpone PortStatusChange, HubStop;
        on HubResume goto HubResuming;
        on HubSuspend do ignoreChange;
        on HubStart do ignoreChange;
    }

    state HubResuming {
        entry {
            send(osV, HubResumeAck);
            raise(unit);
        }
        on unit goto HubReady;
    }

    state HubStopping {
        defer HubStart;
        postpone HubStart;
        entry { send(portV, DisablePortNotify); }
        on PortStatusChange do ignoreChange;
        on PortNotifyDisabled goto HubFinishStop;
    }

    state HubFinishStop {
        defer HubStart;
        postpone HubStart;
        entry {
            send(osV, HubStopped);
            raise(unit);
        }
        on unit goto HubOff;
    }
}

ghost machine OsHub {
    var hub : id;
    var port : id;
    var phase : int; // 0 off, 1 ready, 2 suspended
    var budget : int;

    action note { skip; }

    state OInit {
        entry {
            port := new PortSim(flips = 1);
            hub := new HubSm(portV = port, osV = this);
            send(port, WirePort, hub);
            phase := 0;
            raise(unit);
        }
        on unit goto OLoop;
    }

    state OLoop {
        entry {
            if (budget > 0) {
                budget := budget - 1;
                if (phase == 0) {
                    send(hub, HubStart);
                    phase := 1;
                } else { if (phase == 1) {
                    if (*) {
                        send(hub, HubSuspend);
                        phase := 2;
                    } else {
                        send(hub, HubStop);
                        phase := 0;
                    }
                } else {
                    send(hub, HubResume);
                    phase := 1;
                } }
                raise(unit);
            }
        }
        on unit goto OLoop;
        on HubStarted do note;
        on HubStopped do note;
        on HubSuspendAck do note;
        on HubResumeAck do note;
        on HubNotification do note;
    }
}

ghost machine PortSim {
    var hub : id;
    var enabled : bool;
    var cur : int;
    var flips : int;

    state PInit {
        on WirePort goto PWire;
    }

    state PWire {
        entry {
            hub := arg;
            enabled := false;
            cur := 0;
            raise(unit);
        }
        on unit goto PLoop;
    }

    state PLoop {
        entry {
            if (enabled && (flips > 0)) {
                if (*) {
                    flips := flips - 1;
                    cur := 1 - cur;
                    send(hub, PortStatusChange, cur);
                    raise(unit);
                }
            }
        }
        on unit goto PLoop;
        on EnablePortNotify goto PEnabled;
        on DisablePortNotify goto PDisabled;
    }

    state PEnabled {
        entry {
            enabled := true;
            raise(unit);
        }
        on unit goto PLoop;
    }

    state PDisabled {
        entry {
            enabled := false;
            send(hub, PortNotifyDisabled);
            raise(unit);
        }
        on unit goto PLoop;
    }
}

main OsHub(budget = 3);
