//! Static checks for P programs: the simple type system of §3.3 of the
//! paper, transition determinism, and the ghost-erasure discipline.
//!
//! The paper's type system "mostly does simple checks to make sure the
//! machines, transitions, and statements are well-formed", with one
//! non-trivial part: ghost machines, variables and events must be erasable
//! at compilation without changing the semantics of real machines. This
//! crate implements both the checks ([`check`]) and the erasure transform
//! itself ([`erase`]).
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     event ping;
//!     machine M {
//!         var n : int;
//!         state Init { entry { n := 1; } }
//!     }
//!     main M();
//! "#;
//! let program = p_parser::parse(src).unwrap();
//! let info = p_typecheck::check(&program).unwrap();
//! assert!(info.warnings.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod check;
mod diag;
mod erase;
mod ghost;

pub use check::{check, CheckInfo};
pub use diag::{CheckErrors, Diagnostic, Severity};
pub use erase::{erase, EraseError};
pub use ghost::expr_is_tainted;

#[cfg(test)]
mod tests {
    use super::*;
    use p_parser::parse;

    fn errors_of(src: &str) -> Vec<String> {
        match check(&parse(src).unwrap()) {
            Ok(_) => Vec::new(),
            Err(e) => e.errors().map(|d| d.message.clone()).collect(),
        }
    }

    fn assert_error_containing(src: &str, needle: &str) {
        let errs = errors_of(src);
        assert!(
            errs.iter().any(|e| e.contains(needle)),
            "expected an error containing `{needle}`, got {errs:?}"
        );
    }

    #[test]
    fn accepts_wellformed_program() {
        let src = r#"
            event go;
            event data : int;
            machine M {
                var x : int;
                var peer : id;
                action drop { skip; }
                state A {
                    defer data;
                    entry { x := 1; raise(go); }
                    exit { x := x + 1; }
                    on go goto B;
                }
                state B {
                    on data do drop;
                    on go push A;
                }
            }
            main M(x = 0);
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn rejects_duplicate_declarations() {
        assert_error_containing(
            "event e; event e; machine M { state S { } } main M();",
            "duplicate event",
        );
        assert_error_containing(
            "machine M { state S { } } machine M { state S { } } main M();",
            "duplicate machine",
        );
        assert_error_containing(
            "machine M { state S { } state S { } } main M();",
            "duplicate state",
        );
        assert_error_containing(
            "machine M { var x : int; var x : bool; state S { } } main M();",
            "duplicate variable",
        );
    }

    #[test]
    fn rejects_nondeterministic_transitions() {
        assert_error_containing(
            r#"
            event e;
            machine M {
                state A { on e goto B; on e push B; }
                state B { }
            }
            main M();
            "#,
            "nondeterministic transitions",
        );
    }

    #[test]
    fn warns_on_shadowed_binding() {
        let src = r#"
            event e;
            machine M {
                action a { skip; }
                state A { on e goto B; on e do a; }
                state B { }
            }
            main M();
        "#;
        let info = check(&parse(src).unwrap()).unwrap();
        assert_eq!(info.warnings.len(), 1);
        assert!(info.warnings[0].message.contains("shadowed"));
    }

    #[test]
    fn rejects_type_errors() {
        assert_error_containing(
            r#"
            machine M { var x : int; state S { entry { x := true; } } }
            main M();
            "#,
            "type mismatch",
        );
        assert_error_containing(
            r#"
            machine M { var b : bool; state S { entry { b := 1 + true; } } }
            main M();
            "#,
            "must have type int",
        );
        assert_error_containing(
            r#"
            machine M { state S { entry { if (3) { skip; } } } }
            main M();
            "#,
            "must be boolean",
        );
        assert_error_containing(
            r#"
            machine M { var x : int; state S { entry { assert(x); } } }
            main M();
            "#,
            "must be boolean",
        );
    }

    #[test]
    fn null_inhabits_every_type() {
        let src = r#"
            event e : int;
            machine M {
                var x : int;
                var p : id;
                state S { entry { x := null; p := null; raise(e, null); } }
            }
            main M();
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn rejects_nondet_in_real_machine() {
        assert_error_containing(
            r#"
            machine M { var b : bool; state S { entry { b := *; } } }
            main M();
            "#,
            "only in ghost machines",
        );
    }

    #[test]
    fn allows_nondet_in_ghost_machine() {
        let src = r#"
            ghost machine G { var b : bool; state S { entry { b := *; } } }
            main G();
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn rejects_ghost_flow_into_real_variable() {
        assert_error_containing(
            r#"
            machine M {
                var x : int;
                ghost var g : int;
                state S { entry { g := 1; x := g; } }
            }
            main M();
            "#,
            "ghost data flows into real variable",
        );
    }

    #[test]
    fn rejects_ghost_controlled_branching() {
        assert_error_containing(
            r#"
            machine M {
                ghost var g : int;
                state S { entry { if (g == 1) { skip; } } }
            }
            main M();
            "#,
            "ghost data controls real branching",
        );
    }

    #[test]
    fn allows_ghost_in_assertions() {
        let src = r#"
            machine M {
                var x : int;
                ghost var g : int;
                state S { entry { x := 1; g := x; assert(g == x); } }
            }
            main M();
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn machine_id_separation() {
        assert_error_containing(
            r#"
            machine M {
                var p : id;
                state S { entry { p := new G(); } }
            }
            ghost machine G { state S { } }
            main M();
            "#,
            "ghost machine `G` stored into real variable",
        );
        assert_error_containing(
            r#"
            machine M {
                ghost var p : id;
                state S { entry { p := new N(); } }
            }
            machine N { state S { } }
            main M();
            "#,
            "real machine `N` stored into ghost variable",
        );
    }

    #[test]
    fn send_to_ghost_with_ghost_payload_is_fine() {
        let src = r#"
            event e : int;
            machine M {
                ghost var env : id;
                ghost var g : int;
                state S { entry { env := new G(); send(env, e, g); } }
            }
            ghost machine G { state S { defer e; } }
            main M();
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn rejects_ghost_payload_to_real_machine() {
        assert_error_containing(
            r#"
            event e : int;
            machine M {
                var peer : id;
                ghost var g : int;
                state S { entry { peer := new N(); send(peer, e, g); } }
            }
            machine N { state S { defer e; } }
            main M();
            "#,
            "ghost data flows into the payload",
        );
    }

    #[test]
    fn rejects_control_transfer_in_exit() {
        for bad in ["raise(e);", "return;", "leave;", "call S;"] {
            let src = format!(
                r#"
                event e;
                machine M {{
                    state S {{ exit {{ {bad} }} }}
                }}
                main M();
                "#
            );
            let errs = errors_of(&src);
            assert!(
                errs.iter().any(|m| m.contains("not allowed in exit")),
                "for `{bad}`: {errs:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_payload_types() {
        assert_error_containing(
            r#"
            event e : int;
            machine M { state S { entry { raise(e, true); } } }
            main M();
            "#,
            "payload of event `e` must have type int",
        );
        assert_error_containing(
            r#"
            event e;
            machine M { state S { entry { raise(e, 3); } } }
            main M();
            "#,
            "carries no payload",
        );
    }

    #[test]
    fn rejects_bad_main() {
        assert_error_containing(
            "machine M { state S { } } main M(x = 1);",
            "unknown variable",
        );
        assert_error_containing(
            "machine M { var x : int; state S { } } main M(x = true);",
            "wrong type",
        );
    }

    #[test]
    fn checks_foreign_signatures() {
        assert_error_containing(
            r#"
            machine M {
                var x : int;
                foreign fn f(int) : int;
                state S { entry { x := f(1, 2); } }
            }
            main M();
            "#,
            "expects 1 argument",
        );
        assert_error_containing(
            r#"
            machine M {
                var b : bool;
                foreign fn f(int) : int;
                state S { entry { b := f(1); } }
            }
            main M();
            "#,
            "does not match variable",
        );
        assert_error_containing(
            r#"
            machine M {
                state S { entry { g(1); } }
            }
            main M();
            "#,
            "undeclared foreign function",
        );
    }

    #[test]
    fn model_body_restrictions() {
        assert_error_containing(
            r#"
            event e;
            machine M {
                var x : int;
                foreign fn f() : void { x := 1; }
                state S { }
            }
            main M();
            "#,
            "model bodies may only assign to `result`",
        );
        assert_error_containing(
            r#"
            event e;
            machine M {
                var p : id;
                foreign fn f() : void { send(p, e); }
                state S { }
            }
            main M();
            "#,
            "model bodies may not send",
        );
    }

    #[test]
    fn ghost_machines_are_unrestricted() {
        // Ghost machines may send to real machines, use `*`, and mix data
        // freely — they are erased wholesale.
        let src = r#"
            event e : int;
            machine Real { state S { defer e; } }
            ghost machine Env {
                var target : id;
                var n : int;
                state S {
                    entry {
                        target := new Real();
                        n := 0;
                        while (*) { n := n + 1; }
                        send(target, e, n);
                    }
                }
            }
            main Env();
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn model_bodies_with_params_and_result_check() {
        let src = r#"
            machine M {
                var x : int;
                ghost var g : int;
                foreign fn f(a : int, b : int) : int {
                    result := a + b + g;
                    if (result > 10) { result := 10; }
                }
                state S { entry { x := f(1, 2); } }
            }
            main M();
        "#;
        assert!(errors_of(src).is_empty(), "{:?}", errors_of(src));
    }

    #[test]
    fn model_body_param_shadowing_rejected() {
        assert_error_containing(
            r#"
            machine M {
                var x : int;
                foreign fn f(x : int) : int { result := x; }
                state S { }
            }
            main M();
            "#,
            "shadows a variable",
        );
        assert_error_containing(
            r#"
            machine M {
                foreign fn f(a : int, a : int) : int { result := a; }
                state S { }
            }
            main M();
            "#,
            "duplicate parameter",
        );
    }

    #[test]
    fn reports_multiple_errors_at_once() {
        let src = r#"
            machine M {
                var x : int;
                state S { entry { x := true; y := 1; if (3) { skip; } } }
            }
            main M();
        "#;
        let errs = errors_of(src);
        assert!(errs.len() >= 3, "got {errs:?}");
    }
}
