//! The erasure transform of §3.3: removes ghost machines, ghost variables
//! and every statement that only exists for verification, producing the
//! program that the compiler and runtime actually execute.
//!
//! The type system (see [`crate::check`]) guarantees that erasure is
//! semantics-preserving for the real machines: ghost data never influences
//! real variables, real control flow, or events delivered to real
//! machines.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use p_ast::{MachineDecl, MainDecl, Program, Span, StateDecl, Stmt, StmtKind, Symbol};

use crate::ghost::expr_is_tainted;

/// Erasure failed because nothing would remain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EraseError {
    message: String,
}

impl EraseError {
    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for EraseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "erasure failed: {}", self.message)
    }
}

impl Error for EraseError {}

/// Erases all ghost elements from `program`.
///
/// The result contains only real machines, with ghost variables and
/// ghost-only statements removed and foreign model bodies dropped. If the
/// program's `main` machine is ghost (the usual case for verification
/// closures, where the environment drives the system), the erased
/// program's `main` becomes the first real machine with no initializers —
/// at execution time the host interface code decides what to instantiate
/// (§4), so this is only a default.
///
/// # Errors
///
/// Fails if the program has no real machines.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event ping;
///     machine Real {
///         ghost var env : id;
///         state Init { entry { send(env, ping); } }
///     }
///     ghost machine Env { state Idle { } }
///     main Env();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let erased = p_typecheck::erase(&program).unwrap();
/// assert_eq!(erased.machines.len(), 1);
/// assert!(erased.machines[0].vars.is_empty());
/// ```
pub fn erase(program: &Program) -> Result<Program, EraseError> {
    let ghost_machines: HashSet<Symbol> = program
        .machines
        .iter()
        .filter(|m| m.ghost)
        .map(|m| m.name)
        .collect();

    let machines: Vec<MachineDecl> = program
        .machines
        .iter()
        .filter(|m| !m.ghost)
        .map(|m| erase_machine(m, &ghost_machines))
        .collect();

    if machines.is_empty() {
        return Err(EraseError {
            message: "program has no real machines".to_owned(),
        });
    }

    let main = if ghost_machines.contains(&program.main.machine) {
        MainDecl {
            machine: machines[0].name,
            inits: Vec::new(),
            span: Span::SYNTHETIC,
        }
    } else {
        let ghost_vars: HashSet<Symbol> = program
            .machine(program.main.machine)
            .map(|m| m.vars.iter().filter(|v| v.ghost).map(|v| v.name).collect())
            .unwrap_or_default();
        MainDecl {
            machine: program.main.machine,
            inits: program
                .main
                .inits
                .iter()
                .filter(|i| !ghost_vars.contains(&i.var))
                .cloned()
                .collect(),
            span: program.main.span,
        }
    };

    Ok(Program {
        events: program.events.clone(),
        machines,
        main,
        interner: program.interner.clone(),
    })
}

fn erase_machine(decl: &MachineDecl, ghost_machines: &HashSet<Symbol>) -> MachineDecl {
    let ghost_vars: HashSet<Symbol> = decl
        .vars
        .iter()
        .filter(|v| v.ghost)
        .map(|v| v.name)
        .collect();

    let cx = EraseCtx {
        ghost_vars: &ghost_vars,
        ghost_machines,
    };

    MachineDecl {
        name: decl.name,
        ghost: false,
        vars: decl.vars.iter().filter(|v| !v.ghost).cloned().collect(),
        actions: decl
            .actions
            .iter()
            .map(|a| p_ast::ActionDecl {
                name: a.name,
                body: erase_stmt(&a.body, &cx),
                span: a.span,
            })
            .collect(),
        states: decl
            .states
            .iter()
            .map(|s| StateDecl {
                name: s.name,
                deferred: s.deferred.clone(),
                postponed: s.postponed.clone(),
                entry: erase_stmt(&s.entry, &cx),
                exit: erase_stmt(&s.exit, &cx),
                span: s.span,
            })
            .collect(),
        transitions: decl.transitions.clone(),
        bindings: decl.bindings.clone(),
        foreign: decl
            .foreign
            .iter()
            .map(|f| p_ast::ForeignFnDecl {
                name: f.name,
                params: f.params.clone(),
                ret: f.ret,
                model_body: None,
                span: f.span,
            })
            .collect(),
        span: decl.span,
    }
}

struct EraseCtx<'a> {
    ghost_vars: &'a HashSet<Symbol>,
    ghost_machines: &'a HashSet<Symbol>,
}

/// Rewrites a statement, dropping ghost-only parts. Dropped statements
/// become `skip`-free: blocks simply lose them.
fn erase_stmt(s: &Stmt, cx: &EraseCtx<'_>) -> Stmt {
    erase_stmt_opt(s, cx).unwrap_or_else(Stmt::skip)
}

fn erase_stmt_opt(s: &Stmt, cx: &EraseCtx<'_>) -> Option<Stmt> {
    match &s.kind {
        StmtKind::Assign { dst, .. } if cx.ghost_vars.contains(dst) => None,
        StmtKind::New { machine, .. } if cx.ghost_machines.contains(machine) => None,
        StmtKind::New {
            dst,
            machine,
            inits,
        } => {
            // Creation of a real machine survives; initializers that target
            // the created machine's ghost variables are dropped by the
            // created machine's own erasure of its variable list, but the
            // initializer entry itself must also go (the variable no longer
            // exists). We cannot see the target's variables here, so keep
            // the initializer list intact — the checker guarantees ghost
            // vars of real machines are only initialized from ghost
            // contexts, and lowering of the erased program resolves
            // initializers against the erased variable list, failing loudly
            // if one remains. In practice corpus programs initialize ghost
            // vars inside ghost machines only.
            Some(Stmt::spanned(
                StmtKind::New {
                    dst: *dst,
                    machine: *machine,
                    inits: inits.clone(),
                },
                s.span,
            ))
        }
        StmtKind::Send { target, .. } if expr_is_tainted(target, cx.ghost_vars) => None,
        StmtKind::Assert(e) if expr_is_tainted(e, cx.ghost_vars) => None,
        StmtKind::ForeignCall { dst, func, args } => {
            // A foreign call whose destination is ghost keeps its (real)
            // side effect but loses the binding.
            let dst = dst.filter(|d| !cx.ghost_vars.contains(d));
            Some(Stmt::spanned(
                StmtKind::ForeignCall {
                    dst,
                    func: *func,
                    args: args.clone(),
                },
                s.span,
            ))
        }
        StmtKind::Block(stmts) => {
            let kept: Vec<Stmt> = stmts
                .iter()
                .filter_map(|st| erase_stmt_opt(st, cx))
                .collect();
            Some(Stmt::spanned(StmtKind::Block(kept), s.span))
        }
        StmtKind::If { cond, then, els } => Some(Stmt::spanned(
            StmtKind::If {
                cond: cond.clone(),
                then: Box::new(erase_stmt(then, cx)),
                els: Box::new(erase_stmt(els, cx)),
            },
            s.span,
        )),
        StmtKind::While { cond, body } => Some(Stmt::spanned(
            StmtKind::While {
                cond: cond.clone(),
                body: Box::new(erase_stmt(body, cx)),
            },
            s.span,
        )),
        _ => Some(s.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_parser::parse;

    const SRC: &str = r#"
        event ping;
        event done : int;

        machine Driver {
            var count : int;
            ghost var env : id;
            ghost var checkpoint : int;
            state Init {
                entry {
                    count := 0;
                    env := new Environment(owner = this);
                    checkpoint := count;
                    send(env, ping);
                    assert(count == checkpoint);
                    assert(count >= 0);
                    count := count + 1;
                }
            }
        }

        ghost machine Environment {
            var owner : id;
            state Idle {
                entry { if (*) { send(owner, ping); } }
                on ping goto Idle;
            }
        }

        main Environment();
    "#;

    #[test]
    fn erases_ghost_machines_and_vars() {
        let p = parse(SRC).unwrap();
        crate::check(&p).unwrap();
        let erased = erase(&p).unwrap();
        assert_eq!(erased.machines.len(), 1);
        let driver = &erased.machines[0];
        assert_eq!(erased.name(driver.name), "Driver");
        assert_eq!(driver.vars.len(), 1, "ghost vars removed");
        assert!(!driver.ghost);
    }

    #[test]
    fn erases_ghost_statements_but_keeps_real_ones() {
        let p = parse(SRC).unwrap();
        let erased = erase(&p).unwrap();
        let driver = &erased.machines[0];
        let entry = &driver.states[0].entry;
        let text = p_ast::print_stmt(entry, &erased.interner);
        assert!(text.contains("count := 0;"), "{text}");
        assert!(text.contains("count := count + 1;"), "{text}");
        assert!(text.contains("assert(count >= 0);"), "real assert kept");
        assert!(!text.contains("env"), "ghost statements gone: {text}");
        assert!(!text.contains("checkpoint"), "{text}");
        assert!(!text.contains("new"), "{text}");
    }

    #[test]
    fn ghost_main_replaced_by_first_real_machine() {
        let p = parse(SRC).unwrap();
        let erased = erase(&p).unwrap();
        assert_eq!(erased.name(erased.main.machine), "Driver");
    }

    #[test]
    fn real_main_kept() {
        let src = r#"
            machine M { var x : int; state S { } }
            main M(x = 3);
        "#;
        let p = parse(src).unwrap();
        let erased = erase(&p).unwrap();
        assert_eq!(erased.name(erased.main.machine), "M");
        assert_eq!(erased.main.inits.len(), 1);
    }

    #[test]
    fn fails_without_real_machines() {
        let src = r#"
            ghost machine G { state S { } }
            main G();
        "#;
        let p = parse(src).unwrap();
        assert!(erase(&p).is_err());
    }

    #[test]
    fn erased_program_parses_and_lowers() {
        let p = parse(SRC).unwrap();
        let erased = erase(&p).unwrap();
        // The erased program is a valid P program end to end.
        let text = p_ast::print_program(&erased);
        let reparsed = p_parser::parse(&text).unwrap();
        crate::check(&reparsed).unwrap();
    }
}
