//! The static checker: well-formedness, the simple type system of §3.3,
//! transition determinism, and the ghost-erasure rules.

use std::collections::{HashMap, HashSet};

use p_ast::{
    Expr, ExprKind, Initializer, MachineDecl, Program, Span, Stmt, StmtKind, Symbol,
    TransitionKind, Ty,
};

use crate::diag::{CheckErrors, Diagnostic, Severity};
use crate::ghost::expr_is_tainted;

/// Successful checker output.
#[derive(Debug, Clone, Default)]
pub struct CheckInfo {
    /// Non-fatal findings (e.g. action bindings shadowed by transitions).
    pub warnings: Vec<Diagnostic>,
}

/// The type of an expression: an exact P type, or `Any` for ⊥ and `arg`,
/// which inhabit every type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ETy {
    Exact(Ty),
    Any,
}

impl ETy {
    fn fits(self, expected: Ty) -> bool {
        match self {
            ETy::Any => true,
            ETy::Exact(t) => expected.accepts(t),
        }
    }

    fn same_as(self, other: ETy) -> bool {
        match (self, other) {
            (ETy::Any, _) | (_, ETy::Any) => true,
            (ETy::Exact(a), ETy::Exact(b)) => a == b,
        }
    }
}

/// Where a statement occurs; some forms are restricted by position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StmtPos {
    Entry,
    /// Exit statements may not transfer control (`raise`, `return`,
    /// `leave`, `call`): they run embedded inside a transition, and the
    /// formal rules of Figure 5 assume they complete normally.
    Exit,
    Action,
    /// Erasable model bodies of foreign functions: additionally may not
    /// send, create or delete.
    ModelBody,
}

/// Checks a program.
///
/// # Errors
///
/// Returns all diagnostics when at least one has error severity. The
/// checks performed:
///
/// * name resolution and uniqueness for events, machines, states,
///   variables, actions and foreign functions;
/// * every machine has at least one state; transitions and bindings
///   reference declared states, events and actions;
/// * transition determinism: at most one outgoing transition (step or
///   call) and at most one action binding per `(state, event)`;
/// * the type system of Figure 3 over `void/bool/int/event/id` with ⊥
///   (`null`) and `arg` inhabiting every type;
/// * real machines are deterministic: no `*` outside ghost machines
///   (§3.3 check 2);
/// * ghost erasure (§3.3 check 3): ghost data never flows into real
///   variables, real control flow, payloads of sends to real machines,
///   raise payloads, or foreign-function arguments; `new` of a ghost
///   machine must target a ghost variable and `new` of a real machine a
///   real variable (the machine-identifier separation rule); asserts may
///   read ghost data (they are erased);
/// * exit statements do not transfer control; model bodies are erasable.
pub fn check(program: &Program) -> Result<CheckInfo, CheckErrors> {
    let mut checker = Checker::new(program);
    checker.run();
    let has_errors = checker.diags.iter().any(|d| d.severity == Severity::Error);
    if has_errors {
        Err(CheckErrors {
            diagnostics: checker.diags,
        })
    } else {
        Ok(CheckInfo {
            warnings: checker.diags,
        })
    }
}

struct Checker<'p> {
    program: &'p Program,
    diags: Vec<Diagnostic>,
    events: HashMap<Symbol, Ty>,
    machine_ghost: HashMap<Symbol, bool>,
    /// True while checking an erasable model body, where ghost
    /// nondeterminism (`*`) is legal even inside real machines.
    in_model_body: bool,
}

struct MachineCtx<'p> {
    decl: &'p MachineDecl,
    /// name → (type, ghost)
    vars: HashMap<Symbol, (Ty, bool)>,
    ghost_vars: HashSet<Symbol>,
    states: HashSet<Symbol>,
}

impl<'p> Checker<'p> {
    fn new(program: &'p Program) -> Checker<'p> {
        Checker {
            program,
            diags: Vec::new(),
            events: HashMap::new(),
            machine_ghost: HashMap::new(),
            in_model_body: false,
        }
    }

    fn name(&self, s: Symbol) -> &str {
        self.program.interner.resolve(s)
    }

    fn error(&mut self, message: String, span: Span) {
        self.diags.push(Diagnostic::error(message, span));
    }

    fn warn(&mut self, message: String, span: Span) {
        self.diags.push(Diagnostic::warning(message, span));
    }

    fn run(&mut self) {
        // Global declarations.
        for ev in &self.program.events {
            if self.events.insert(ev.name, ev.payload).is_some() {
                self.error(format!("duplicate event `{}`", self.name(ev.name)), ev.span);
            }
        }
        for m in &self.program.machines {
            if self.machine_ghost.insert(m.name, m.ghost).is_some() {
                self.error(format!("duplicate machine `{}`", self.name(m.name)), m.span);
            }
        }

        for m in &self.program.machines {
            self.check_machine(m);
        }
        self.check_main();
    }

    fn machine_ctx(&mut self, decl: &'p MachineDecl) -> MachineCtx<'p> {
        let mut vars = HashMap::new();
        let mut ghost_vars = HashSet::new();
        for v in &decl.vars {
            if vars.insert(v.name, (v.ty, v.ghost)).is_some() {
                self.error(
                    format!(
                        "duplicate variable `{}` in machine `{}`",
                        self.name(v.name),
                        self.name(decl.name)
                    ),
                    v.span,
                );
            }
            // In a ghost machine every variable is effectively ghost, but
            // taint is irrelevant there; track declared ghostness only.
            if v.ghost {
                ghost_vars.insert(v.name);
            }
        }
        let mut states = HashSet::new();
        for s in &decl.states {
            if !states.insert(s.name) {
                self.error(
                    format!(
                        "duplicate state `{}` in machine `{}`",
                        self.name(s.name),
                        self.name(decl.name)
                    ),
                    s.span,
                );
            }
        }
        MachineCtx {
            decl,
            vars,
            ghost_vars,
            states,
        }
    }

    fn check_machine(&mut self, decl: &'p MachineDecl) {
        if decl.states.is_empty() {
            self.error(
                format!("machine `{}` declares no states", self.name(decl.name)),
                decl.span,
            );
            return;
        }
        let ctx = self.machine_ctx(decl);

        // Duplicate action / foreign names.
        let mut action_names = HashSet::new();
        for a in &decl.actions {
            if !action_names.insert(a.name) {
                self.error(format!("duplicate action `{}`", self.name(a.name)), a.span);
            }
        }
        let mut fn_names = HashSet::new();
        for f in &decl.foreign {
            if !fn_names.insert(f.name) {
                self.error(
                    format!("duplicate foreign function `{}`", self.name(f.name)),
                    f.span,
                );
            }
        }

        // Transition determinism and reference validity.
        let mut outgoing: HashMap<(Symbol, Symbol), TransitionKind> = HashMap::new();
        for t in &decl.transitions {
            if !ctx.states.contains(&t.from) {
                self.error(
                    format!("transition from undeclared state `{}`", self.name(t.from)),
                    t.span,
                );
            }
            if !ctx.states.contains(&t.to) {
                self.error(
                    format!("transition to undeclared state `{}`", self.name(t.to)),
                    t.span,
                );
            }
            if !self.events.contains_key(&t.event) {
                self.error(
                    format!("transition on undeclared event `{}`", self.name(t.event)),
                    t.span,
                );
            }
            if outgoing.insert((t.from, t.event), t.kind).is_some() {
                self.error(
                    format!(
                        "nondeterministic transitions from state `{}` on event `{}`",
                        self.name(t.from),
                        self.name(t.event)
                    ),
                    t.span,
                );
            }
        }
        let mut bound: HashSet<(Symbol, Symbol)> = HashSet::new();
        for b in &decl.bindings {
            if !ctx.states.contains(&b.state) {
                self.error(
                    format!("binding on undeclared state `{}`", self.name(b.state)),
                    b.span,
                );
            }
            if !self.events.contains_key(&b.event) {
                self.error(
                    format!("binding on undeclared event `{}`", self.name(b.event)),
                    b.span,
                );
            }
            if !action_names.contains(&b.action) {
                self.error(
                    format!("binding to undeclared action `{}`", self.name(b.action)),
                    b.span,
                );
            }
            if !bound.insert((b.state, b.event)) {
                self.error(
                    format!(
                        "multiple actions bound to state `{}` on event `{}`",
                        self.name(b.state),
                        self.name(b.event)
                    ),
                    b.span,
                );
            }
            if outgoing.contains_key(&(b.state, b.event)) {
                self.warn(
                    format!(
                        "action binding on state `{}` for event `{}` is shadowed by a transition",
                        self.name(b.state),
                        self.name(b.event)
                    ),
                    b.span,
                );
            }
        }

        // Deferred / postponed sets name declared events.
        for s in &decl.states {
            for &e in s.deferred.iter().chain(s.postponed.iter()) {
                if !self.events.contains_key(&e) {
                    self.error(
                        format!(
                            "state `{}` defers/postpones undeclared event `{}`",
                            self.name(s.name),
                            self.name(e)
                        ),
                        s.span,
                    );
                }
            }
        }

        // Statement bodies.
        for s in &decl.states {
            self.check_stmt(&s.entry, &ctx, StmtPos::Entry);
            self.check_stmt(&s.exit, &ctx, StmtPos::Exit);
        }
        for a in &decl.actions {
            self.check_stmt(&a.body, &ctx, StmtPos::Action);
        }
        for f in &decl.foreign {
            let Some(body) = &f.model_body else {
                continue;
            };
            // The model body sees the machine's variables (read-only for
            // real ones, ghost reads are fine since the body is erased),
            // the named parameters, and the assignable `result`.
            let mut model_ctx = MachineCtx {
                decl: ctx.decl,
                vars: ctx.vars.clone(),
                ghost_vars: ctx.ghost_vars.clone(),
                states: ctx.states.clone(),
            };
            let mut seen_params = HashSet::new();
            for p in &f.params {
                let Some(pname) = p.name else {
                    continue;
                };
                if model_ctx.vars.contains_key(&pname) {
                    self.error(
                        format!(
                            "parameter `{}` of foreign function `{}` shadows a variable",
                            self.name(pname),
                            self.name(f.name)
                        ),
                        f.span,
                    );
                }
                if !seen_params.insert(pname) {
                    self.error(
                        format!(
                            "duplicate parameter `{}` in foreign function `{}`",
                            self.name(pname),
                            self.name(f.name)
                        ),
                        f.span,
                    );
                }
                model_ctx.vars.insert(pname, (p.ty, false));
            }
            let result_sym = self.program.interner.get("result");
            if let Some(result_sym) = result_sym {
                if let std::collections::hash_map::Entry::Vacant(e) =
                    model_ctx.vars.entry(result_sym)
                {
                    e.insert((f.ret, true));
                    model_ctx.ghost_vars.insert(result_sym);
                }
            }
            self.in_model_body = true;
            self.check_stmt(body, &model_ctx, StmtPos::ModelBody);
            self.in_model_body = false;
        }
    }

    fn check_main(&mut self) {
        let main = &self.program.main;
        let Some(decl) = self.program.machine(main.machine) else {
            self.error(
                format!(
                    "main declaration names undeclared machine `{}`",
                    self.name(main.machine)
                ),
                main.span,
            );
            return;
        };
        for init in &main.inits {
            let Some(var) = decl.var(init.var) else {
                self.error(
                    format!(
                        "main initializer for unknown variable `{}`",
                        self.name(init.var)
                    ),
                    main.span,
                );
                continue;
            };
            if !is_constant_expr(&init.value) {
                self.error(
                    format!(
                        "main initializer for `{}` must be a constant expression",
                        self.name(init.var)
                    ),
                    init.value.span,
                );
            }
            if let Some(t) = constant_type(&init.value) {
                if !t.fits(var.ty) {
                    self.error(
                        format!(
                            "main initializer for `{}` has the wrong type (expected {})",
                            self.name(init.var),
                            var.ty
                        ),
                        init.value.span,
                    );
                }
            }
        }
    }

    // ----- statements ----------------------------------------------------

    fn check_stmt(&mut self, s: &Stmt, ctx: &MachineCtx<'p>, pos: StmtPos) {
        let ghost_machine = ctx.decl.ghost;
        match &s.kind {
            StmtKind::Skip => {}
            StmtKind::Assign { dst, value } => {
                let vt = self.check_expr(value, ctx);
                let Some(&(dst_ty, dst_ghost)) = ctx.vars.get(dst) else {
                    self.error(
                        format!("assignment to undeclared variable `{}`", self.name(*dst)),
                        s.span,
                    );
                    return;
                };
                if !vt.fits(dst_ty) {
                    self.error(
                        format!(
                            "type mismatch: variable `{}` has type {}",
                            self.name(*dst),
                            dst_ty
                        ),
                        s.span,
                    );
                }
                if pos == StmtPos::ModelBody {
                    let result_sym = self.program.interner.get("result");
                    if result_sym != Some(*dst) {
                        self.error(
                            "model bodies may only assign to `result`".to_owned(),
                            s.span,
                        );
                    }
                }
                if !ghost_machine && !dst_ghost && expr_is_tainted(value, &ctx.ghost_vars) {
                    self.error(
                        format!("ghost data flows into real variable `{}`", self.name(*dst)),
                        s.span,
                    );
                }
            }
            StmtKind::New {
                dst,
                machine,
                inits,
            } => {
                if pos == StmtPos::ModelBody {
                    self.error("model bodies may not create machines".to_owned(), s.span);
                }
                let Some(&target_ghost) = self.machine_ghost.get(machine) else {
                    self.error(
                        format!("new of undeclared machine `{}`", self.name(*machine)),
                        s.span,
                    );
                    return;
                };
                let Some(&(dst_ty, dst_ghost)) = ctx.vars.get(dst) else {
                    self.error(
                        format!(
                            "new result stored into undeclared variable `{}`",
                            self.name(*dst)
                        ),
                        s.span,
                    );
                    return;
                };
                if dst_ty != Ty::Id {
                    self.error(
                        format!(
                            "new result must be stored into a variable of type id, `{}` has type {}",
                            self.name(*dst),
                            dst_ty
                        ),
                        s.span,
                    );
                }
                // Machine-identifier separation (§3.3): ghost machine ids
                // live only in ghost variables, real ids only in real ones.
                if !ghost_machine {
                    if target_ghost && !dst_ghost {
                        self.error(
                            format!(
                                "id of ghost machine `{}` stored into real variable `{}`",
                                self.name(*machine),
                                self.name(*dst)
                            ),
                            s.span,
                        );
                    }
                    if !target_ghost && dst_ghost {
                        self.error(
                            format!(
                                "id of real machine `{}` stored into ghost variable `{}` \
                                 (the creation would be erased)",
                                self.name(*machine),
                                self.name(*dst)
                            ),
                            s.span,
                        );
                    }
                }
                self.check_inits(machine, inits, ctx, s.span, target_ghost);
            }
            StmtKind::Delete => {
                if pos == StmtPos::ModelBody {
                    self.error("model bodies may not delete machines".to_owned(), s.span);
                }
            }
            StmtKind::Send {
                target,
                event,
                payload,
            } => {
                if pos == StmtPos::ModelBody {
                    self.error("model bodies may not send events".to_owned(), s.span);
                }
                let tt = self.check_expr(target, ctx);
                if !tt.fits(Ty::Id) {
                    self.error("send target must have type id".to_owned(), target.span);
                }
                let payload_ty = self.check_event_payload(*event, payload.as_ref(), ctx, s.span);
                let _ = payload_ty;
                if !ghost_machine {
                    let target_tainted = expr_is_tainted(target, &ctx.ghost_vars);
                    if !target_tainted {
                        // A send that survives erasure: its payload must be
                        // real data.
                        if let Some(p) = payload {
                            if expr_is_tainted(p, &ctx.ghost_vars) {
                                self.error(
                                    "ghost data flows into the payload of a send to a real machine"
                                        .to_owned(),
                                    p.span,
                                );
                            }
                        }
                    }
                }
            }
            StmtKind::Raise { event, payload } => {
                if matches!(pos, StmtPos::Exit | StmtPos::ModelBody) {
                    self.error(
                        "raise is not allowed in exit statements or model bodies".to_owned(),
                        s.span,
                    );
                }
                self.check_event_payload(*event, payload.as_ref(), ctx, s.span);
                if !ghost_machine {
                    if let Some(p) = payload {
                        if expr_is_tainted(p, &ctx.ghost_vars) {
                            self.error("ghost data flows into a raise payload".to_owned(), p.span);
                        }
                    }
                }
            }
            StmtKind::Leave => {
                if matches!(pos, StmtPos::Exit | StmtPos::ModelBody) {
                    self.error(
                        "leave is not allowed in exit statements or model bodies".to_owned(),
                        s.span,
                    );
                }
            }
            StmtKind::Return => {
                if matches!(pos, StmtPos::Exit | StmtPos::ModelBody) {
                    self.error(
                        "return is not allowed in exit statements or model bodies".to_owned(),
                        s.span,
                    );
                }
            }
            StmtKind::Assert(e) => {
                let t = self.check_expr(e, ctx);
                if !t.fits(Ty::Bool) {
                    self.error("assert condition must be boolean".to_owned(), e.span);
                }
                // Asserts may read ghost data; they are erased if they do.
            }
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.check_stmt(st, ctx, pos);
                }
            }
            StmtKind::If { cond, then, els } => {
                let t = self.check_expr(cond, ctx);
                if !t.fits(Ty::Bool) {
                    self.error("if condition must be boolean".to_owned(), cond.span);
                }
                if !ghost_machine
                    && pos != StmtPos::ModelBody
                    && expr_is_tainted(cond, &ctx.ghost_vars)
                {
                    self.error(
                        "ghost data controls real branching (if condition)".to_owned(),
                        cond.span,
                    );
                }
                self.check_stmt(then, ctx, pos);
                self.check_stmt(els, ctx, pos);
            }
            StmtKind::While { cond, body } => {
                let t = self.check_expr(cond, ctx);
                if !t.fits(Ty::Bool) {
                    self.error("while condition must be boolean".to_owned(), cond.span);
                }
                if !ghost_machine
                    && pos != StmtPos::ModelBody
                    && expr_is_tainted(cond, &ctx.ghost_vars)
                {
                    self.error(
                        "ghost data controls real branching (while condition)".to_owned(),
                        cond.span,
                    );
                }
                self.check_stmt(body, ctx, pos);
            }
            StmtKind::CallState(state) => {
                if matches!(pos, StmtPos::Exit | StmtPos::ModelBody) {
                    self.error(
                        "call is not allowed in exit statements or model bodies".to_owned(),
                        s.span,
                    );
                }
                if !ctx.states.contains(state) {
                    self.error(
                        format!("call of undeclared state `{}`", self.name(*state)),
                        s.span,
                    );
                }
            }
            StmtKind::ForeignCall { dst, func, args } => {
                let Some(f) = ctx.decl.foreign_fn(*func) else {
                    self.error(
                        format!("call of undeclared foreign function `{}`", self.name(*func)),
                        s.span,
                    );
                    for a in args {
                        self.check_expr(a, ctx);
                    }
                    return;
                };
                if args.len() != f.params.len() {
                    self.error(
                        format!(
                            "foreign function `{}` expects {} argument(s), got {}",
                            self.name(*func),
                            f.params.len(),
                            args.len()
                        ),
                        s.span,
                    );
                }
                for (a, expected) in args.iter().zip(f.params.iter()) {
                    let t = self.check_expr(a, ctx);
                    if !t.fits(expected.ty) {
                        self.error(
                            format!(
                                "argument to foreign function `{}` must have type {}",
                                self.name(*func),
                                expected.ty
                            ),
                            a.span,
                        );
                    }
                    if !ghost_machine && expr_is_tainted(a, &ctx.ghost_vars) {
                        self.error(
                            "ghost data flows into a foreign-function argument".to_owned(),
                            a.span,
                        );
                    }
                }
                if let Some(dst) = dst {
                    match ctx.vars.get(dst) {
                        None => self.error(
                            format!(
                                "foreign result stored into undeclared variable `{}`",
                                self.name(*dst)
                            ),
                            s.span,
                        ),
                        Some(&(dst_ty, _)) => {
                            if f.ret == Ty::Void {
                                self.error(
                                    format!("foreign function `{}` returns void", self.name(*func)),
                                    s.span,
                                );
                            } else if !dst_ty.accepts(f.ret) {
                                self.error(
                                    format!(
                                        "foreign result type {} does not match variable `{}` of type {}",
                                        f.ret,
                                        self.name(*dst),
                                        dst_ty
                                    ),
                                    s.span,
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    fn check_inits(
        &mut self,
        machine: &Symbol,
        inits: &[Initializer],
        ctx: &MachineCtx<'p>,
        span: Span,
        target_ghost: bool,
    ) {
        let Some(target) = self.program.machine(*machine) else {
            return;
        };
        let target_vars: HashMap<Symbol, (Ty, bool)> = target
            .vars
            .iter()
            .map(|v| (v.name, (v.ty, v.ghost)))
            .collect();
        let mut seen = HashSet::new();
        for init in inits {
            if !seen.insert(init.var) {
                self.error(
                    format!("duplicate initializer for `{}`", self.name(init.var)),
                    span,
                );
            }
            let t = self.check_expr(&init.value, ctx);
            match target_vars.get(&init.var) {
                None => self.error(
                    format!(
                        "initializer for unknown variable `{}` of machine `{}`",
                        self.name(init.var),
                        self.name(*machine)
                    ),
                    span,
                ),
                Some(&(ty, _)) => {
                    if !t.fits(ty) {
                        self.error(
                            format!(
                                "initializer for `{}` must have type {}",
                                self.name(init.var),
                                ty
                            ),
                            init.value.span,
                        );
                    }
                }
            }
            // Creating a real machine from a real machine: the creation
            // survives erasure, so its initializers must be real data.
            if !ctx.decl.ghost && !target_ghost && expr_is_tainted(&init.value, &ctx.ghost_vars) {
                self.error(
                    format!(
                        "ghost data flows into initializer `{}` of real machine `{}`",
                        self.name(init.var),
                        self.name(*machine)
                    ),
                    init.value.span,
                );
            }
        }
    }

    fn check_event_payload(
        &mut self,
        event: Symbol,
        payload: Option<&Expr>,
        ctx: &MachineCtx<'p>,
        span: Span,
    ) -> Option<Ty> {
        let Some(&payload_ty) = self.events.get(&event) else {
            self.error(
                format!("use of undeclared event `{}`", self.name(event)),
                span,
            );
            if let Some(p) = payload {
                self.check_expr(p, ctx);
            }
            return None;
        };
        match payload {
            None => {}
            Some(p) => {
                let t = self.check_expr(p, ctx);
                if payload_ty == Ty::Void {
                    // `send(m, e, null)` is tolerated as the explicit form
                    // of "no payload".
                    if p.kind != ExprKind::Null {
                        self.error(
                            format!("event `{}` carries no payload", self.name(event)),
                            p.span,
                        );
                    }
                } else if !t.fits(payload_ty) {
                    self.error(
                        format!(
                            "payload of event `{}` must have type {}",
                            self.name(event),
                            payload_ty
                        ),
                        p.span,
                    );
                }
            }
        }
        Some(payload_ty)
    }

    // ----- expressions ----------------------------------------------------

    fn check_expr(&mut self, e: &Expr, ctx: &MachineCtx<'p>) -> ETy {
        match &e.kind {
            ExprKind::This => ETy::Exact(Ty::Id),
            ExprKind::Msg => ETy::Exact(Ty::Event),
            ExprKind::Arg => ETy::Any,
            ExprKind::Null => ETy::Any,
            ExprKind::Bool(_) => ETy::Exact(Ty::Bool),
            ExprKind::Int(_) => ETy::Exact(Ty::Int),
            ExprKind::Nondet => {
                if !ctx.decl.ghost && !self.in_model_body {
                    self.error(
                        "nondeterministic choice `*` is allowed only in ghost machines                          (and erasable model bodies)"
                            .to_owned(),
                        e.span,
                    );
                }
                ETy::Exact(Ty::Bool)
            }
            ExprKind::Name(sym) => {
                if let Some(&(ty, _)) = ctx.vars.get(sym) {
                    ETy::Exact(ty)
                } else if self.events.contains_key(sym) {
                    ETy::Exact(Ty::Event)
                } else {
                    self.error(
                        format!(
                            "unresolved name `{}` (neither a variable nor an event)",
                            self.name(*sym)
                        ),
                        e.span,
                    );
                    ETy::Any
                }
            }
            ExprKind::Unary(op, inner) => {
                let t = self.check_expr(inner, ctx);
                let expected = match op {
                    p_ast::UnOp::Not => Ty::Bool,
                    p_ast::UnOp::Neg => Ty::Int,
                };
                if !t.fits(expected) {
                    self.error(
                        format!("operand of `{}` must have type {expected}", op.symbol()),
                        inner.span,
                    );
                }
                ETy::Exact(expected)
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.check_expr(a, ctx);
                let tb = self.check_expr(b, ctx);
                if op.is_arithmetic() {
                    if !ta.fits(Ty::Int) || !tb.fits(Ty::Int) {
                        self.error(
                            format!("operands of `{}` must have type int", op.symbol()),
                            e.span,
                        );
                    }
                    ETy::Exact(Ty::Int)
                } else if op.is_logical() {
                    if !ta.fits(Ty::Bool) || !tb.fits(Ty::Bool) {
                        self.error(
                            format!("operands of `{}` must have type bool", op.symbol()),
                            e.span,
                        );
                    }
                    ETy::Exact(Ty::Bool)
                } else if matches!(op, p_ast::BinOp::Eq | p_ast::BinOp::Ne) {
                    if !ta.same_as(tb) {
                        self.error(
                            format!("operands of `{}` must have the same type", op.symbol()),
                            e.span,
                        );
                    }
                    ETy::Exact(Ty::Bool)
                } else {
                    // Ordering comparisons.
                    if !ta.fits(Ty::Int) || !tb.fits(Ty::Int) {
                        self.error(
                            format!("operands of `{}` must have type int", op.symbol()),
                            e.span,
                        );
                    }
                    ETy::Exact(Ty::Bool)
                }
            }
            ExprKind::ForeignCall(func, args) => {
                let Some(f) = ctx.decl.foreign_fn(*func) else {
                    self.error(
                        format!("call of undeclared foreign function `{}`", self.name(*func)),
                        e.span,
                    );
                    for a in args {
                        self.check_expr(a, ctx);
                    }
                    return ETy::Any;
                };
                let ret = f.ret;
                let params = f.params.clone();
                if args.len() != params.len() {
                    self.error(
                        format!(
                            "foreign function `{}` expects {} argument(s), got {}",
                            self.name(*func),
                            params.len(),
                            args.len()
                        ),
                        e.span,
                    );
                }
                for (a, expected) in args.iter().zip(params.iter()) {
                    let t = self.check_expr(a, ctx);
                    if !t.fits(expected.ty) {
                        self.error(
                            format!(
                                "argument to foreign function `{}` must have type {}",
                                self.name(*func),
                                expected.ty
                            ),
                            a.span,
                        );
                    }
                    if !ctx.decl.ghost && expr_is_tainted(a, &ctx.ghost_vars) {
                        self.error(
                            "ghost data flows into a foreign-function argument".to_owned(),
                            a.span,
                        );
                    }
                }
                ETy::Exact(ret)
            }
        }
    }
}

/// Whether `e` is a constant expression (literals combined with
/// operators) — the only form allowed in `main` initializers.
fn is_constant_expr(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Null | ExprKind::Bool(_) | ExprKind::Int(_) => true,
        ExprKind::Unary(_, inner) => is_constant_expr(inner),
        ExprKind::Binary(_, a, b) => is_constant_expr(a) && is_constant_expr(b),
        _ => false,
    }
}

/// The type of a constant expression, if easily determined.
fn constant_type(e: &Expr) -> Option<ETy> {
    match &e.kind {
        ExprKind::Null => Some(ETy::Any),
        ExprKind::Bool(_) => Some(ETy::Exact(Ty::Bool)),
        ExprKind::Int(_) => Some(ETy::Exact(Ty::Int)),
        _ => None,
    }
}
