//! Ghost-taint analysis shared by the checker and the erasure transform.

use std::collections::HashSet;

use p_ast::{Expr, ExprKind, Symbol};

/// Whether `e` reads any ghost variable.
///
/// This is the taint predicate behind the erasure rules of §3.3: an
/// expression that reads ghost state may only appear in positions that are
/// erased during compilation (assignments to ghost variables, sends whose
/// target is ghost, asserts).
pub fn expr_is_tainted(e: &Expr, ghost_vars: &HashSet<Symbol>) -> bool {
    match &e.kind {
        ExprKind::Name(sym) => ghost_vars.contains(sym),
        ExprKind::Unary(_, inner) => expr_is_tainted(inner, ghost_vars),
        ExprKind::Binary(_, a, b) => {
            expr_is_tainted(a, ghost_vars) || expr_is_tainted(b, ghost_vars)
        }
        ExprKind::ForeignCall(_, args) => args.iter().any(|a| expr_is_tainted(a, ghost_vars)),
        ExprKind::This
        | ExprKind::Msg
        | ExprKind::Arg
        | ExprKind::Null
        | ExprKind::Bool(_)
        | ExprKind::Int(_)
        | ExprKind::Nondet => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_ast::{BinOp, Interner};

    #[test]
    fn taint_propagates_through_operators() {
        let mut i = Interner::new();
        let g = i.intern("g");
        let r = i.intern("r");
        let ghost: HashSet<Symbol> = [g].into_iter().collect();
        let tainted = Expr::binary(BinOp::Add, Expr::name(r), Expr::name(g));
        assert!(expr_is_tainted(&tainted, &ghost));
        let clean = Expr::binary(BinOp::Add, Expr::name(r), Expr::int(1));
        assert!(!expr_is_tainted(&clean, &ghost));
    }

    #[test]
    fn literals_and_registers_are_clean() {
        let ghost = HashSet::new();
        for e in [
            Expr::this(),
            Expr::msg(),
            Expr::arg(),
            Expr::null(),
            Expr::bool(true),
            Expr::int(0),
            Expr::nondet(),
        ] {
            assert!(!expr_is_tainted(&e, &ghost));
        }
    }
}
