//! Diagnostics produced by the static checker.

use std::error::Error;
use std::fmt;

use p_ast::Span;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The program is rejected.
    Error,
    /// Suspicious but legal (e.g. an action binding shadowed by a
    /// transition on the same event).
    Warning,
}

/// A single checker finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Source location (synthetic for builder-made programs).
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: String, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message,
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: String, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message,
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        if self.span.is_synthetic() {
            write!(f, "{sev}: {}", self.message)
        } else {
            write!(f, "{sev} at bytes {}: {}", self.span, self.message)
        }
    }
}

/// The failure value of [`crate::check`]: all errors found, plus any
/// warnings gathered before the first error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckErrors {
    /// Every diagnostic, errors and warnings interleaved in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckErrors {
    /// Only the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }
}

impl fmt::Display for CheckErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} error(s):", self.error_count())?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl Error for CheckErrors {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_severity() {
        let d = Diagnostic::error("bad".into(), Span::SYNTHETIC);
        assert_eq!(d.to_string(), "error: bad");
        let w = Diagnostic::warning("meh".into(), Span::new(1, 2));
        assert!(w.to_string().starts_with("warning at bytes 1..2"));
    }

    #[test]
    fn error_count_filters_warnings() {
        let errs = CheckErrors {
            diagnostics: vec![
                Diagnostic::warning("w".into(), Span::SYNTHETIC),
                Diagnostic::error("e".into(), Span::SYNTHETIC),
            ],
        };
        assert_eq!(errs.error_count(), 1);
        assert!(errs.to_string().contains("1 error(s)"));
    }
}
