//! Live progress reporting for long explorations.
//!
//! Prints a single overwriting stderr line at a fixed interval:
//!
//! ```text
//! [verify] 1.2s  84211 states  312940 trans  frontier 5718  dedup 61%  depth 23  70k states/s
//! ```
//!
//! Printing is driven by whoever records snapshots (no timer thread):
//! `maybe_print` is rate-limited internally, so callers can invoke it
//! as often as they like.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::record::ExplorationSnapshot;

/// An interval-throttled stderr progress line.
pub struct Progress {
    interval_micros: u64,
    last_print: AtomicU64,
    printed: AtomicU64,
}

impl Progress {
    /// Creates a meter printing at most once per `interval`.
    pub fn new(interval: Duration) -> Self {
        Progress {
            interval_micros: interval.as_micros().max(1) as u64,
            last_print: AtomicU64::new(0),
            printed: AtomicU64::new(0),
        }
    }

    /// Prints the snapshot if the interval has elapsed since the last
    /// print. Thread-safe; concurrent callers race benignly (at most
    /// one extra line).
    pub fn maybe_print(&self, snap: &ExplorationSnapshot) {
        let last = self.last_print.load(Ordering::Relaxed);
        let now = snap.elapsed_micros;
        if now < last.saturating_add(self.interval_micros) {
            return;
        }
        if self
            .last_print
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.print(snap);
        }
    }

    /// Prints unconditionally (used for the final snapshot).
    pub fn print(&self, snap: &ExplorationSnapshot) {
        self.printed.fetch_add(1, Ordering::Relaxed);
        let secs = snap.elapsed_micros as f64 / 1e6;
        let rate = snap.states_per_sec();
        let rate_text = if rate >= 1000.0 {
            format!("{:.0}k states/s", rate / 1000.0)
        } else {
            format!("{rate:.0} states/s")
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[verify] {secs:.1}s  {} states  {} trans  frontier {}  dedup {:.0}%  depth {}  {rate_text}\x1b[K",
            snap.states,
            snap.transitions,
            snap.frontier,
            snap.dedup_rate() * 100.0,
            snap.max_depth,
        );
        let _ = err.flush();
    }

    /// Terminates the overwriting line with a newline, if anything was
    /// printed. Call once when the run finishes.
    pub fn finish(&self) {
        if self.printed.load(Ordering::Relaxed) > 0 {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
            let _ = err.flush();
        }
    }
}
