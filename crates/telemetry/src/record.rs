//! The record model: what a sink receives.
//!
//! Records are cheap to construct (names are `&'static str`, attribute
//! lists are small vecs built only when telemetry is enabled) and carry
//! everything the Chrome exporter needs: a microsecond timestamp
//! relative to the telemetry epoch, a logical thread/track id, and a
//! kind-specific payload.

/// An attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A signed integer.
    Int(i64),
    /// A short string (machine names, event names).
    Str(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(i64::from(v))
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// A named attribute list.
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// A periodic summary of checker exploration progress.
///
/// Snapshots are both recorded into the trace (as counter events) and
/// used to drive the live `--progress` line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorationSnapshot {
    /// Micros since the telemetry epoch when the snapshot was taken.
    pub elapsed_micros: u64,
    /// Unique states admitted so far.
    pub states: u64,
    /// Transitions executed so far.
    pub transitions: u64,
    /// Approximate frontier size (stack depth or pending queue tasks).
    pub frontier: u64,
    /// Transitions that re-reached an already-visited state.
    pub dedup_hits: u64,
    /// Transitions skipped by sleep-set POR.
    pub sleep_pruned: u64,
    /// Successors merged with a symmetric (id-permuted) visited state.
    pub symmetry_merges: u64,
    /// Deepest configuration reached so far.
    pub max_depth: u64,
    /// Worker count (1 for the sequential engine).
    pub workers: u64,
    /// Visited fingerprints resident in the disk-spilled cold tier
    /// (zero without `--mem-limit`).
    pub spilled: u64,
}

impl ExplorationSnapshot {
    /// States per second over the elapsed window.
    pub fn states_per_sec(&self) -> f64 {
        if self.elapsed_micros == 0 {
            0.0
        } else {
            self.states as f64 / (self.elapsed_micros as f64 / 1e6)
        }
    }

    /// Fraction of transitions that hit the visited table, in [0, 1].
    pub fn dedup_rate(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.transitions as f64
        }
    }
}

/// The payload of one record.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordKind {
    /// A span opened (Chrome `ph:"B"`).
    SpanBegin {
        /// Span name.
        name: &'static str,
        /// Attributes shown in the trace viewer.
        attrs: Attrs,
    },
    /// The most recently opened span on this track closed (`ph:"E"`).
    SpanEnd {
        /// Span name (matched by the viewer for sanity, not required).
        name: &'static str,
    },
    /// A point event (`ph:"i"`).
    Instant {
        /// Event name.
        name: &'static str,
        /// Attributes shown in the trace viewer.
        attrs: Attrs,
    },
    /// A sampled value (`ph:"C"`), e.g. queue depth.
    Gauge {
        /// Counter track name.
        name: &'static str,
        /// Sampled value.
        value: i64,
    },
    /// A checker exploration snapshot (exported as a counter group).
    Snapshot(ExplorationSnapshot),
}

/// One telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Micros since the telemetry epoch.
    pub ts_micros: u64,
    /// Logical track: machine id in the runtime, worker id in the
    /// checker, `0` for global events.
    pub tid: u32,
    /// Payload.
    pub kind: RecordKind,
}
