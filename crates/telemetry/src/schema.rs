//! The shared exploration-metrics schema.
//!
//! One struct, three consumers: `p verify --profile` embeds it in the
//! profile JSON, `crates/bench`'s `perf_report` writes `BENCH_checker.json`
//! rows from it, and the CI `telemetry_gate` parses those rows back to
//! compare throughput. Keeping them on one schema is what lets the
//! overhead gate diff a fresh run against the committed benchmark file.

use crate::json::{num, obj, str as jstr, JsonValue};

/// Final metrics for one exploration run of one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplorationMetrics {
    /// Program name (corpus key or file stem).
    pub name: String,
    /// Exploration mode tag: `"exhaustive"`, `"por"`, `"parallel"`, ...
    pub mode: String,
    /// Unique states admitted.
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Bytes retained in the visited table.
    pub stored_bytes: u64,
    /// Deepest configuration reached.
    pub max_depth: u64,
    /// Transitions that re-reached a visited state.
    pub dedup_hits: u64,
    /// Transitions pruned by sleep-set POR.
    pub sleep_pruned: u64,
    /// Successors merged with a symmetric (id-permuted) visited state.
    pub symmetry_merges: u64,
    /// Worker count used (1 = sequential).
    pub workers: u64,
    /// Visited fingerprints resident in the disk-spilled cold tier at
    /// the end of the run (zero without a memory limit).
    pub spilled_states: u64,
    /// Bytes written to spill files over the run.
    pub spill_bytes: u64,
    /// Visited/parent lookups answered from the cold tier.
    pub cold_hits: u64,
    /// Whether the safety verdict was "no counterexample".
    pub passed: bool,
    /// Whether the state space was fully explored (no bound hit).
    pub complete: bool,
    /// Sampled seconds attributed to machine execution (interpreter or
    /// compiled stepper). Zero for engines that do not meter phases.
    pub exec_seconds: f64,
    /// Sampled seconds attributed to digest/fingerprint maintenance.
    pub digest_seconds: f64,
    /// Sampled seconds attributed to candidate configuration cloning.
    pub clone_seconds: f64,
    /// Sampled seconds attributed to symmetry canonicalization.
    pub canon_seconds: f64,
    /// Sampled seconds attributed to visited-table/parent-map admission.
    pub table_seconds: f64,
}

impl ExplorationMetrics {
    /// States per second.
    pub fn states_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.states as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Average retained bytes per unique state.
    pub fn bytes_per_state(&self) -> f64 {
        if self.states > 0 {
            self.stored_bytes as f64 / self.states as f64
        } else {
            0.0
        }
    }

    /// Serializes to a JSON object.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("name", jstr(&self.name)),
            ("mode", jstr(&self.mode)),
            ("states", num(self.states as f64)),
            ("transitions", num(self.transitions as f64)),
            ("seconds", num(self.seconds)),
            ("states_per_sec", num(self.states_per_sec())),
            ("stored_bytes", num(self.stored_bytes as f64)),
            ("bytes_per_state", num(self.bytes_per_state())),
            ("max_depth", num(self.max_depth as f64)),
            ("dedup_hits", num(self.dedup_hits as f64)),
            ("sleep_pruned", num(self.sleep_pruned as f64)),
            ("symmetry_merges", num(self.symmetry_merges as f64)),
            ("workers", num(self.workers as f64)),
            ("spilled_states", num(self.spilled_states as f64)),
            ("spill_bytes", num(self.spill_bytes as f64)),
            ("cold_hits", num(self.cold_hits as f64)),
            ("passed", JsonValue::Bool(self.passed)),
            ("complete", JsonValue::Bool(self.complete)),
            ("exec_seconds", num(self.exec_seconds)),
            ("digest_seconds", num(self.digest_seconds)),
            ("clone_seconds", num(self.clone_seconds)),
            ("canon_seconds", num(self.canon_seconds)),
            ("table_seconds", num(self.table_seconds)),
        ])
    }

    /// Deserializes from a JSON object produced by [`Self::to_json`].
    ///
    /// Derived fields (`states_per_sec`, `bytes_per_state`) are
    /// recomputed, not trusted. Missing optional fields default to
    /// zero so older `BENCH_checker.json` rows still parse.
    pub fn from_json(value: &JsonValue) -> Option<ExplorationMetrics> {
        let field = |k: &str| value.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
        let secs = |k: &str| value.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
        Some(ExplorationMetrics {
            name: value.get("name")?.as_str()?.to_owned(),
            mode: value
                .get("mode")
                .and_then(JsonValue::as_str)
                .unwrap_or("exhaustive")
                .to_owned(),
            states: value.get("states")?.as_u64()?,
            transitions: value.get("transitions")?.as_u64()?,
            seconds: value.get("seconds")?.as_f64()?,
            stored_bytes: field("stored_bytes"),
            max_depth: field("max_depth"),
            dedup_hits: field("dedup_hits"),
            sleep_pruned: field("sleep_pruned"),
            symmetry_merges: field("symmetry_merges"),
            workers: field("workers").max(1),
            spilled_states: field("spilled_states"),
            spill_bytes: field("spill_bytes"),
            cold_hits: field("cold_hits"),
            passed: value
                .get("passed")
                .and_then(JsonValue::as_bool)
                .unwrap_or(true),
            complete: value
                .get("complete")
                .and_then(JsonValue::as_bool)
                .unwrap_or(true),
            exec_seconds: secs("exec_seconds"),
            digest_seconds: secs("digest_seconds"),
            clone_seconds: secs("clone_seconds"),
            canon_seconds: secs("canon_seconds"),
            table_seconds: secs("table_seconds"),
        })
    }
}

/// A benchmark report: schema wrapper over a list of metrics rows.
///
/// This is the exact on-disk shape of `BENCH_checker.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// One row per (program, mode) measurement.
    pub programs: Vec<ExplorationMetrics>,
}

impl BenchReport {
    /// Serializes the report (pretty, for committing to the repo).
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("schema", jstr("p-bench-v2")),
            (
                "programs",
                JsonValue::Arr(
                    self.programs
                        .iter()
                        .map(ExplorationMetrics::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report; tolerates the v1 layout (no `schema`/`mode`).
    pub fn from_json(value: &JsonValue) -> Option<BenchReport> {
        let rows = value.get("programs")?.as_array()?;
        let programs = rows
            .iter()
            .filter_map(ExplorationMetrics::from_json)
            .collect();
        Some(BenchReport { programs })
    }

    /// Median `states_per_sec` across rows matching `mode` (all rows if
    /// `mode` is `None`). Returns `None` with no matching rows.
    pub fn median_states_per_sec(&self, mode: Option<&str>) -> Option<f64> {
        let mut rates: Vec<f64> = self
            .programs
            .iter()
            .filter(|r| mode.is_none_or(|m| r.mode == m))
            .map(ExplorationMetrics::states_per_sec)
            .filter(|r| r.is_finite() && *r > 0.0)
            .collect();
        if rates.is_empty() {
            return None;
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(rates[rates.len() / 2])
    }
}

/// One measurement of the sharded runtime executor: a (workload,
/// machine-count, shard-count) cell of `BENCH_runtime.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeBenchRow {
    /// Workload tag: `"fan_out"` or `"ping_ring"`.
    pub workload: String,
    /// Machines hosted across the shards.
    pub machines: u64,
    /// Worker shards.
    pub shards: u64,
    /// Events injected from outside the executor.
    pub injections: u64,
    /// Machine runs executed by the shard runtimes during the timed
    /// window: each injection, every in-program cascade hop it
    /// triggered, and the resume runs the causal work stack schedules
    /// after a yielding send.
    pub events: u64,
    /// Wall-clock seconds from first injection to drained shutdown.
    pub seconds: f64,
    /// p50 injection-to-completion latency in nanoseconds.
    pub p50_latency_ns: u64,
    /// p99 injection-to-completion latency in nanoseconds.
    pub p99_latency_ns: u64,
    /// Ready-queue batches stolen across shards during the run.
    pub steals: u64,
    /// Mailbox batches drained during the run.
    pub batches: u64,
    /// High-water mark over per-machine mailbox depths.
    pub max_mailbox_depth: u64,
}

impl RuntimeBenchRow {
    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.events as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Serializes to a JSON object.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("workload", jstr(&self.workload)),
            ("machines", num(self.machines as f64)),
            ("shards", num(self.shards as f64)),
            ("injections", num(self.injections as f64)),
            ("events", num(self.events as f64)),
            ("seconds", num(self.seconds)),
            ("events_per_sec", num(self.events_per_sec())),
            ("p50_latency_ns", num(self.p50_latency_ns as f64)),
            ("p99_latency_ns", num(self.p99_latency_ns as f64)),
            ("steals", num(self.steals as f64)),
            ("batches", num(self.batches as f64)),
            ("max_mailbox_depth", num(self.max_mailbox_depth as f64)),
        ])
    }

    /// Deserializes from a JSON object produced by [`Self::to_json`].
    /// The derived `events_per_sec` field is recomputed, not trusted.
    pub fn from_json(value: &JsonValue) -> Option<RuntimeBenchRow> {
        let field = |k: &str| value.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
        Some(RuntimeBenchRow {
            workload: value.get("workload")?.as_str()?.to_owned(),
            machines: value.get("machines")?.as_u64()?,
            shards: value.get("shards")?.as_u64()?.max(1),
            injections: field("injections"),
            events: value.get("events")?.as_u64()?,
            seconds: value.get("seconds")?.as_f64()?,
            p50_latency_ns: field("p50_latency_ns"),
            p99_latency_ns: field("p99_latency_ns"),
            steals: field("steals"),
            batches: field("batches"),
            max_mailbox_depth: field("max_mailbox_depth"),
        })
    }
}

/// The on-disk shape of `BENCH_runtime.json`: executor-throughput rows
/// under a schema tag.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeBenchReport {
    /// One row per (workload, machines, shards) measurement.
    pub rows: Vec<RuntimeBenchRow>,
}

impl RuntimeBenchReport {
    /// Serializes the report (pretty, for committing to the repo).
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("schema", jstr("p-runtime-bench-v1")),
            (
                "rows",
                JsonValue::Arr(self.rows.iter().map(RuntimeBenchRow::to_json).collect()),
            ),
        ])
    }

    /// Parses a report written by [`Self::to_json`].
    pub fn from_json(value: &JsonValue) -> Option<RuntimeBenchReport> {
        let rows = value.get("rows")?.as_array()?;
        Some(RuntimeBenchReport {
            rows: rows.iter().filter_map(RuntimeBenchRow::from_json).collect(),
        })
    }

    /// Peak `events_per_sec` across rows matching the workload and shard
    /// count (any machine count). `None` with no matching rows.
    pub fn peak_events_per_sec(&self, workload: &str, shards: u64) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.workload == workload && r.shards == shards)
            .map(RuntimeBenchRow::events_per_sec)
            .filter(|r| r.is_finite() && *r > 0.0)
            .max_by(|a, b| a.partial_cmp(b).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, states: u64, seconds: f64) -> ExplorationMetrics {
        ExplorationMetrics {
            name: name.to_owned(),
            mode: "exhaustive".to_owned(),
            states,
            transitions: states * 3,
            seconds,
            stored_bytes: states * 40,
            max_depth: 12,
            dedup_hits: states,
            sleep_pruned: 0,
            symmetry_merges: 0,
            workers: 1,
            spilled_states: 0,
            spill_bytes: 0,
            cold_hits: 0,
            passed: true,
            complete: true,
            exec_seconds: seconds * 0.25,
            digest_seconds: seconds * 0.125,
            clone_seconds: seconds * 0.125,
            canon_seconds: 0.0,
            table_seconds: seconds * 0.25,
        }
    }

    #[test]
    fn metrics_round_trip() {
        let m = row("german3", 46657, 0.04);
        let back = ExplorationMetrics::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn report_round_trip_and_median() {
        let report = BenchReport {
            programs: vec![row("a", 100, 1.0), row("b", 300, 1.0), row("c", 200, 1.0)],
        };
        let text = report.to_json().render_pretty();
        let back = BenchReport::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.median_states_per_sec(Some("exhaustive")), Some(200.0));
        assert_eq!(back.median_states_per_sec(Some("por")), None);
    }

    #[test]
    fn runtime_bench_round_trip_and_peak() {
        let cell = |workload: &str, shards: u64, events: u64, seconds: f64| RuntimeBenchRow {
            workload: workload.to_owned(),
            machines: 1000,
            shards,
            injections: events / 2,
            events,
            seconds,
            p50_latency_ns: 1_500,
            p99_latency_ns: 90_000,
            steals: 7,
            batches: events / 16,
            max_mailbox_depth: 64,
        };
        let report = RuntimeBenchReport {
            rows: vec![
                cell("fan_out", 1, 100_000, 1.0),
                cell("fan_out", 4, 100_000, 0.5),
                cell("ping_ring", 4, 50_000, 1.0),
            ],
        };
        let text = report.to_json().render_pretty();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some("p-runtime-bench-v1")
        );
        let back = RuntimeBenchReport::from_json(&parsed).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.peak_events_per_sec("fan_out", 4), Some(200_000.0));
        assert_eq!(back.peak_events_per_sec("fan_out", 2), None);
    }

    #[test]
    fn tolerates_v1_rows() {
        let v1 = r#"{"programs":[{"name":"x","states":10,"transitions":20,"seconds":0.5,
            "states_per_sec":20.0,"stored_bytes":400,"bytes_per_state":40.0,"passed":true}]}"#;
        let report = BenchReport::from_json(&JsonValue::parse(v1).unwrap()).unwrap();
        assert_eq!(report.programs.len(), 1);
        assert_eq!(report.programs[0].mode, "exhaustive");
        assert_eq!(report.programs[0].workers, 1);
        assert!((report.programs[0].states_per_sec() - 20.0).abs() < 1e-9);
    }
}
