//! The sink trait and trivial sinks.

use crate::record::Record;

/// A consumer of telemetry records.
///
/// Implementations must be cheap and non-blocking: sinks are called
/// from the runtime's drain loop and the checker's hot loop (behind an
/// `enabled()` branch). The built-in implementations are [`NullSink`]
/// (drop everything) and [`crate::RingRecorder`] (bounded lock-free
/// buffer, drained after the run).
pub trait TelemetrySink: Send + Sync {
    /// Consumes one record.
    fn record(&self, record: Record);

    /// Number of records dropped due to capacity limits, if the sink
    /// bounds its storage.
    fn dropped(&self) -> u64 {
        0
    }
}

/// A sink that discards every record.
///
/// Useful when only aggregate metrics (counters/histograms) are wanted
/// and per-event records would be wasted work.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _record: Record) {}
}
