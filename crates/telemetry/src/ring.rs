//! A lock-free bounded recorder.
//!
//! Writers claim a slot index with one `fetch_add`; indices past the
//! capacity are counted as drops (drop-newest — the head of the trace
//! is preserved, which is what you want when a run blows the budget:
//! the interesting ramp-up is at the start). Each slot carries its own
//! `ready` flag so a reader never observes a half-written record.
//!
//! Draining is intended after quiescence (the run has finished), but is
//! safe at any time: slots still being written are simply skipped.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::record::Record;
use crate::sink::TelemetrySink;

struct Slot {
    ready: AtomicBool,
    value: UnsafeCell<Option<Record>>,
}

// Safety: a slot's `value` is written exactly once, by the unique
// claimant of its index (claim indices from `fetch_add` are never
// reused), and only read after `ready` is observed `true` with Acquire
// ordering, which synchronizes with the writer's Release store.
unsafe impl Sync for Slot {}

/// A bounded, lock-free, multi-producer record buffer.
pub struct RingRecorder {
    slots: Box<[Slot]>,
    claimed: AtomicUsize,
    dropped: AtomicU64,
}

impl RingRecorder {
    /// Creates a recorder holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                value: UnsafeCell::new(None),
            })
            .collect();
        RingRecorder {
            slots,
            claimed: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of records the recorder retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of records stored so far (saturating at capacity).
    pub fn len(&self) -> usize {
        self.claimed.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Whether no record has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the stored records in claim order, resetting the buffer.
    ///
    /// Call after the instrumented run has quiesced; concurrent writers
    /// racing with a drain lose their slot (skipped, not torn).
    pub fn drain(&self) -> Vec<Record> {
        let claimed = self.claimed.load(Ordering::Acquire).min(self.slots.len());
        let mut out = Vec::with_capacity(claimed);
        for slot in &self.slots[..claimed] {
            if slot.ready.swap(false, Ordering::AcqRel) {
                // Safety: `ready` was true, so the writer's Release
                // store happened-before this Acquire; swapping it false
                // gives this thread exclusive take access.
                if let Some(record) = unsafe { (*slot.value.get()).take() } {
                    out.push(record);
                }
            }
        }
        self.claimed.store(0, Ordering::Release);
        out
    }
}

impl TelemetrySink for RingRecorder {
    fn record(&self, record: Record) {
        let index = self.claimed.fetch_add(1, Ordering::AcqRel);
        if let Some(slot) = self.slots.get(index) {
            // Safety: `index` was claimed uniquely by this call; no other
            // writer touches this slot, and readers wait for `ready`.
            unsafe {
                *slot.value.get() = Some(record);
            }
            slot.ready.store(true, Ordering::Release);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            // Park the counter below the overflow point so repeated
            // drops don't walk it toward wraparound.
            let _ = self.claimed.compare_exchange(
                index + 1,
                self.slots.len(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    fn gauge(value: i64) -> Record {
        Record {
            ts_micros: value as u64,
            tid: 0,
            kind: RecordKind::Gauge { name: "g", value },
        }
    }

    #[test]
    fn stores_in_claim_order_and_resets() {
        let ring = RingRecorder::new(8);
        for i in 0..5 {
            ring.record(gauge(i));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 5);
        for (i, r) in drained.iter().enumerate() {
            assert_eq!(r.ts_micros, i as u64);
        }
        assert!(ring.drain().is_empty());
        ring.record(gauge(9));
        assert_eq!(ring.drain().len(), 1);
    }

    #[test]
    fn drops_newest_when_full() {
        let ring = RingRecorder::new(3);
        for i in 0..10 {
            ring.record(gauge(i));
        }
        assert_eq!(ring.dropped(), 7);
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].ts_micros, 0);
        assert_eq!(drained[2].ts_micros, 2);
    }

    #[test]
    fn concurrent_writers_lose_nothing_within_capacity() {
        use std::sync::Arc;
        let ring = Arc::new(RingRecorder::new(4096));
        let mut handles = Vec::new();
        for t in 0..4 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    ring.record(gauge(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 4000);
        assert_eq!(ring.dropped(), 0);
        let mut seen: Vec<i64> = drained
            .iter()
            .map(|r| match r.kind {
                RecordKind::Gauge { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        seen.sort_unstable();
        assert!(seen.iter().enumerate().all(|(i, v)| *v == i as i64));
    }
}
