//! A minimal JSON value model, writer, and parser.
//!
//! The workspace builds hermetically (no serde); every JSON producer so
//! far hand-rolled its output. Exporters, the CLI, the bench gate, and
//! the trace round-trip tests all need to *read* JSON back too, so this
//! module centralizes one small, correct implementation of both
//! directions.
//!
//! Objects preserve insertion order (they are association vectors, not
//! maps), so rendered output is deterministic.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer (truncating), if this is
    /// a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value with two-space indentation (for committed
    /// reports that humans diff).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_indented(&self, out: &mut String, level: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, level + 1);
                    item.write_indented(out, level + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, level);
                out.push(']');
            }
            JsonValue::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    indent(out, level + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_indented(out, level + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, level);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Writes a number without the `.0` suffix for integral values, so
/// counters round-trip as integers.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push('0'); // JSON has no NaN/Inf; degrade deterministically
    } else if n == n.trunc() && n.abs() < 9e15 {
        use fmt::Write as _;
        let _ = write!(out, "{}", n as i64);
    } else {
        use fmt::Write as _;
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a JSON document (one top-level value, trailing whitespace
    /// allowed).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Convenience: an object from key/value pairs.
pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Convenience: a number node.
pub fn num(n: f64) -> JsonValue {
    JsonValue::Num(n)
}

/// Convenience: a string node.
pub fn str(s: &str) -> JsonValue {
    JsonValue::Str(s.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = obj(vec![
            ("name", str("german3 \"quoted\"\n")),
            ("states", num(46657.0)),
            ("rate", num(1.25)),
            ("passed", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            ("list", JsonValue::Arr(vec![num(1.0), num(-2.0), str("x")])),
        ]);
        let text = doc.render();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, doc);
        let pretty = doc.render_pretty();
        assert_eq!(JsonValue::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(num(42.0).render(), "42");
        assert_eq!(num(0.5).render(), "0.5");
        assert_eq!(num(-3.0).render(), "-3");
    }

    #[test]
    fn accessors_navigate() {
        let doc = JsonValue::parse(r#"{"a": [1, {"b": "c"}], "n": 7}"#).unwrap();
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(7));
        let arr = doc.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[1].get("b").and_then(JsonValue::as_str), Some("c"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = JsonValue::parse(r#""aA\n\t\\ é""#).unwrap();
        assert_eq!(doc.as_str(), Some("aA\n\t\\ é"));
    }
}
