//! Chrome `trace_event` JSON exporter.
//!
//! Produces the "JSON Object Format" understood by `chrome://tracing`
//! and Perfetto: `{"traceEvents": [...]}` with `B`/`E` duration events,
//! `i` instants, and `C` counters. Extra top-level keys are ignored by
//! the viewers, so we piggyback the metrics report and run metadata on
//! the same file.

use crate::json::{num, obj, str as jstr, JsonValue};
use crate::record::{AttrValue, Attrs, ExplorationSnapshot, Record, RecordKind};

/// The process id stamped on every event (the viewers require one).
const PID: u64 = 1;

fn attrs_to_args(attrs: &Attrs) -> JsonValue {
    JsonValue::Obj(
        attrs
            .iter()
            .map(|(k, v)| {
                let value = match v {
                    AttrValue::Int(i) => num(*i as f64),
                    AttrValue::Str(s) => jstr(s),
                };
                ((*k).to_owned(), value)
            })
            .collect(),
    )
}

fn event(name: &str, ph: &str, ts: u64, tid: u32, extra: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut fields = vec![
        ("name", jstr(name)),
        ("ph", jstr(ph)),
        ("ts", num(ts as f64)),
        ("pid", num(PID as f64)),
        ("tid", num(f64::from(tid))),
    ];
    fields.extend(extra);
    obj(fields)
}

fn snapshot_counters(snap: &ExplorationSnapshot, tid: u32) -> JsonValue {
    event(
        "exploration",
        "C",
        snap.elapsed_micros,
        tid,
        vec![(
            "args",
            obj(vec![
                ("states", num(snap.states as f64)),
                ("transitions", num(snap.transitions as f64)),
                ("frontier", num(snap.frontier as f64)),
                ("dedup_hits", num(snap.dedup_hits as f64)),
                ("sleep_pruned", num(snap.sleep_pruned as f64)),
                ("symmetry_merges", num(snap.symmetry_merges as f64)),
                ("max_depth", num(snap.max_depth as f64)),
                ("workers", num(snap.workers as f64)),
                ("spilled", num(snap.spilled as f64)),
                ("states_per_sec", num(snap.states_per_sec())),
            ]),
        )],
    )
}

/// Converts drained records into `traceEvents` array entries.
pub fn trace_events(records: &[Record]) -> Vec<JsonValue> {
    records
        .iter()
        .map(|r| match &r.kind {
            RecordKind::SpanBegin { name, attrs } => event(
                name,
                "B",
                r.ts_micros,
                r.tid,
                vec![("args", attrs_to_args(attrs))],
            ),
            RecordKind::SpanEnd { name } => event(name, "E", r.ts_micros, r.tid, vec![]),
            RecordKind::Instant { name, attrs } => event(
                name,
                "i",
                r.ts_micros,
                r.tid,
                vec![("s", jstr("t")), ("args", attrs_to_args(attrs))],
            ),
            RecordKind::Gauge { name, value } => event(
                name,
                "C",
                r.ts_micros,
                r.tid,
                vec![("args", obj(vec![("value", num(*value as f64))]))],
            ),
            RecordKind::Snapshot(snap) => snapshot_counters(snap, r.tid),
        })
        .collect()
}

/// Builds the full Chrome-loadable document.
///
/// `metrics` (the registry report) and `meta` rows ride along as extra
/// top-level keys; pass empty vecs to omit them.
pub fn chrome_document(
    records: &[Record],
    metrics: Option<JsonValue>,
    meta: Vec<(&str, JsonValue)>,
) -> JsonValue {
    let mut fields = vec![
        ("traceEvents", JsonValue::Arr(trace_events(records))),
        ("displayTimeUnit", jstr("ms")),
    ];
    if let Some(metrics) = metrics {
        fields.push(("metrics", metrics));
    }
    for (k, v) in meta {
        fields.push((k, v));
    }
    obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_map_to_phases() {
        let records = vec![
            Record {
                ts_micros: 10,
                tid: 2,
                kind: RecordKind::SpanBegin {
                    name: "run",
                    attrs: vec![("machine", AttrValue::Str("Client".into()))],
                },
            },
            Record {
                ts_micros: 12,
                tid: 2,
                kind: RecordKind::Instant {
                    name: "send",
                    attrs: vec![("event", AttrValue::Int(3))],
                },
            },
            Record {
                ts_micros: 15,
                tid: 2,
                kind: RecordKind::SpanEnd { name: "run" },
            },
            Record {
                ts_micros: 16,
                tid: 0,
                kind: RecordKind::Snapshot(ExplorationSnapshot {
                    elapsed_micros: 16,
                    states: 4,
                    transitions: 9,
                    ..Default::default()
                }),
            },
        ];
        let doc = chrome_document(&records, None, vec![]);
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(JsonValue::as_str), Some("B"));
        assert_eq!(events[1].get("ph").and_then(JsonValue::as_str), Some("i"));
        assert_eq!(events[2].get("ph").and_then(JsonValue::as_str), Some("E"));
        assert_eq!(events[3].get("ph").and_then(JsonValue::as_str), Some("C"));
        assert_eq!(
            events[3]
                .get("args")
                .and_then(|a| a.get("transitions"))
                .and_then(JsonValue::as_u64),
            Some(9)
        );
        // The document is parseable JSON end to end.
        assert!(JsonValue::parse(&doc.render()).is_ok());
    }
}
