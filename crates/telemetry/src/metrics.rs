//! Aggregating metrics: named counters and log2 histograms.
//!
//! The registry is append-only and lock-cheap: metric handles are
//! registered once (under a mutex) and then updated with relaxed
//! atomics, so hot paths never contend on the registry itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json::{num, obj, str as jstr, JsonValue};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two of a
/// `u64`, plus one for zero.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2 histogram over `u64` samples.
///
/// Bucket `0` holds zero samples; bucket `b` (1..=64) holds samples
/// whose highest set bit is `b - 1`, i.e. values in `[2^(b-1), 2^b)`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket a sample falls into.
    #[inline]
    pub fn bucket_index(sample: u64) -> usize {
        (64 - sample.leading_zeros()) as usize
    }

    /// Lower bound (inclusive) of bucket `index`.
    pub fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, sample: u64) {
        self.buckets[Self::bucket_index(sample)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(sample, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Upper bound (exclusive floor of the next bucket) below which at
    /// least `q` (0..=1) of the samples fall — a coarse quantile.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return if i >= 64 {
                    u64::MAX
                } else {
                    Self::bucket_floor(i + 1)
                };
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(floor, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_floor(i), n))
            })
            .collect()
    }
}

/// Last-write-wins sampled value (queue depths, frontier sizes).
#[derive(Debug, Default)]
pub struct GaugeCell {
    value: AtomicU64,
    max: AtomicU64,
}

impl GaugeCell {
    /// Records the current value, tracking the maximum seen.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Most recently set value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Maximum value ever set.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// A registry of named counters, histograms, and gauges.
///
/// Handles are `Arc`s: fetch once (`counter("x")`), update lock-free.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(&'static str, Arc<Counter>)>>,
    histograms: Mutex<Vec<(&'static str, Arc<Histogram>)>>,
    gauges: Mutex<Vec<(&'static str, Arc<GaugeCell>)>>,
}

impl MetricsRegistry {
    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut counters = self.counters.lock();
        if let Some((_, c)) = counters.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        counters.push((name, Arc::clone(&c)));
        c
    }

    /// Returns the histogram named `name`, creating it if needed.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock();
        if let Some((_, h)) = histograms.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        histograms.push((name, Arc::clone(&h)));
        h
    }

    /// Returns the gauge named `name`, creating it if needed.
    pub fn gauge(&self, name: &'static str) -> Arc<GaugeCell> {
        let mut gauges = self.gauges.lock();
        if let Some((_, g)) = gauges.iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(GaugeCell::default());
        gauges.push((name, Arc::clone(&g)));
        g
    }

    /// Renders the registry as a compact JSON report:
    ///
    /// ```json
    /// {
    ///   "counters": {"runtime.events.sent": 12, ...},
    ///   "gauges": {"runtime.queue.depth": {"last": 0, "max": 3}, ...},
    ///   "histograms": {
    ///     "runtime.run.steps": {
    ///       "count": 9, "sum": 41, "mean": 4.6, "p50": 8, "p99": 16,
    ///       "buckets": [[1, 2], [4, 7]]
    ///     }, ...
    ///   }
    /// }
    /// ```
    pub fn report(&self) -> JsonValue {
        let counters = self.counters.lock();
        let mut counter_fields: Vec<(String, JsonValue)> = counters
            .iter()
            .map(|(n, c)| ((*n).to_owned(), num(c.get() as f64)))
            .collect();
        counter_fields.sort_by(|a, b| a.0.cmp(&b.0));

        let gauges = self.gauges.lock();
        let mut gauge_fields: Vec<(String, JsonValue)> = gauges
            .iter()
            .map(|(n, g)| {
                (
                    (*n).to_owned(),
                    obj(vec![
                        ("last", num(g.get() as f64)),
                        ("max", num(g.max() as f64)),
                    ]),
                )
            })
            .collect();
        gauge_fields.sort_by(|a, b| a.0.cmp(&b.0));

        let histograms = self.histograms.lock();
        let mut histogram_fields: Vec<(String, JsonValue)> = histograms
            .iter()
            .map(|(n, h)| {
                let buckets = JsonValue::Arr(
                    h.nonzero_buckets()
                        .into_iter()
                        .map(|(floor, count)| {
                            JsonValue::Arr(vec![num(floor as f64), num(count as f64)])
                        })
                        .collect(),
                );
                (
                    (*n).to_owned(),
                    obj(vec![
                        ("count", num(h.count() as f64)),
                        ("sum", num(h.sum() as f64)),
                        ("mean", num(h.mean())),
                        ("p50", num(h.quantile_bound(0.50) as f64)),
                        ("p99", num(h.quantile_bound(0.99) as f64)),
                        ("buckets", buckets),
                    ]),
                )
            })
            .collect();
        histogram_fields.sort_by(|a, b| a.0.cmp(&b.0));

        obj(vec![
            ("schema", jstr("p-metrics-v1")),
            ("counters", JsonValue::Obj(counter_fields)),
            ("gauges", JsonValue::Obj(gauge_fields)),
            ("histograms", JsonValue::Obj(histogram_fields)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(11), 1024);
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::default();
        for sample in [0, 1, 3, 3, 8, 1000] {
            h.observe(sample);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1015);
        assert!((h.mean() - 1015.0 / 6.0).abs() < 1e-9);
        // 4 of 6 samples are <= 3, so the p50 bound is the next bucket
        // floor above the one containing the median sample.
        assert!(h.quantile_bound(0.5) <= 4);
        assert!(h.quantile_bound(1.0) >= 1024);
        assert_eq!(h.nonzero_buckets().len(), 5);
    }

    #[test]
    fn registry_dedupes_handles_and_reports() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("a");
        let a2 = reg.counter("a");
        a.inc();
        a2.add(2);
        assert_eq!(a.get(), 3);
        reg.gauge("q").set(5);
        reg.gauge("q").set(2);
        reg.histogram("h").observe(7);
        let report = reg.report();
        assert_eq!(
            report
                .get("counters")
                .and_then(|c| c.get("a"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
        let q = report.get("gauges").and_then(|g| g.get("q")).unwrap();
        assert_eq!(q.get("last").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(q.get("max").and_then(JsonValue::as_u64), Some(5));
        let h = report.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("count").and_then(JsonValue::as_u64), Some(1));
        // Round-trips through the parser.
        assert_eq!(JsonValue::parse(&report.render()).unwrap(), report);
    }
}
