//! Zero-cost-when-disabled tracing, metrics, and exploration profiling
//! for the P toolchain.
//!
//! # Design
//!
//! The central type is [`Telemetry`], a cheap clonable handle that is
//! either *disabled* (a `None` inside — every hook is one predictable
//! branch and returns immediately) or *enabled* (an `Arc` to a sink,
//! a metrics registry, and an epoch clock). Instrumented code holds a
//! `Telemetry` and calls hooks unconditionally; the attribute closures
//! only run when enabled, so the disabled path allocates nothing.
//!
//! Consumers that want the hooks compiled out entirely (overhead
//! measurement, embedded builds) disable the `telemetry` cargo feature
//! on `p-checker`/`p-runtime`; those crates `#[cfg]`-gate their hook
//! sites on it. This crate itself is always buildable.
//!
//! Pipeline: hooks → [`TelemetrySink`] (usually a [`RingRecorder`]) →
//! drain after quiescence → [`chrome::chrome_document`] for a
//! Chrome/Perfetto-loadable trace, and [`MetricsRegistry::report`] for
//! the compact metrics JSON. Checker profiling additionally records
//! [`ExplorationSnapshot`]s and renders final [`ExplorationMetrics`]
//! (the schema shared with `BENCH_checker.json`).

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
mod metrics;
mod progress;
mod record;
mod ring;
mod schema;
mod sink;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use metrics::{Counter, GaugeCell, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use progress::Progress;
pub use record::{AttrValue, Attrs, ExplorationSnapshot, Record, RecordKind};
pub use ring::RingRecorder;
pub use schema::{BenchReport, ExplorationMetrics, RuntimeBenchReport, RuntimeBenchRow};
pub use sink::{NullSink, TelemetrySink};

struct Inner {
    sink: Arc<dyn TelemetrySink>,
    metrics: MetricsRegistry,
    epoch: Instant,
    progress: Option<Progress>,
    /// Elapsed-micros timestamp of the last recorded snapshot, used to
    /// throttle periodic snapshot recording.
    last_snapshot: AtomicU64,
    snapshot_interval_micros: u64,
}

/// A handle to the telemetry pipeline.
///
/// Cloning is one `Option<Arc>` clone. A disabled handle
/// ([`Telemetry::disabled`]) makes every hook a single branch.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// A handle whose hooks all no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Starts configuring an enabled handle.
    pub fn builder() -> TelemetryBuilder {
        TelemetryBuilder::default()
    }

    /// Whether hooks do anything. Callers building expensive attribute
    /// sets by hand should branch on this first; the closure-taking
    /// hooks do it internally.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Micros since this handle was built (0 when disabled).
    #[inline]
    pub fn elapsed_micros(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Records a point event. `attrs` is only invoked when enabled.
    #[inline]
    pub fn instant(&self, tid: u32, name: &'static str, attrs: impl FnOnce() -> Attrs) {
        if let Some(inner) = &self.inner {
            inner.sink.record(Record {
                ts_micros: inner.epoch.elapsed().as_micros() as u64,
                tid,
                kind: RecordKind::Instant {
                    name,
                    attrs: attrs(),
                },
            });
        }
    }

    /// Opens a span on track `tid`. Pair with [`Telemetry::span_end`].
    #[inline]
    pub fn span_begin(&self, tid: u32, name: &'static str, attrs: impl FnOnce() -> Attrs) {
        if let Some(inner) = &self.inner {
            inner.sink.record(Record {
                ts_micros: inner.epoch.elapsed().as_micros() as u64,
                tid,
                kind: RecordKind::SpanBegin {
                    name,
                    attrs: attrs(),
                },
            });
        }
    }

    /// Closes the most recent span on track `tid`.
    #[inline]
    pub fn span_end(&self, tid: u32, name: &'static str) {
        if let Some(inner) = &self.inner {
            inner.sink.record(Record {
                ts_micros: inner.epoch.elapsed().as_micros() as u64,
                tid,
                kind: RecordKind::SpanEnd { name },
            });
        }
    }

    /// Records a sampled value on a counter track.
    #[inline]
    pub fn gauge(&self, tid: u32, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.sink.record(Record {
                ts_micros: inner.epoch.elapsed().as_micros() as u64,
                tid,
                kind: RecordKind::Gauge { name, value },
            });
        }
    }

    /// Records an exploration snapshot if the snapshot interval has
    /// elapsed, and feeds the live progress meter. The closure only
    /// runs when a snapshot is due, so hot loops can call this every
    /// few thousand transitions at negligible cost.
    #[inline]
    pub fn maybe_snapshot(&self, tid: u32, build: impl FnOnce(u64) -> ExplorationSnapshot) {
        if let Some(inner) = &self.inner {
            let now = inner.epoch.elapsed().as_micros() as u64;
            let last = inner.last_snapshot.load(Ordering::Relaxed);
            if now < last.saturating_add(inner.snapshot_interval_micros) {
                return;
            }
            if inner
                .last_snapshot
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                return;
            }
            self.record_snapshot(tid, build(now));
        }
    }

    /// Records an exploration snapshot unconditionally (end of run).
    pub fn snapshot_now(&self, tid: u32, build: impl FnOnce(u64) -> ExplorationSnapshot) {
        if let Some(inner) = &self.inner {
            let now = inner.epoch.elapsed().as_micros() as u64;
            let snap = build(now);
            inner.sink.record(Record {
                ts_micros: now,
                tid,
                kind: RecordKind::Snapshot(snap),
            });
            if let Some(progress) = &inner.progress {
                progress.print(&snap);
            }
        }
    }

    fn record_snapshot(&self, tid: u32, snap: ExplorationSnapshot) {
        if let Some(inner) = &self.inner {
            inner.sink.record(Record {
                ts_micros: snap.elapsed_micros,
                tid,
                kind: RecordKind::Snapshot(snap),
            });
            if let Some(progress) = &inner.progress {
                progress.maybe_print(&snap);
            }
        }
    }

    /// Terminates the progress line, if one was active.
    pub fn finish_progress(&self) {
        if let Some(inner) = &self.inner {
            if let Some(progress) = &inner.progress {
                progress.finish();
            }
        }
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|inner| &inner.metrics)
    }

    /// Records count of records dropped by the sink (capacity).
    pub fn dropped_records(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.sink.dropped(),
            None => 0,
        }
    }
}

/// Configures an enabled [`Telemetry`] handle.
pub struct TelemetryBuilder {
    ring_capacity: usize,
    progress_interval: Option<Duration>,
    snapshot_interval: Duration,
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl Default for TelemetryBuilder {
    fn default() -> Self {
        TelemetryBuilder {
            ring_capacity: 1 << 18,
            progress_interval: None,
            snapshot_interval: Duration::from_millis(25),
            sink: None,
        }
    }
}

impl TelemetryBuilder {
    /// Capacity of the default ring recorder (records beyond it are
    /// dropped newest-first and counted). Default: 262144.
    pub fn ring(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Enables the live stderr progress line at the given interval.
    pub fn progress(mut self, interval: Duration) -> Self {
        self.progress_interval = Some(interval);
        self
    }

    /// Minimum spacing between recorded exploration snapshots.
    /// Default: 25ms.
    pub fn snapshot_interval(mut self, interval: Duration) -> Self {
        self.snapshot_interval = interval;
        self
    }

    /// Uses a custom sink instead of the default ring recorder. The
    /// returned recorder handle will then be `None`.
    pub fn sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Builds the handle. The second value is the ring recorder to
    /// drain after the run (absent when a custom sink was supplied).
    pub fn build(self) -> (Telemetry, Option<Arc<RingRecorder>>) {
        let (sink, ring): (Arc<dyn TelemetrySink>, Option<Arc<RingRecorder>>) = match self.sink {
            Some(sink) => (sink, None),
            None => {
                let ring = Arc::new(RingRecorder::new(self.ring_capacity));
                (Arc::clone(&ring) as Arc<dyn TelemetrySink>, Some(ring))
            }
        };
        let telemetry = Telemetry {
            inner: Some(Arc::new(Inner {
                sink,
                metrics: MetricsRegistry::default(),
                epoch: Instant::now(),
                progress: self.progress_interval.map(Progress::new),
                last_snapshot: AtomicU64::new(0),
                snapshot_interval_micros: self.snapshot_interval.as_micros().max(1) as u64,
            })),
        };
        (telemetry, ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_runs_closures() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.instant(0, "x", || unreachable!("closure must not run"));
        t.span_begin(0, "x", || unreachable!());
        t.span_end(0, "x");
        t.gauge(0, "x", 1);
        t.maybe_snapshot(0, |_| unreachable!());
        assert!(t.metrics().is_none());
        assert_eq!(t.dropped_records(), 0);
    }

    #[test]
    fn enabled_handle_records_through_the_ring() {
        let (t, ring) = Telemetry::builder().ring(16).build();
        let ring = ring.unwrap();
        assert!(t.enabled());
        t.span_begin(3, "run", || vec![("machine", AttrValue::from("M"))]);
        t.instant(3, "send", || vec![("event", AttrValue::from(7u64))]);
        t.span_end(3, "run");
        t.gauge(3, "queue", 2);
        t.snapshot_now(0, |elapsed| ExplorationSnapshot {
            elapsed_micros: elapsed,
            states: 1,
            ..Default::default()
        });
        let records = ring.drain();
        assert_eq!(records.len(), 5);
        assert!(matches!(
            records[0].kind,
            RecordKind::SpanBegin { name: "run", .. }
        ));
        assert!(matches!(records[4].kind, RecordKind::Snapshot(_)));
        // Timestamps are monotone within a single thread.
        assert!(records.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn snapshot_throttling_skips_rapid_calls() {
        let (t, ring) = Telemetry::builder()
            .ring(64)
            .snapshot_interval(Duration::from_secs(3600))
            .build();
        let mut built = 0;
        for _ in 0..100 {
            t.maybe_snapshot(0, |elapsed| {
                built += 1;
                ExplorationSnapshot {
                    elapsed_micros: elapsed,
                    ..Default::default()
                }
            });
        }
        // Only the first call (interval measured from epoch 0 has
        // elapsed=0 ≥ 0+interval? No: 0 < 0+interval) — so none fire.
        assert_eq!(built, 0);
        assert!(ring.unwrap().drain().is_empty());
    }

    #[test]
    fn metrics_registry_reachable_when_enabled() {
        let (t, _ring) = Telemetry::builder().build();
        t.metrics().unwrap().counter("c").add(5);
        let report = t.metrics().unwrap().report();
        assert_eq!(
            report
                .get("counters")
                .and_then(|c| c.get("c"))
                .and_then(json::JsonValue::as_u64),
            Some(5)
        );
    }
}
