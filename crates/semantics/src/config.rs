//! Global and per-machine configurations.
//!
//! §3.1: a global configuration `M` maps machine identifiers to machine
//! configurations `(σ, s, S, q)` — a call stack of (state, inherited
//! handler map) pairs, a variable store, the statement remaining to be
//! executed, and an input queue. This module represents those pieces in a
//! form that is cheap to clone (for search branching) and to serialize
//! (for explicit-state deduplication).
//!
//! Two representation choices make exploration cost proportional to what
//! a step actually changes rather than to the whole configuration:
//!
//! * **copy-on-write machines** — each machine lives behind an
//!   [`Arc`], so cloning a configuration for a search branch is
//!   O(#machines) refcount bumps and the first mutation of a machine
//!   after a branch ([`Arc::make_mut`] inside [`Config::machine_mut`])
//!   copies only that one machine;
//! * **incremental digests** — each slot caches the 128-bit SipHash of
//!   its canonical encoding (plus the encoding's length), invalidated
//!   only when that machine is touched, so fingerprinting a successor
//!   re-hashes one machine instead of re-encoding the world
//!   ([`Config::digest`]).

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use crate::hash::fingerprint128;

thread_local! {
    /// Scratch buffer for the digest hot path: one machine encoding
    /// buffer per thread, reused across the millions of transitions an
    /// exploration hashes, so the per-transition digest never allocates.
    /// Thread-local (not per-`Config`) so it is not dragged through
    /// `Clone`/`PartialEq` and stays sound across threads.
    static SLOT_SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::with_capacity(256));
}

use crate::lower::{ActionId, EventId, LoweredProgram, MachineTypeId, StateId, StmtId};
use crate::value::Value;
use crate::wire;

/// Identifier of a dynamically created machine instance.
///
/// Instance ids are allocated densely in creation order, which makes runs
/// deterministic given a schedule — a requirement for state hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An entry of the inherited handler map `a` carried on the call stack:
/// ⊥ (no handler), `T` (deferred), or an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Inherited {
    /// ⊥ — no inherited handler.
    #[default]
    None,
    /// `T` — the event is inherited as deferred.
    Deferred,
    /// An inherited action binding.
    Action(ActionId),
}

impl Inherited {
    fn encode(self, out: &mut Vec<u8>) {
        match self {
            Inherited::None => out.push(0),
            Inherited::Deferred => out.push(1),
            Inherited::Action(a) => {
                out.push(2);
                out.extend_from_slice(&a.0.to_le_bytes());
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Inherited> {
        Some(match wire::read_u8(buf)? {
            0 => Inherited::None,
            1 => Inherited::Deferred,
            2 => Inherited::Action(ActionId(wire::read_u32(buf)?)),
            _ => return None,
        })
    }
}

/// One instruction of a statement continuation.
///
/// The operational semantics presents statement execution with evaluation
/// contexts `S[s]`; a continuation stack is the standard defunctionalized
/// form of the same thing, and makes machine configurations first-class
/// values that can be cloned and hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Execute a statement.
    Stmt(StmtId),
    /// Resume a block at child index `.1`.
    Seq(StmtId, u32),
    /// Re-evaluate a `while` statement's condition.
    Loop(StmtId),
    /// Replace the top frame's state with the target and run its entry
    /// statement (the tail of a step transition, after the exit ran).
    EnterState(StateId),
    /// Pop the top frame after a `return` (its exit already ran); restore
    /// the frame's saved continuation if present.
    PopViaReturn,
    /// Pop the top frame because the pending event is unhandled there (its
    /// exit already ran); the pending event is re-dispatched in the caller.
    /// Popping the last frame is the *unhandled event* error.
    PopUnhandled,
}

impl Instr {
    fn encode(self, out: &mut Vec<u8>) {
        match self {
            Instr::Stmt(s) => {
                out.push(0);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            Instr::Seq(s, i) => {
                out.push(1);
                out.extend_from_slice(&s.0.to_le_bytes());
                out.extend_from_slice(&i.to_le_bytes());
            }
            Instr::Loop(s) => {
                out.push(2);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            Instr::EnterState(s) => {
                out.push(3);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            Instr::PopViaReturn => out.push(4),
            Instr::PopUnhandled => out.push(5),
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Instr> {
        Some(match wire::read_u8(buf)? {
            0 => Instr::Stmt(StmtId(wire::read_u32(buf)?)),
            1 => Instr::Seq(StmtId(wire::read_u32(buf)?), wire::read_u32(buf)?),
            2 => Instr::Loop(StmtId(wire::read_u32(buf)?)),
            3 => Instr::EnterState(StateId(wire::read_u32(buf)?)),
            4 => Instr::PopViaReturn,
            5 => Instr::PopUnhandled,
            _ => return None,
        })
    }
}

/// Decodes a `u32`-prefixed instruction sequence.
fn decode_cont(buf: &mut &[u8]) -> Option<Cont> {
    let len = wire::read_u32(buf)? as usize;
    // No pre-reservation from the untrusted length: each instruction
    // consumes at least one byte, so underflow bails out promptly.
    let mut cont = Vec::new();
    for _ in 0..len {
        cont.push(Instr::decode(buf)?);
    }
    Some(cont)
}

/// A statement continuation: a stack of instructions, the last element
/// being the next to execute.
pub type Cont = Vec<Instr>;

/// A call-stack frame `(n, a)` — a state plus the handler map inherited
/// from callers — optionally carrying the continuation saved by a
/// `call n;` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The frame's control state.
    pub state: StateId,
    /// Inherited handler map, indexed by event id.
    pub inherited: Vec<Inherited>,
    /// Saved caller continuation (only for `call n;` statements).
    pub resume: Option<Cont>,
}

impl Frame {
    /// A frame with an empty inherited map (used for initial states).
    pub fn initial(state: StateId, n_events: usize) -> Frame {
        Frame {
            state,
            inherited: vec![Inherited::None; n_events],
            resume: None,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.state.0.to_le_bytes());
        for h in &self.inherited {
            h.encode(out);
        }
        match &self.resume {
            None => out.push(0),
            Some(cont) => {
                out.push(1);
                out.extend_from_slice(&(cont.len() as u32).to_le_bytes());
                for i in cont {
                    i.encode(out);
                }
            }
        }
    }

    /// Inverse of [`Frame::encode`]. The inherited map carries no length
    /// prefix (it always spans the program's event space), so decoding
    /// is parameterized by `n_events`.
    fn decode(buf: &mut &[u8], n_events: usize) -> Option<Frame> {
        let state = StateId(wire::read_u32(buf)?);
        let mut inherited = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            inherited.push(Inherited::decode(buf)?);
        }
        let resume = match wire::read_u8(buf)? {
            0 => None,
            1 => Some(decode_cont(buf)?),
            _ => return None,
        };
        Some(Frame {
            state,
            inherited,
            resume,
        })
    }
}

/// The configuration of one live machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    /// The machine's type.
    pub ty: MachineTypeId,
    /// Call stack; the last frame is the top.
    pub stack: Vec<Frame>,
    /// Local variable store, indexed by `VarId`.
    pub locals: Vec<Value>,
    /// The `msg` register — the most recently received event.
    pub msg: Value,
    /// The `arg` register — the payload of the most recently received
    /// event.
    pub arg: Value,
    /// Remaining statement execution.
    pub cont: Cont,
    /// A raised event awaiting dispatch (the dynamic `raise(e, v)` of the
    /// rules in Figure 5).
    pub pending: Option<(EventId, Value)>,
    /// The input queue.
    pub queue: Vec<(EventId, Value)>,
}

impl MachineState {
    /// The top call-stack frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty — machine execution ensures the stack
    /// is only empty transiently inside a pop (where emptiness is the
    /// unhandled-event error).
    pub fn top(&self) -> &Frame {
        self.stack.last().expect("machine call stack is empty")
    }

    /// The current control state (top of stack).
    pub fn current_state(&self) -> StateId {
        self.top().state
    }

    /// Appends `(event, payload)` to the queue using the paper's ⊕
    /// operator: a no-op if an identical pair is already queued.
    ///
    /// Returns `true` if the event was actually enqueued.
    pub fn enqueue(&mut self, event: EventId, payload: Value) -> bool {
        if self.queue.iter().any(|&(e, v)| e == event && v == payload) {
            return false;
        }
        self.queue.push((event, payload));
        true
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ty.0.to_le_bytes());
        out.extend_from_slice(&(self.stack.len() as u32).to_le_bytes());
        for f in &self.stack {
            f.encode(out);
        }
        out.extend_from_slice(&(self.locals.len() as u32).to_le_bytes());
        for v in &self.locals {
            v.encode(out);
        }
        self.msg.encode(out);
        self.arg.encode(out);
        out.extend_from_slice(&(self.cont.len() as u32).to_le_bytes());
        for i in &self.cont {
            i.encode(out);
        }
        match &self.pending {
            None => out.push(0),
            Some((e, v)) => {
                out.push(1);
                out.extend_from_slice(&e.0.to_le_bytes());
                v.encode(out);
            }
        }
        out.extend_from_slice(&(self.queue.len() as u32).to_le_bytes());
        for (e, v) in &self.queue {
            out.extend_from_slice(&e.0.to_le_bytes());
            v.encode(out);
        }
    }

    /// Inverse of [`MachineState::encode`] (see [`Frame::decode`] for
    /// why `n_events` is threaded through).
    fn decode(buf: &mut &[u8], n_events: usize) -> Option<MachineState> {
        let ty = MachineTypeId(wire::read_u32(buf)?);
        let stack_len = wire::read_u32(buf)? as usize;
        let mut stack = Vec::new();
        for _ in 0..stack_len {
            stack.push(Frame::decode(buf, n_events)?);
        }
        let locals_len = wire::read_u32(buf)? as usize;
        let mut locals = Vec::new();
        for _ in 0..locals_len {
            locals.push(Value::decode(buf)?);
        }
        let msg = Value::decode(buf)?;
        let arg = Value::decode(buf)?;
        let cont = decode_cont(buf)?;
        let pending = match wire::read_u8(buf)? {
            0 => None,
            1 => {
                let e = EventId(wire::read_u32(buf)?);
                Some((e, Value::decode(buf)?))
            }
            _ => return None,
        };
        let queue_len = wire::read_u32(buf)? as usize;
        let mut queue = Vec::new();
        for _ in 0..queue_len {
            let e = EventId(wire::read_u32(buf)?);
            queue.push((e, Value::decode(buf)?));
        }
        Some(MachineState {
            ty,
            stack,
            locals,
            msg,
            arg,
            cont,
            pending,
            queue,
        })
    }

    /// [`MachineState::encode`] with every machine-id *reference*
    /// rewritten through `map` (see [`Value::encode_renamed`]). Machine
    /// ids occur only inside [`Value`]s — locals, the `msg`/`arg`
    /// registers, the pending payload, and queue payloads — so those are
    /// the exact positions that differ from the plain encoding; frames
    /// and continuations contain no ids. The output length is identical
    /// to the plain encoding's (every id is a fixed-width `u32`).
    pub(crate) fn encode_renamed(&self, out: &mut Vec<u8>, map: &[u32]) {
        out.extend_from_slice(&self.ty.0.to_le_bytes());
        out.extend_from_slice(&(self.stack.len() as u32).to_le_bytes());
        for f in &self.stack {
            f.encode(out);
        }
        out.extend_from_slice(&(self.locals.len() as u32).to_le_bytes());
        for v in &self.locals {
            v.encode_renamed(out, map);
        }
        self.msg.encode_renamed(out, map);
        self.arg.encode_renamed(out, map);
        out.extend_from_slice(&(self.cont.len() as u32).to_le_bytes());
        for i in &self.cont {
            i.encode(out);
        }
        match &self.pending {
            None => out.push(0),
            Some((e, v)) => {
                out.push(1);
                out.extend_from_slice(&e.0.to_le_bytes());
                v.encode_renamed(out, map);
            }
        }
        out.extend_from_slice(&(self.queue.len() as u32).to_le_bytes());
        for (e, v) in &self.queue {
            out.extend_from_slice(&e.0.to_le_bytes());
            v.encode_renamed(out, map);
        }
    }
}

/// A global configuration: every machine created so far, with deleted
/// machines remembered as `None` (so that sends to them are detected as
/// errors, rule SEND-FAIL2).
///
/// Machines are stored behind [`Arc`]s and mutated copy-on-write via
/// [`Config::machine_mut`]; equality and the canonical encoding are
/// functions of the machine contents only (the digest cache is ignored).
#[derive(Debug, Clone, Default)]
pub struct Config {
    machines: Vec<Option<Arc<MachineState>>>,
    /// Per-slot digest cache: the 128-bit hash of the slot's canonical
    /// encoding and that encoding's byte length. `None` after the slot
    /// was mutated (or never hashed). Kept in lock-step with `machines`.
    digests: Vec<Option<(u128, u32)>>,
}

impl PartialEq for Config {
    fn eq(&self, other: &Config) -> bool {
        // The digest cache is derived data; two configurations are equal
        // iff their machines are.
        self.machines == other.machines
    }
}

impl Config {
    /// Allocates a fresh machine of type `ty` with ⊥-initialized locals,
    /// an initial frame, and the init state's entry statement as its
    /// continuation. Returns the new id.
    pub fn allocate(&mut self, program: &LoweredProgram, ty: MachineTypeId) -> MachineId {
        let mt = program.machine(ty);
        let n_events = program.event_count();
        let init = mt.init_state();
        let entry = mt.states[init.0 as usize].entry;
        let state = MachineState {
            ty,
            stack: vec![Frame::initial(init, n_events)],
            locals: vec![Value::Null; mt.vars.len()],
            msg: Value::Null,
            arg: Value::Null,
            cont: vec![Instr::Stmt(entry)],
            pending: None,
            queue: Vec::new(),
        };
        self.machines.push(Some(Arc::new(state)));
        self.digests.push(None);
        MachineId((self.machines.len() - 1) as u32)
    }

    /// Total machines ever created (including deleted ones).
    pub fn created_count(&self) -> usize {
        self.machines.len()
    }

    /// Ids of machines that are still alive.
    pub fn live_ids(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_some())
            .map(|(i, _)| MachineId(i as u32))
    }

    /// Looks up a live machine.
    pub fn machine(&self, id: MachineId) -> Option<&MachineState> {
        self.machines.get(id.0 as usize).and_then(|m| m.as_deref())
    }

    /// Mutable lookup of a live machine. Copy-on-write: if the machine is
    /// shared with another configuration (a search sibling), only this
    /// one machine is cloned — everything else stays shared. The slot's
    /// cached digest is invalidated.
    pub fn machine_mut(&mut self, id: MachineId) -> Option<&mut MachineState> {
        let i = id.0 as usize;
        let slot = self.machines.get_mut(i)?.as_mut()?;
        self.digests[i] = None;
        Some(Arc::make_mut(slot))
    }

    /// Takes machine `id` out of its slot for the duration of an atomic
    /// run, leaving a temporary tombstone and invalidating the cached
    /// digest. [`Engine::run_machine`] pairs this with
    /// [`Config::restore_machine`] so the interpreter's small-step loop
    /// works on a direct `&mut MachineState` instead of re-resolving the
    /// slot (bounds check, liveness check, `Arc::make_mut`) on every
    /// step. While taken, the running machine is invisible to slot
    /// lookups — the interpreter special-cases self-sends.
    pub(crate) fn take_machine(&mut self, id: MachineId) -> Option<Arc<MachineState>> {
        let i = id.0 as usize;
        let taken = self.machines.get_mut(i)?.take()?;
        self.digests[i] = None;
        Some(taken)
    }

    /// Puts a machine taken with [`Config::take_machine`] back into its
    /// slot. The digest stays invalidated — the run mutated the state.
    pub(crate) fn restore_machine(&mut self, id: MachineId, state: Arc<MachineState>) {
        self.machines[id.0 as usize] = Some(state);
    }

    /// Removes machine `id` (the `delete` statement). Its slot stays
    /// reserved so later sends to it are errors.
    pub fn delete(&mut self, id: MachineId) {
        if let Some(slot) = self.machines.get_mut(id.0 as usize) {
            *slot = None;
            self.digests[id.0 as usize] = None;
        }
    }

    /// Whether machine `id` can take a step: it is live and is either
    /// mid-execution, holding a raised event, or has a dequeuable event in
    /// its queue (the `en(m)` predicate of §3.2).
    pub fn enabled(&self, id: MachineId, program: &LoweredProgram) -> bool {
        let Some(m) = self.machine(id) else {
            return false;
        };
        if !m.cont.is_empty() || m.pending.is_some() {
            return true;
        }
        self.dequeuable_index(m, program).is_some()
    }

    /// The queue index of the first event machine `m` could dequeue in its
    /// current state, following the DEQUEUE rule: skip events that are
    /// deferred (by the state or inherited) unless a transition or action
    /// of the current state handles them.
    pub fn dequeuable_index(&self, m: &MachineState, program: &LoweredProgram) -> Option<usize> {
        let mt = program.machine(m.ty);
        let frame = m.top();
        let state = &mt.states[frame.state.0 as usize];
        m.queue.iter().position(|&(e, _)| {
            let i = e.0 as usize;
            // t: handled directly by the current state.
            if state.handles(e) {
                return true;
            }
            // d': deferred here or inherited as deferred.
            let deferred = state.deferred.contains(e) || frame.inherited[i] == Inherited::Deferred;
            !deferred
        })
    }

    /// Serializes the configuration to a canonical byte string for
    /// explicit-state deduplication.
    ///
    /// # Stability contract
    ///
    /// The checker fingerprints this encoding and shares the
    /// fingerprints across worker threads, so the encoding must be a
    /// pure function of the configuration's semantic content:
    ///
    /// * **injective** — semantically distinct configurations (machine
    ///   states, locals, queue contents *and order*, call stacks) must
    ///   encode to distinct byte strings, and equal configurations to
    ///   equal byte strings;
    /// * **deterministic** — independent of thread, process, iteration
    ///   order of any internal map, or allocation history beyond the
    ///   machine-id space itself.
    ///
    /// Changing the encoding is safe (fingerprints are never persisted
    /// across runs) but breaking either property silently unsounds the
    /// visited-set deduplication in every exploration strategy.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&(self.machines.len() as u32).to_le_bytes());
        for m in &self.machines {
            match m {
                None => out.push(0),
                Some(state) => {
                    out.push(1);
                    state.encode(&mut out);
                }
            }
        }
        out
    }

    /// Inverse of [`Config::canonical_bytes`]: rebuilds a configuration
    /// from its canonical encoding, or returns `None` for malformed or
    /// trailing bytes. `n_events` is the program's event count (the
    /// inherited handler maps are encoded without a length prefix).
    ///
    /// This is what makes checkpoints possible: a frontier
    /// configuration persisted as its canonical bytes decodes to a
    /// `Config` that is `==` to — and produces the same digest as — the
    /// original. The digest cache starts cold and refills lazily.
    pub fn from_canonical_bytes(bytes: &[u8], n_events: usize) -> Option<Config> {
        let mut buf = bytes;
        let count = wire::read_u32(&mut buf)? as usize;
        let mut machines = Vec::new();
        for _ in 0..count {
            machines.push(match wire::read_u8(&mut buf)? {
                0 => None,
                1 => Some(Arc::new(MachineState::decode(&mut buf, n_events)?)),
                _ => return None,
            });
        }
        if !buf.is_empty() {
            return None;
        }
        let digests = vec![None; machines.len()];
        Some(Config { machines, digests })
    }

    /// The slot digest and encoded length of slot `i`, computed from
    /// scratch. Tombstones digest their tag byte alone so a deleted slot
    /// is distinguished from every live one.
    fn slot_digest(slot: &Option<Arc<MachineState>>) -> (u128, u32) {
        match slot {
            None => (fingerprint128(&[0]), 0),
            Some(state) => SLOT_SCRATCH.with(|buf| {
                let mut bytes = buf.borrow_mut();
                bytes.clear();
                bytes.push(1);
                state.encode(&mut bytes);
                (fingerprint128(&bytes), (bytes.len() - 1) as u32)
            }),
        }
    }

    /// Fills every missing entry of the digest cache.
    fn fill_digests(&mut self) {
        for (i, cached) in self.digests.iter_mut().enumerate() {
            if cached.is_none() {
                *cached = Some(Config::slot_digest(&self.machines[i]));
            }
        }
    }

    /// Combines per-slot digests into the global one: an order-sensitive
    /// polynomial fold over the digest sequence,
    /// `acc = acc·P + hᵢ (mod 2¹²⁸)`, seeded with the slot count.
    ///
    /// `P` is odd, so every power of `P` is invertible mod 2¹²⁸ and two
    /// sequences of the same length collide only when the (nonzero)
    /// difference polynomial vanishes — for slot digests that are
    /// already uniform SipHash outputs this is the same ~2⁻¹²⁸ event as
    /// a direct hash collision. Tombstones fold a fixed tag so a deleted
    /// slot is distinguished from every live one, and the count seed
    /// separates sequences of different lengths. This replaces
    /// re-hashing a count·17-byte concatenation per transition with
    /// ~`count` multiplications.
    pub(crate) fn combine_digests(
        digests: impl Iterator<Item = (bool, u128)>,
        count: usize,
    ) -> u128 {
        const P: u128 = 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835;
        const TOMBSTONE: u128 = 0x5851_f42d_4c95_7f2d_1405_7b7e_f767_814f;
        let mut acc = (count as u128).wrapping_mul(P);
        for (live, digest) in digests {
            let h = if live { digest } else { TOMBSTONE };
            acc = acc.wrapping_mul(P).wrapping_add(h);
        }
        // Final avalanche so trailing-slot edits disperse into the high
        // bits (the parallel engine routes shards by them).
        acc ^= acc >> 71;
        acc = acc.wrapping_mul(P);
        acc ^ (acc >> 64)
    }

    /// The configuration's 128-bit state digest, computed incrementally:
    /// only machines mutated since the last call are re-encoded and
    /// re-hashed; untouched machines reuse their cached digests.
    ///
    /// The digest obeys the same stability contract as
    /// [`Config::canonical_bytes`] — equal for equal configurations,
    /// distinct for distinct ones (up to 128-bit hash collisions),
    /// deterministic across threads, runs and processes.
    pub fn digest(&mut self) -> u128 {
        self.digest_and_len().0
    }

    /// [`Config::digest`] and [`Config::encoded_len`] from one pass over
    /// the (filled) per-slot cache — the explorers need both per
    /// transition.
    pub fn digest_and_len(&mut self) -> (u128, usize) {
        self.fill_digests();
        let digest = Config::combine_digests(
            self.digests
                .iter()
                .zip(&self.machines)
                .map(|(d, m)| (m.is_some(), d.expect("cache filled").0)),
            self.machines.len(),
        );
        let len = 4 + self
            .digests
            .iter()
            .map(|d| 1 + d.expect("cache filled").1 as usize)
            .sum::<usize>();
        (digest, len)
    }

    /// The digest computed entirely from scratch, ignoring (and not
    /// touching) the cache. Used by tests and debug assertions to prove
    /// the incremental path agrees with a cold recomputation.
    pub fn digest_uncached(&self) -> u128 {
        Config::combine_digests(
            self.machines
                .iter()
                .map(|m| (m.is_some(), Config::slot_digest(m).0)),
            self.machines.len(),
        )
    }

    /// The length of [`Config::canonical_bytes`] without materializing
    /// it, from the same per-slot cache as [`Config::digest`]. The
    /// checker accounts this as the stored-bytes statistic (the memory
    /// column of Figure 8).
    pub fn encoded_len(&mut self) -> usize {
        self.fill_digests();
        4 + self
            .digests
            .iter()
            .map(|d| 1 + d.expect("cache filled").1 as usize)
            .sum::<usize>()
    }

    /// The raw slot vector alongside the (filled) per-slot digest cache,
    /// for the canonicalization layer: canonical renumbering keys its
    /// per-slot memo by the concrete slot digest, so it wants both in
    /// one borrow.
    #[allow(clippy::type_complexity)]
    pub(crate) fn slots_and_digests(
        &mut self,
    ) -> (&[Option<Arc<MachineState>>], &[Option<(u128, u32)>]) {
        self.fill_digests();
        (&self.machines, &self.digests)
    }

    /// Relabels machine ids through the bijection `perm` (`perm[i]` is
    /// the new slot index of old slot `i`): slot contents move to their
    /// new indices and every `Value::Machine` reference stored in any
    /// machine is rewritten through `perm`. The caller must pass a
    /// permutation of `0..created_count()` that is *type-preserving* on
    /// live slots and fixes tombstones, or the result is not
    /// behaviorally equivalent.
    ///
    /// This is the specification the symmetry-reduced fingerprint is
    /// tested against: `canonical_digest` must be invariant under every
    /// such relabeling.
    pub fn apply_permutation(&self, perm: &[u32]) -> Config {
        assert_eq!(perm.len(), self.machines.len(), "permutation arity");
        let mut machines: Vec<Option<Arc<MachineState>>> = vec![None; self.machines.len()];
        for (i, slot) in self.machines.iter().enumerate() {
            let Some(state) = slot else {
                assert_eq!(perm[i] as usize, i, "tombstones must stay fixed");
                continue;
            };
            let mut renamed = MachineState::clone(state);
            let rewrite = |v: &mut Value| {
                if let Value::Machine(m) = v {
                    *m = MachineId(perm[m.0 as usize]);
                }
            };
            renamed.locals.iter_mut().for_each(rewrite);
            rewrite(&mut renamed.msg);
            rewrite(&mut renamed.arg);
            if let Some((_, v)) = &mut renamed.pending {
                rewrite(v);
            }
            for (_, v) in &mut renamed.queue {
                rewrite(v);
            }
            let target = &mut machines[perm[i] as usize];
            assert!(target.is_none(), "perm is not a bijection");
            *target = Some(Arc::new(renamed));
        }
        Config {
            digests: vec![None; machines.len()],
            machines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use p_ast::{ProgramBuilder, Ty};

    fn tiny_program() -> LoweredProgram {
        let mut b = ProgramBuilder::new();
        b.event("e");
        b.event_with("d", Ty::Int);
        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        m.state("A").defer(&["d"]);
        m.state("B");
        m.step("A", "e", "B");
        m.finish();
        lower(&b.finish("M")).unwrap()
    }

    #[test]
    fn allocate_sets_up_initial_machine() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        let m = c.machine(id).unwrap();
        assert_eq!(m.stack.len(), 1);
        assert_eq!(m.current_state(), StateId(0));
        assert_eq!(m.locals, vec![Value::Null]);
        assert_eq!(m.cont.len(), 1);
        assert!(m.queue.is_empty());
    }

    #[test]
    fn enqueue_deduplicates_identical_pairs() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        let m = c.machine_mut(id).unwrap();
        let e = EventId(0);
        assert!(m.enqueue(e, Value::Null));
        assert!(!m.enqueue(e, Value::Null));
        // Same event with a different payload is a distinct pair.
        assert!(m.enqueue(e, Value::Int(1)));
        assert!(m.enqueue(e, Value::Int(2)));
        assert!(!m.enqueue(e, Value::Int(1)));
        assert_eq!(m.queue.len(), 3);
    }

    #[test]
    fn delete_leaves_tombstone() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        c.delete(id);
        assert!(c.machine(id).is_none());
        assert_eq!(c.created_count(), 1);
        assert_eq!(c.live_ids().count(), 0);
        // A new allocation gets a fresh id, not the tombstone's.
        let id2 = c.allocate(&p, p.main);
        assert_ne!(id, id2);
    }

    #[test]
    fn dequeue_skips_deferred_events() {
        let p = tiny_program();
        let d = p.event_id_named("d").unwrap();
        let e = p.event_id_named("e").unwrap();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        {
            let m = c.machine_mut(id).unwrap();
            m.cont.clear(); // pretend entry finished
            m.enqueue(d, Value::Int(1));
            m.enqueue(e, Value::Null);
        }
        let m = c.machine(id).unwrap();
        // `d` is deferred in state A, `e` has a transition: index 1.
        assert_eq!(c.dequeuable_index(m, &p), Some(1));
    }

    #[test]
    fn enabled_accounts_for_queue_and_cont() {
        let p = tiny_program();
        let d = p.event_id_named("d").unwrap();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        assert!(c.enabled(id, &p)); // entry statement still to run
        c.machine_mut(id).unwrap().cont.clear();
        assert!(!c.enabled(id, &p)); // empty queue
        c.machine_mut(id).unwrap().enqueue(d, Value::Null);
        assert!(!c.enabled(id, &p)); // only a deferred event queued
    }

    #[test]
    fn canonical_bytes_distinguish_configs() {
        let p = tiny_program();
        let mut c1 = Config::default();
        let id = c1.allocate(&p, p.main);
        let mut c2 = c1.clone();
        assert_eq!(c1.canonical_bytes(), c2.canonical_bytes());
        c2.machine_mut(id).unwrap().locals[0] = Value::Int(3);
        assert_ne!(c1.canonical_bytes(), c2.canonical_bytes());
    }

    /// The stability contract: queue *order* is semantic content (FIFO
    /// dequeue), so two configurations differing only in the order of
    /// queued events must encode differently — and re-encoding the same
    /// configuration is bit-identical.
    #[test]
    fn canonical_bytes_distinguish_queue_order() {
        let p = tiny_program();
        let mut c1 = Config::default();
        let id = c1.allocate(&p, p.main);
        let mut c2 = c1.clone();
        c1.machine_mut(id).unwrap().enqueue(EventId(0), Value::Null);
        c1.machine_mut(id)
            .unwrap()
            .enqueue(EventId(1), Value::Int(1));
        c2.machine_mut(id)
            .unwrap()
            .enqueue(EventId(1), Value::Int(1));
        c2.machine_mut(id).unwrap().enqueue(EventId(0), Value::Null);
        assert_ne!(c1.canonical_bytes(), c2.canonical_bytes());
        assert_eq!(c1.canonical_bytes(), c1.canonical_bytes());
        assert_eq!(c1.canonical_bytes(), c1.clone().canonical_bytes());
    }

    /// The incremental digest must agree with a cold recomputation at
    /// every point of a mutate/clone/delete history, and distinguish the
    /// same configurations the canonical encoding distinguishes.
    #[test]
    fn digest_incremental_matches_uncached() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        assert_eq!(c.digest(), c.digest_uncached());

        // A branch clone shares machines; mutating one branch must not
        // disturb the other (copy-on-write) and both digests must track.
        let mut branch = c.clone();
        branch.machine_mut(id).unwrap().locals[0] = Value::Int(7);
        assert_eq!(branch.digest(), branch.digest_uncached());
        assert_eq!(c.digest(), c.digest_uncached());
        assert_ne!(c.digest(), branch.digest());
        assert_eq!(c.machine(id).unwrap().locals[0], Value::Null);

        // Enqueue through the cache-invalidating accessor.
        c.machine_mut(id).unwrap().enqueue(EventId(0), Value::Null);
        assert_eq!(c.digest(), c.digest_uncached());

        // Allocation and deletion both reshape the slot vector.
        let id2 = c.allocate(&p, p.main);
        assert_eq!(c.digest(), c.digest_uncached());
        c.delete(id2);
        assert_eq!(c.digest(), c.digest_uncached());

        // A tombstone is not the same as the machine never existing.
        let mut fresh = Config::default();
        fresh.allocate(&p, p.main);
        fresh
            .machine_mut(MachineId(0))
            .unwrap()
            .enqueue(EventId(0), Value::Null);
        assert_ne!(c.digest(), fresh.digest());
    }

    /// Digest equality must coincide with canonical-encoding equality.
    #[test]
    fn digest_tracks_canonical_bytes() {
        let p = tiny_program();
        let mut c1 = Config::default();
        let id = c1.allocate(&p, p.main);
        let mut c2 = c1.clone();
        assert_eq!(c1.digest(), c2.digest());
        c2.machine_mut(id).unwrap().locals[0] = Value::Int(3);
        assert_ne!(c1.canonical_bytes(), c2.canonical_bytes());
        assert_ne!(c1.digest(), c2.digest());
    }

    /// `encoded_len` equals the materialized canonical encoding's length
    /// (the stored-bytes statistic must not drift from the old
    /// accounting).
    #[test]
    fn encoded_len_matches_canonical_bytes_len() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        assert_eq!(c.encoded_len(), c.canonical_bytes().len());
        c.machine_mut(id)
            .unwrap()
            .enqueue(EventId(1), Value::Int(4));
        c.allocate(&p, p.main);
        assert_eq!(c.encoded_len(), c.canonical_bytes().len());
        c.delete(id);
        assert_eq!(c.encoded_len(), c.canonical_bytes().len());
    }

    /// Checkpoint round trip: decoding the canonical encoding rebuilds
    /// an equal configuration with an equal digest — through mutation,
    /// deletion (tombstones), queued payloads, and a raised event.
    #[test]
    fn canonical_bytes_round_trip() {
        let p = tiny_program();
        let n_events = p.event_count();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        let id2 = c.allocate(&p, p.main);
        {
            let m = c.machine_mut(id).unwrap();
            m.locals[0] = Value::Machine(id2);
            m.enqueue(EventId(0), Value::Int(-9));
            m.enqueue(EventId(1), Value::Null);
            m.pending = Some((EventId(1), Value::Bool(true)));
        }
        c.delete(id2);
        let bytes = c.canonical_bytes();
        let back = Config::from_canonical_bytes(&bytes, n_events).expect("round trip");
        assert_eq!(back, c);
        assert_eq!(back.canonical_bytes(), bytes);
        let mut back = back;
        assert_eq!(back.digest(), c.digest());
    }

    /// Malformed inputs are rejected, never panicked on: truncation,
    /// trailing garbage, and a bad tag byte all yield `None`.
    #[test]
    fn from_canonical_bytes_rejects_malformed() {
        let p = tiny_program();
        let n_events = p.event_count();
        let mut c = Config::default();
        c.allocate(&p, p.main);
        let bytes = c.canonical_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Config::from_canonical_bytes(&bytes[..cut], n_events).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Config::from_canonical_bytes(&trailing, n_events).is_none());
        let mut bad_tag = bytes.clone();
        bad_tag[4] = 7; // slot tag must be 0 or 1
        assert!(Config::from_canonical_bytes(&bad_tag, n_events).is_none());
        // A wrong event count misaligns the frame decode.
        assert!(Config::from_canonical_bytes(&bytes, n_events + 13).is_none());
    }

    /// The digest cache must never leak into equality.
    #[test]
    fn equality_ignores_digest_cache() {
        let p = tiny_program();
        let mut a = Config::default();
        a.allocate(&p, p.main);
        let b = a.clone();
        let _ = a.digest(); // fill a's cache only
        assert_eq!(a, b);
    }
}
