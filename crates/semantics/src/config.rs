//! Global and per-machine configurations.
//!
//! §3.1: a global configuration `M` maps machine identifiers to machine
//! configurations `(σ, s, S, q)` — a call stack of (state, inherited
//! handler map) pairs, a variable store, the statement remaining to be
//! executed, and an input queue. This module represents those pieces in a
//! form that is cheap to clone (for search branching) and to serialize
//! (for explicit-state deduplication).
//!
//! Two representation choices make exploration cost proportional to what
//! a step actually changes rather than to the whole configuration:
//!
//! * **copy-on-write machines** — each machine lives behind an
//!   [`Arc`], so cloning a configuration for a search branch is
//!   O(#machines) refcount bumps and the first mutation of a machine
//!   after a branch ([`Arc::make_mut`] inside [`Config::machine_mut`])
//!   copies only that one machine;
//! * **incremental digests** — each slot caches the 128-bit SipHash of
//!   its canonical encoding (plus the encoding's length), invalidated
//!   only when that machine is touched, so fingerprinting a successor
//!   re-hashes one machine instead of re-encoding the world
//!   ([`Config::digest`]).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::hash::fingerprint128_fast;

/// Multiplier shared by the digest finalizer and the per-slot weights
/// (odd, so multiplication by it is invertible mod 2¹²⁸).
const DIGEST_P: u128 = 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835;

/// The digest a tombstone slot contributes in place of a machine
/// encoding's hash, so a deleted slot is distinguished from every live
/// one (and from a slot that never existed — the count seed covers
/// that).
const TOMBSTONE_DIGEST: u128 = 0x5851_f42d_4c95_7f2d_1405_7b7e_f767_814f;

/// SplitMix64's finalizer: a cheap, well-dispersed 64-bit permutation
/// used to derive per-slot weights from slot indices.
const fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The position weight of slot `i` in the homomorphic digest fold: an
/// odd (hence invertible mod 2¹²⁸) 128-bit constant derived from the
/// index, so the same machine state contributes differently at
/// different slot positions. The first slots come from a
/// const-evaluated table; higher indices (rare) compute on demand.
fn slot_weight(i: usize) -> u128 {
    const fn weight(i: u64) -> u128 {
        let lo = splitmix64(i);
        let hi = splitmix64(i ^ 0x517c_c1b7_2722_0a95);
        (((hi as u128) << 64) | lo as u128) | 1
    }
    const CACHED: usize = 64;
    const WEIGHTS: [u128; CACHED] = {
        let mut w = [0u128; CACHED];
        let mut i = 0;
        while i < CACHED {
            w[i] = weight(i as u64);
            i += 1;
        }
        w
    };
    if i < CACHED {
        WEIGHTS[i]
    } else {
        weight(i as u64)
    }
}

/// Avalanches one slot digest before it enters the linear fold. The
/// fold is a sum of per-slot terms (that is what makes subtract-old /
/// add-new maintenance possible), so each term must already be
/// well-mixed; slot digests are SipHash outputs (uniform), and this
/// permutation decouples the term from the raw digest value.
fn mix_slot_digest(h: u128) -> u128 {
    let mut h = h ^ (h >> 67);
    h = h.wrapping_mul(DIGEST_P);
    h ^ (h >> 71)
}

/// Slot `i`'s term in the homomorphic digest fold. Tombstone slots are
/// cached with [`TOMBSTONE_DIGEST`] as their digest, so the cached
/// entry alone determines the term.
fn slot_term(i: usize, digest: u128) -> u128 {
    mix_slot_digest(digest).wrapping_mul(slot_weight(i))
}

/// Finalizes the running fold into the published digest: folds in the
/// slot count (so prefixes of each other's slot vectors stay distinct)
/// and avalanches, so trailing-slot edits disperse into the high bits
/// (the parallel engine routes shards by them).
fn finalize_digest(acc: u128, count: usize) -> u128 {
    let mut acc = acc.wrapping_add((count as u128).wrapping_mul(DIGEST_P));
    acc ^= acc >> 71;
    acc = acc.wrapping_mul(DIGEST_P);
    acc ^ (acc >> 64)
}

thread_local! {
    /// Scratch buffer for the digest hot path: one machine encoding
    /// buffer per thread, reused across the millions of transitions an
    /// exploration hashes, so the per-transition digest never allocates.
    /// Thread-local (not per-`Config`) so it is not dragged through
    /// `Clone`/`PartialEq` and stays sound across threads.
    static SLOT_SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::with_capacity(256));
}

use crate::lower::{ActionId, EventId, LoweredProgram, MachineTypeId, StateId, StmtId};
use crate::value::Value;
use crate::wire;

/// Identifier of a dynamically created machine instance.
///
/// Instance ids are allocated densely in creation order, which makes runs
/// deterministic given a schedule — a requirement for state hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An entry of the inherited handler map `a` carried on the call stack:
/// ⊥ (no handler), `T` (deferred), or an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Inherited {
    /// ⊥ — no inherited handler.
    #[default]
    None,
    /// `T` — the event is inherited as deferred.
    Deferred,
    /// An inherited action binding.
    Action(ActionId),
}

impl Inherited {
    fn encode(self, out: &mut Vec<u8>) {
        match self {
            Inherited::None => out.push(0),
            Inherited::Deferred => out.push(1),
            Inherited::Action(a) => {
                out.push(2);
                out.extend_from_slice(&a.0.to_le_bytes());
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Inherited> {
        Some(match wire::read_u8(buf)? {
            0 => Inherited::None,
            1 => Inherited::Deferred,
            2 => Inherited::Action(ActionId(wire::read_u32(buf)?)),
            _ => return None,
        })
    }
}

/// One instruction of a statement continuation.
///
/// The operational semantics presents statement execution with evaluation
/// contexts `S[s]`; a continuation stack is the standard defunctionalized
/// form of the same thing, and makes machine configurations first-class
/// values that can be cloned and hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Execute a statement.
    Stmt(StmtId),
    /// Resume a block at child index `.1`.
    Seq(StmtId, u32),
    /// Re-evaluate a `while` statement's condition.
    Loop(StmtId),
    /// Replace the top frame's state with the target and run its entry
    /// statement (the tail of a step transition, after the exit ran).
    EnterState(StateId),
    /// Pop the top frame after a `return` (its exit already ran); restore
    /// the frame's saved continuation if present.
    PopViaReturn,
    /// Pop the top frame because the pending event is unhandled there (its
    /// exit already ran); the pending event is re-dispatched in the caller.
    /// Popping the last frame is the *unhandled event* error.
    PopUnhandled,
}

impl Instr {
    fn encode(self, out: &mut Vec<u8>) {
        match self {
            Instr::Stmt(s) => {
                out.push(0);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            Instr::Seq(s, i) => {
                out.push(1);
                out.extend_from_slice(&s.0.to_le_bytes());
                out.extend_from_slice(&i.to_le_bytes());
            }
            Instr::Loop(s) => {
                out.push(2);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            Instr::EnterState(s) => {
                out.push(3);
                out.extend_from_slice(&s.0.to_le_bytes());
            }
            Instr::PopViaReturn => out.push(4),
            Instr::PopUnhandled => out.push(5),
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Instr> {
        Some(match wire::read_u8(buf)? {
            0 => Instr::Stmt(StmtId(wire::read_u32(buf)?)),
            1 => Instr::Seq(StmtId(wire::read_u32(buf)?), wire::read_u32(buf)?),
            2 => Instr::Loop(StmtId(wire::read_u32(buf)?)),
            3 => Instr::EnterState(StateId(wire::read_u32(buf)?)),
            4 => Instr::PopViaReturn,
            5 => Instr::PopUnhandled,
            _ => return None,
        })
    }
}

/// Decodes a `u32`-prefixed instruction sequence.
fn decode_cont(buf: &mut &[u8]) -> Option<Cont> {
    let len = wire::read_u32(buf)? as usize;
    // No pre-reservation from the untrusted length: each instruction
    // consumes at least one byte, so underflow bails out promptly.
    let mut cont = Vec::new();
    for _ in 0..len {
        cont.push(Instr::decode(buf)?);
    }
    Some(cont)
}

/// A statement continuation: a stack of instructions, the last element
/// being the next to execute.
pub type Cont = Vec<Instr>;

/// A call-stack frame `(n, a)` — a state plus the handler map inherited
/// from callers — optionally carrying the continuation saved by a
/// `call n;` statement.
#[derive(Debug, PartialEq)]
pub struct Frame {
    /// The frame's control state.
    pub state: StateId,
    /// Inherited handler map, indexed by event id.
    pub inherited: Vec<Inherited>,
    /// Saved caller continuation (only for `call n;` statements).
    pub resume: Option<Cont>,
}

impl Clone for Frame {
    fn clone(&self) -> Frame {
        Frame {
            state: self.state,
            inherited: self.inherited.clone(),
            resume: self.resume.clone(),
        }
    }

    /// Buffer-reusing clone: the inherited map and resume continuation
    /// copy into the existing allocations (their elements are `Copy`),
    /// so re-deriving a recycled frame from a source frame is
    /// allocation-free once capacities have grown.
    fn clone_from(&mut self, src: &Frame) {
        self.state = src.state;
        self.inherited.clone_from(&src.inherited);
        match (&mut self.resume, &src.resume) {
            (Some(dst), Some(s)) => dst.clone_from(s),
            (dst, s) => *dst = s.clone(),
        }
    }
}

impl Frame {
    /// A frame with an empty inherited map (used for initial states).
    pub fn initial(state: StateId, n_events: usize) -> Frame {
        Frame {
            state,
            inherited: vec![Inherited::None; n_events],
            resume: None,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.state.0.to_le_bytes());
        for h in &self.inherited {
            h.encode(out);
        }
        match &self.resume {
            None => out.push(0),
            Some(cont) => {
                out.push(1);
                out.extend_from_slice(&(cont.len() as u32).to_le_bytes());
                for i in cont {
                    i.encode(out);
                }
            }
        }
    }

    /// Inverse of [`Frame::encode`]. The inherited map carries no length
    /// prefix (it always spans the program's event space), so decoding
    /// is parameterized by `n_events`.
    fn decode(buf: &mut &[u8], n_events: usize) -> Option<Frame> {
        let state = StateId(wire::read_u32(buf)?);
        let mut inherited = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            inherited.push(Inherited::decode(buf)?);
        }
        let resume = match wire::read_u8(buf)? {
            0 => None,
            1 => Some(decode_cont(buf)?),
            _ => return None,
        };
        Some(Frame {
            state,
            inherited,
            resume,
        })
    }
}

/// The configuration of one live machine.
#[derive(Debug, PartialEq)]
pub struct MachineState {
    /// The machine's type.
    pub ty: MachineTypeId,
    /// Call stack; the last frame is the top.
    pub stack: Vec<Frame>,
    /// Local variable store, indexed by `VarId`.
    pub locals: Vec<Value>,
    /// The `msg` register — the most recently received event.
    pub msg: Value,
    /// The `arg` register — the payload of the most recently received
    /// event.
    pub arg: Value,
    /// Remaining statement execution.
    pub cont: Cont,
    /// A raised event awaiting dispatch (the dynamic `raise(e, v)` of the
    /// rules in Figure 5).
    pub pending: Option<(EventId, Value)>,
    /// The input queue.
    pub queue: Vec<(EventId, Value)>,
}

impl Clone for MachineState {
    fn clone(&self) -> MachineState {
        MachineState {
            ty: self.ty,
            stack: self.stack.clone(),
            locals: self.locals.clone(),
            msg: self.msg,
            arg: self.arg,
            cont: self.cont.clone(),
            pending: self.pending,
            queue: self.queue.clone(),
        }
    }

    /// Buffer-reusing clone: every vector copies into its existing
    /// allocation (`Vec::clone_from` reuses capacity and clones frames
    /// element-wise through [`Frame::clone_from`]), so re-deriving a
    /// recycled machine state is allocation-free in the steady state.
    /// This is what makes the checker's successor recycling pay:
    /// `Arc::make_mut` on a uniquely-owned recycled slot never copies.
    fn clone_from(&mut self, src: &MachineState) {
        self.ty = src.ty;
        self.stack.clone_from(&src.stack);
        self.locals.clone_from(&src.locals);
        self.msg = src.msg;
        self.arg = src.arg;
        self.cont.clone_from(&src.cont);
        self.pending = src.pending;
        self.queue.clone_from(&src.queue);
    }
}

impl MachineState {
    /// The top call-stack frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty — machine execution ensures the stack
    /// is only empty transiently inside a pop (where emptiness is the
    /// unhandled-event error).
    pub fn top(&self) -> &Frame {
        self.stack.last().expect("machine call stack is empty")
    }

    /// The current control state (top of stack).
    pub fn current_state(&self) -> StateId {
        self.top().state
    }

    /// Appends `(event, payload)` to the queue using the paper's ⊕
    /// operator: a no-op if an identical pair is already queued.
    ///
    /// Returns `true` if the event was actually enqueued.
    pub fn enqueue(&mut self, event: EventId, payload: Value) -> bool {
        if self.queue.iter().any(|&(e, v)| e == event && v == payload) {
            return false;
        }
        self.queue.push((event, payload));
        true
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ty.0.to_le_bytes());
        out.extend_from_slice(&(self.stack.len() as u32).to_le_bytes());
        for f in &self.stack {
            f.encode(out);
        }
        out.extend_from_slice(&(self.locals.len() as u32).to_le_bytes());
        for v in &self.locals {
            v.encode(out);
        }
        self.msg.encode(out);
        self.arg.encode(out);
        out.extend_from_slice(&(self.cont.len() as u32).to_le_bytes());
        for i in &self.cont {
            i.encode(out);
        }
        match &self.pending {
            None => out.push(0),
            Some((e, v)) => {
                out.push(1);
                out.extend_from_slice(&e.0.to_le_bytes());
                v.encode(out);
            }
        }
        out.extend_from_slice(&(self.queue.len() as u32).to_le_bytes());
        for (e, v) in &self.queue {
            out.extend_from_slice(&e.0.to_le_bytes());
            v.encode(out);
        }
    }

    /// Inverse of [`MachineState::encode`] (see [`Frame::decode`] for
    /// why `n_events` is threaded through).
    fn decode(buf: &mut &[u8], n_events: usize) -> Option<MachineState> {
        let ty = MachineTypeId(wire::read_u32(buf)?);
        let stack_len = wire::read_u32(buf)? as usize;
        let mut stack = Vec::new();
        for _ in 0..stack_len {
            stack.push(Frame::decode(buf, n_events)?);
        }
        let locals_len = wire::read_u32(buf)? as usize;
        let mut locals = Vec::new();
        for _ in 0..locals_len {
            locals.push(Value::decode(buf)?);
        }
        let msg = Value::decode(buf)?;
        let arg = Value::decode(buf)?;
        let cont = decode_cont(buf)?;
        let pending = match wire::read_u8(buf)? {
            0 => None,
            1 => {
                let e = EventId(wire::read_u32(buf)?);
                Some((e, Value::decode(buf)?))
            }
            _ => return None,
        };
        let queue_len = wire::read_u32(buf)? as usize;
        let mut queue = Vec::new();
        for _ in 0..queue_len {
            let e = EventId(wire::read_u32(buf)?);
            queue.push((e, Value::decode(buf)?));
        }
        Some(MachineState {
            ty,
            stack,
            locals,
            msg,
            arg,
            cont,
            pending,
            queue,
        })
    }

    /// [`MachineState::encode`] with every machine-id *reference*
    /// rewritten through `map` (see [`Value::encode_renamed`]). Machine
    /// ids occur only inside [`Value`]s — locals, the `msg`/`arg`
    /// registers, the pending payload, and queue payloads — so those are
    /// the exact positions that differ from the plain encoding; frames
    /// and continuations contain no ids. The output length is identical
    /// to the plain encoding's (every id is a fixed-width `u32`).
    pub(crate) fn encode_renamed(&self, out: &mut Vec<u8>, map: &[u32]) {
        out.extend_from_slice(&self.ty.0.to_le_bytes());
        out.extend_from_slice(&(self.stack.len() as u32).to_le_bytes());
        for f in &self.stack {
            f.encode(out);
        }
        out.extend_from_slice(&(self.locals.len() as u32).to_le_bytes());
        for v in &self.locals {
            v.encode_renamed(out, map);
        }
        self.msg.encode_renamed(out, map);
        self.arg.encode_renamed(out, map);
        out.extend_from_slice(&(self.cont.len() as u32).to_le_bytes());
        for i in &self.cont {
            i.encode(out);
        }
        match &self.pending {
            None => out.push(0),
            Some((e, v)) => {
                out.push(1);
                out.extend_from_slice(&e.0.to_le_bytes());
                v.encode_renamed(out, map);
            }
        }
        out.extend_from_slice(&(self.queue.len() as u32).to_le_bytes());
        for (e, v) in &self.queue {
            out.extend_from_slice(&e.0.to_le_bytes());
            v.encode_renamed(out, map);
        }
    }
}

/// A fixed-capacity, allocation-free list of slot indices. Exceeding
/// the inline capacity degrades to "all slots" (a full scan at the next
/// flush) instead of spilling to the heap — the list rides along every
/// [`Config`] clone on the successor hot path, so it must stay `Copy`.
#[derive(Debug, Clone, Copy, Default)]
struct SlotList {
    slots: [u32; 12],
    len: u8,
    /// Capacity exceeded: membership is unknown, scan every slot.
    all: bool,
}

impl SlotList {
    fn push(&mut self, i: usize) {
        if self.all {
            return;
        }
        if (self.len as usize) < self.slots.len() {
            self.slots[self.len as usize] = i as u32;
            self.len += 1;
        } else {
            self.all = true;
            self.len = 0;
        }
    }

    fn mark_all(&mut self) {
        self.all = true;
        self.len = 0;
    }

    fn clear(&mut self) {
        self.all = false;
        self.len = 0;
    }

    fn is_empty(&self) -> bool {
        !self.all && self.len == 0
    }

    /// The listed indices (meaningless when `all` is set — check first).
    fn indices(&self) -> &[u32] {
        &self.slots[..self.len as usize]
    }
}

/// Why a canonical configuration encoding failed to decode.
///
/// Checkpoint and spill-store corruption surfaces through here; the
/// variants name what was wrong so the report is actionable instead of
/// a silent `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigDecodeError {
    /// The input ended before the slot-count header or a slot tag.
    Truncated {
        /// Byte offset at which the input ran out.
        offset: usize,
    },
    /// A slot tag byte was neither 0 (tombstone) nor 1 (live).
    BadSlotTag {
        /// Index of the offending slot.
        slot: usize,
        /// The invalid tag byte found.
        tag: u8,
    },
    /// A live slot's machine encoding was malformed or truncated.
    BadMachine {
        /// Index of the offending slot.
        slot: usize,
    },
    /// Bytes remained after the final slot decoded.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for ConfigDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigDecodeError::Truncated { offset } => {
                write!(f, "encoding truncated at byte {offset}")
            }
            ConfigDecodeError::BadSlotTag { slot, tag } => {
                write!(f, "slot {slot} has invalid tag byte {tag} (want 0 or 1)")
            }
            ConfigDecodeError::BadMachine { slot } => {
                write!(f, "slot {slot} holds a malformed machine encoding")
            }
            ConfigDecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the final slot")
            }
        }
    }
}

impl std::error::Error for ConfigDecodeError {}

/// A global configuration: every machine created so far, with deleted
/// machines remembered as `None` (so that sends to them are detected as
/// errors, rule SEND-FAIL2).
///
/// Machines are stored behind [`Arc`]s and mutated copy-on-write via
/// [`Config::machine_mut`]; equality and the canonical encoding are
/// functions of the machine contents only (the digest cache and the
/// fold accumulators are ignored).
#[derive(Debug, Default)]
pub struct Config {
    machines: Vec<Option<Arc<MachineState>>>,
    /// Per-slot digest cache: the 128-bit hash of the slot's canonical
    /// encoding and that encoding's byte length (tombstones cache
    /// [`TOMBSTONE_DIGEST`] with length 0). `None` after the slot was
    /// mutated (or never hashed). Kept in lock-step with `machines`.
    digests: Vec<Option<(u128, u32)>>,
    /// Running homomorphic fold: Σ [`slot_term`] over every slot whose
    /// digest is cached. Mutators subtract the old term eagerly, so
    /// publishing a digest only adds back the few dirty slots' terms.
    acc: u128,
    /// Running Σ (1 + encoded length) over slots whose digest is
    /// cached — the body of [`Config::encoded_len`], maintained the
    /// same subtract-old / add-new way.
    len_acc: usize,
    /// Slots whose digest cache entry is `None` (mutated since the last
    /// digest); drained by [`Config::fill_digests`].
    dirty: SlotList,
    /// Slots digested but not yet offered to a [`SlotInterner`];
    /// drained by [`Config::intern_slots`].
    uninterned: SlotList,
    /// Spare uniquely-owned machine buffers for allocation-free
    /// copy-on-write unsharing ([`Config::machine_mut`] on a shared
    /// slot). Never semantic state: ignored by equality, hashing and
    /// encoding, emptied on [`Clone::clone`], refilled by the checker's
    /// successor arena via [`Config::prepare_candidate`].
    scratch: Vec<Arc<MachineState>>,
}

impl PartialEq for Config {
    fn eq(&self, other: &Config) -> bool {
        // The digest cache is derived data; two configurations are equal
        // iff their machines are. Interning makes slot pointer equality
        // common, so compare identity before content.
        self.machines.len() == other.machines.len()
            && self
                .machines
                .iter()
                .zip(&other.machines)
                .all(|(a, b)| match (a, b) {
                    (None, None) => true,
                    (Some(a), Some(b)) => Arc::ptr_eq(a, b) || a == b,
                    _ => false,
                })
    }
}

impl Clone for Config {
    fn clone(&self) -> Config {
        Config {
            machines: self.machines.clone(),
            digests: self.digests.clone(),
            acc: self.acc,
            len_acc: self.len_acc,
            dirty: self.dirty,
            uninterned: self.uninterned,
            scratch: Vec::new(),
        }
    }

    /// Allocation-reusing clone for the successor hot path: slot arcs
    /// already shared with `src` are left untouched (no refcount
    /// traffic), and the spare vectors keep their buffers. Combined
    /// with successor recycling in the checker this makes cloning a
    /// candidate configuration allocation-free in the steady state.
    fn clone_from(&mut self, src: &Config) {
        let n = src.machines.len();
        self.machines.truncate(n);
        for (dst, s) in self.machines.iter_mut().zip(&src.machines) {
            match (&*dst, s) {
                (Some(a), Some(b)) if Arc::ptr_eq(a, b) => {}
                (None, None) => {}
                _ => *dst = s.clone(),
            }
        }
        for s in &src.machines[self.machines.len()..] {
            self.machines.push(s.clone());
        }
        self.digests.clear();
        self.digests.extend_from_slice(&src.digests);
        self.acc = src.acc;
        self.len_acc = src.len_acc;
        self.dirty = src.dirty;
        self.uninterned = src.uninterned;
    }
}

/// A uniquely-owned deep copy of runner slot `b`: reuses `have` when it
/// is already sole-owned, else a harvested spare buffer, else falls back
/// to sharing `b` (the run's `Arc::make_mut` will unshare it).
fn primed_slot(
    have: Option<Arc<MachineState>>,
    b: &Arc<MachineState>,
    spares: &mut Vec<Arc<MachineState>>,
) -> Arc<MachineState> {
    let owned = match have {
        Some(a) if Arc::strong_count(&a) == 1 && Arc::weak_count(&a) == 0 => Some(a),
        _ => spares.pop(),
    };
    match owned {
        Some(mut a) => match Arc::get_mut(&mut a) {
            Some(slot) => {
                slot.clone_from(b);
                a
            }
            // Unreachable per the pool invariant (only sole-owned arcs
            // are harvested), but sharing is always a sound fallback.
            None => Arc::clone(b),
        },
        None => Arc::clone(b),
    }
}

/// Makes `arc` uniquely owned, deep-copying into a spare buffer from
/// `scratch` when one is available (the pool-backed equivalent of
/// `Arc::make_mut`). The deep copy still happens — it is the semantics
/// of copy-on-write — but its vector allocations are recycled.
fn unshare_slot<'a>(
    arc: &'a mut Arc<MachineState>,
    scratch: &mut Vec<Arc<MachineState>>,
) -> &'a mut MachineState {
    if Arc::strong_count(arc) != 1 || Arc::weak_count(arc) != 0 {
        let spare = scratch.pop().and_then(|mut s| {
            Arc::get_mut(&mut s)?.clone_from(&**arc);
            Some(s)
        });
        *arc = spare.unwrap_or_else(|| Arc::new((**arc).clone()));
    }
    Arc::get_mut(arc).expect("unshared above")
}

impl Config {
    /// [`Clone::clone_from`], plus: the slot of the machine about to
    /// run is *deep-copied* into a uniquely-owned allocation — one
    /// already in place, or one popped from `spares` (machine buffers
    /// harvested from retired candidates, see
    /// [`Config::harvest_unique_slots`]) — instead of being re-shared
    /// with `src`. The run's own copy-on-write unsharing
    /// (`Arc::make_mut`) then finds the slot already unique and copies
    /// nothing; the recycled machine's vectors are reused via
    /// [`MachineState::clone_from`]. Only the runner slot is treated
    /// this way: deep-copying untouched slots would just break their
    /// sharing with `src`.
    pub fn prepare_candidate(
        &mut self,
        src: &Config,
        runner: MachineId,
        spares: &mut Vec<Arc<MachineState>>,
    ) {
        let r = runner.0 as usize;
        self.machines.truncate(src.machines.len());
        for i in 0..self.machines.len() {
            let s = &src.machines[i];
            let dst = &mut self.machines[i];
            match (dst.take(), s) {
                (have, Some(b)) if i == r => *dst = Some(primed_slot(have, b, spares)),
                (Some(a), Some(b)) if Arc::ptr_eq(&a, b) => *dst = Some(a),
                (_, s) => *dst = s.clone(),
            }
        }
        for i in self.machines.len()..src.machines.len() {
            let s = &src.machines[i];
            self.machines.push(match s {
                Some(b) if i == r => Some(primed_slot(None, b, spares)),
                s => s.clone(),
            });
        }
        self.digests.clear();
        self.digests.extend_from_slice(&src.digests);
        self.acc = src.acc;
        self.len_acc = src.len_acc;
        self.dirty = src.dirty;
        self.uninterned = src.uninterned;
        // Donate a couple of spares to the candidate's scratch pool so
        // in-run copy-on-write unshares (sends mutating a non-runner
        // machine) also reuse retired buffers instead of allocating.
        while self.scratch.len() < 2 {
            match spares.pop() {
                Some(s) => self.scratch.push(s),
                None => break,
            }
        }
    }

    /// Moves this configuration's uniquely-owned machine buffers into
    /// `pool` (up to `cap` entries) so
    /// [`Config::prepare_candidate`] can reuse their allocations for
    /// the next candidate's runner slot. Called on retired candidates
    /// by the checker's successor arena; the harvested slots are left
    /// empty, which is fine because a pooled configuration is always
    /// re-primed wholesale before its next use.
    pub fn harvest_unique_slots(&mut self, pool: &mut Vec<Arc<MachineState>>, cap: usize) {
        while pool.len() < cap {
            match self.scratch.pop() {
                Some(s) => pool.push(s),
                None => break,
            }
        }
        for slot in &mut self.machines {
            if pool.len() >= cap {
                return;
            }
            if let Some(arc) = slot {
                if Arc::get_mut(arc).is_some() {
                    pool.push(slot.take().expect("slot checked live above"));
                }
            }
        }
    }

    /// Allocates a fresh machine of type `ty` with ⊥-initialized locals,
    /// an initial frame, and the init state's entry statement as its
    /// continuation. Returns the new id.
    pub fn allocate(&mut self, program: &LoweredProgram, ty: MachineTypeId) -> MachineId {
        let mt = program.machine(ty);
        let n_events = program.event_count();
        let init = mt.init_state();
        let entry = mt.states[init.0 as usize].entry;
        let state = MachineState {
            ty,
            stack: vec![Frame::initial(init, n_events)],
            locals: vec![Value::Null; mt.vars.len()],
            msg: Value::Null,
            arg: Value::Null,
            cont: vec![Instr::Stmt(entry)],
            pending: None,
            queue: Vec::new(),
        };
        self.machines.push(Some(Arc::new(state)));
        self.digests.push(None);
        self.dirty.push(self.machines.len() - 1);
        MachineId((self.machines.len() - 1) as u32)
    }

    /// Drops slot `i`'s cached digest, subtracting its term from the
    /// running fold and queueing it for recomputation. No-op when the
    /// slot is already dirty.
    fn invalidate_slot(&mut self, i: usize) {
        if let Some((h, len)) = self.digests[i].take() {
            self.acc = self.acc.wrapping_sub(slot_term(i, h));
            self.len_acc -= 1 + len as usize;
            self.dirty.push(i);
        }
    }

    /// Total machines ever created (including deleted ones).
    pub fn created_count(&self) -> usize {
        self.machines.len()
    }

    /// Ids of machines that are still alive.
    pub fn live_ids(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_some())
            .map(|(i, _)| MachineId(i as u32))
    }

    /// Looks up a live machine.
    pub fn machine(&self, id: MachineId) -> Option<&MachineState> {
        self.machines.get(id.0 as usize).and_then(|m| m.as_deref())
    }

    /// The shared handle behind machine `id`'s slot, if live. Interned
    /// configurations ([`Config::intern_slots`]) make slot pointer
    /// identity meaningful, so callers can use `Arc::ptr_eq` as a cheap
    /// same-content test before comparing states structurally.
    pub fn machine_arc(&self, id: MachineId) -> Option<&Arc<MachineState>> {
        self.machines.get(id.0 as usize)?.as_ref()
    }

    /// Mutable lookup of a live machine. Copy-on-write: if the machine is
    /// shared with another configuration (a search sibling), only this
    /// one machine is cloned — everything else stays shared. The slot's
    /// cached digest is invalidated.
    pub fn machine_mut(&mut self, id: MachineId) -> Option<&mut MachineState> {
        let i = id.0 as usize;
        if self.machines.get(i)?.is_none() {
            return None;
        }
        self.invalidate_slot(i);
        let (machines, scratch) = (&mut self.machines, &mut self.scratch);
        let slot = machines[i].as_mut().expect("checked live above");
        Some(unshare_slot(slot, scratch))
    }

    /// Pool-backed `Arc::make_mut`: unshares `arc` using this
    /// configuration's scratch buffers so a copy-on-write on the hot
    /// path reuses a retired machine's allocations instead of
    /// allocating afresh. Used by [`crate::Engine::run_machine`] on the
    /// taken runner slot.
    pub(crate) fn cow_unshare<'a>(
        &mut self,
        arc: &'a mut Arc<MachineState>,
    ) -> &'a mut MachineState {
        unshare_slot(arc, &mut self.scratch)
    }

    /// Takes machine `id` out of its slot for the duration of an atomic
    /// run, leaving a temporary tombstone and invalidating the cached
    /// digest. [`Engine::run_machine`] pairs this with
    /// [`Config::restore_machine`] so the interpreter's small-step loop
    /// works on a direct `&mut MachineState` instead of re-resolving the
    /// slot (bounds check, liveness check, `Arc::make_mut`) on every
    /// step. While taken, the running machine is invisible to slot
    /// lookups — the interpreter special-cases self-sends.
    pub(crate) fn take_machine(&mut self, id: MachineId) -> Option<Arc<MachineState>> {
        let i = id.0 as usize;
        if self.machines.get(i)?.is_none() {
            return None;
        }
        self.invalidate_slot(i);
        self.machines[i].take()
    }

    /// Puts a machine taken with [`Config::take_machine`] back into its
    /// slot. The digest stays invalidated — the run mutated the state.
    pub(crate) fn restore_machine(&mut self, id: MachineId, state: Arc<MachineState>) {
        let i = id.0 as usize;
        // The slot's digest was invalidated by `take_machine`, but a
        // digest query in between may have cached the tombstone entry.
        self.invalidate_slot(i);
        self.machines[i] = Some(state);
    }

    /// Removes machine `id` (the `delete` statement). Its slot stays
    /// reserved so later sends to it are errors.
    pub fn delete(&mut self, id: MachineId) {
        let i = id.0 as usize;
        if self.machines.get(i).is_some() {
            self.invalidate_slot(i);
            self.machines[i] = None;
        }
    }

    /// Whether machine `id` can take a step: it is live and is either
    /// mid-execution, holding a raised event, or has a dequeuable event in
    /// its queue (the `en(m)` predicate of §3.2).
    pub fn enabled(&self, id: MachineId, program: &LoweredProgram) -> bool {
        let Some(m) = self.machine(id) else {
            return false;
        };
        if !m.cont.is_empty() || m.pending.is_some() {
            return true;
        }
        self.dequeuable_index(m, program).is_some()
    }

    /// The queue index of the first event machine `m` could dequeue in its
    /// current state, following the DEQUEUE rule: skip events that are
    /// deferred (by the state or inherited) unless a transition or action
    /// of the current state handles them.
    pub fn dequeuable_index(&self, m: &MachineState, program: &LoweredProgram) -> Option<usize> {
        let mt = program.machine(m.ty);
        let frame = m.top();
        let state = &mt.states[frame.state.0 as usize];
        m.queue.iter().position(|&(e, _)| {
            let i = e.0 as usize;
            // t: handled directly by the current state.
            if state.handles(e) {
                return true;
            }
            // d': deferred here or inherited as deferred.
            let deferred = state.deferred.contains(e) || frame.inherited[i] == Inherited::Deferred;
            !deferred
        })
    }

    /// Serializes the configuration to a canonical byte string for
    /// explicit-state deduplication.
    ///
    /// # Stability contract
    ///
    /// The checker fingerprints this encoding and shares the
    /// fingerprints across worker threads, so the encoding must be a
    /// pure function of the configuration's semantic content:
    ///
    /// * **injective** — semantically distinct configurations (machine
    ///   states, locals, queue contents *and order*, call stacks) must
    ///   encode to distinct byte strings, and equal configurations to
    ///   equal byte strings;
    /// * **deterministic** — independent of thread, process, iteration
    ///   order of any internal map, or allocation history beyond the
    ///   machine-id space itself.
    ///
    /// Changing the encoding is safe (fingerprints are never persisted
    /// across runs) but breaking either property silently unsounds the
    /// visited-set deduplication in every exploration strategy.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&(self.machines.len() as u32).to_le_bytes());
        for m in &self.machines {
            match m {
                None => out.push(0),
                Some(state) => {
                    out.push(1);
                    state.encode(&mut out);
                }
            }
        }
        out
    }

    /// Inverse of [`Config::canonical_bytes`]: rebuilds a configuration
    /// from its canonical encoding. `n_events` is the program's event
    /// count (the inherited handler maps are encoded without a length
    /// prefix). Malformed input yields a [`ConfigDecodeError`] naming
    /// what was wrong, so checkpoint and spill-store corruption is
    /// reported with a cause.
    ///
    /// This is what makes checkpoints possible: a frontier
    /// configuration persisted as its canonical bytes decodes to a
    /// `Config` that is `==` to — and produces the same digest as — the
    /// original. The digest cache starts cold and refills lazily.
    pub fn from_canonical_bytes(
        bytes: &[u8],
        n_events: usize,
    ) -> Result<Config, ConfigDecodeError> {
        let mut buf = bytes;
        let truncated = |buf: &[u8]| ConfigDecodeError::Truncated {
            offset: bytes.len() - buf.len(),
        };
        let count = wire::read_u32(&mut buf).ok_or(truncated(buf))? as usize;
        let mut machines = Vec::new();
        for slot in 0..count {
            let tag = wire::read_u8(&mut buf).ok_or(truncated(buf))?;
            machines.push(match tag {
                0 => None,
                1 => Some(Arc::new(
                    MachineState::decode(&mut buf, n_events)
                        .ok_or(ConfigDecodeError::BadMachine { slot })?,
                )),
                tag => return Err(ConfigDecodeError::BadSlotTag { slot, tag }),
            });
        }
        if !buf.is_empty() {
            return Err(ConfigDecodeError::TrailingBytes { extra: buf.len() });
        }
        Ok(Config::from_machines(machines))
    }

    /// A configuration over `machines` with a cold digest cache (every
    /// slot dirty).
    fn from_machines(machines: Vec<Option<Arc<MachineState>>>) -> Config {
        let mut dirty = SlotList::default();
        dirty.mark_all();
        let mut uninterned = SlotList::default();
        uninterned.mark_all();
        Config {
            digests: vec![None; machines.len()],
            machines,
            acc: 0,
            len_acc: 0,
            dirty,
            uninterned,
            scratch: Vec::new(),
        }
    }

    /// The slot digest and encoded length of slot `i`, computed from
    /// scratch. Tombstones contribute the fixed [`TOMBSTONE_DIGEST`] so
    /// a deleted slot is distinguished from every live one, and so the
    /// cached entry alone determines the slot's fold term.
    fn slot_digest(slot: &Option<Arc<MachineState>>) -> (u128, u32) {
        match slot {
            None => (TOMBSTONE_DIGEST, 0),
            Some(state) => SLOT_SCRATCH.with(|buf| {
                let mut bytes = buf.borrow_mut();
                bytes.clear();
                bytes.push(1);
                state.encode(&mut bytes);
                (fingerprint128_fast(&bytes), (bytes.len() - 1) as u32)
            }),
        }
    }

    /// Fills every missing entry of the digest cache and folds the new
    /// terms into the running accumulators. Cost is proportional to the
    /// number of slots *dirtied* since the last fill (typically one),
    /// not to the configuration size — the dirty list remembers exactly
    /// which slots were invalidated, falling back to a full scan only
    /// when it overflows or the cache starts cold.
    fn fill_digests(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        if self.dirty.all {
            for i in 0..self.machines.len() {
                self.fill_slot(i);
            }
        } else {
            let list = self.dirty;
            for &i in list.indices() {
                self.fill_slot(i as usize);
            }
        }
        self.dirty.clear();
    }

    /// Digests slot `i` if its cache entry is missing, adding its term
    /// to the digest/length accumulators and remembering it as a
    /// candidate for interning.
    fn fill_slot(&mut self, i: usize) {
        if self.digests[i].is_some() {
            return;
        }
        let entry = Config::slot_digest(&self.machines[i]);
        self.digests[i] = Some(entry);
        self.acc = self.acc.wrapping_add(slot_term(i, entry.0));
        self.len_acc += 1 + entry.1 as usize;
        if self.machines[i].is_some() {
            self.uninterned.push(i);
        }
    }

    /// Combines per-slot digests into the global one: a position-
    /// weighted *linear* fold, `acc = Σᵢ mix(hᵢ)·wᵢ (mod 2¹²⁸)`,
    /// finalized with the slot count and an avalanche.
    ///
    /// Linearity is the point — it is what makes the fold maintainable
    /// in O(1) per mutation ([`Config::invalidate_slot`] subtracts the
    /// old term, [`Config::fill_slot`] adds the new one), where the old
    /// polynomial fold's weights `P^(n-1-i)` depended on the slot count
    /// and forced an O(n) re-fold per digest query. Position
    /// sensitivity survives because each slot index gets its own odd
    /// (hence invertible mod 2¹²⁸) weight `wᵢ`: two same-length digest
    /// sequences collide only when the weighted difference vanishes,
    /// which for already-avalanched SipHash slot terms is the same
    /// ~2⁻¹²⁸ event as a direct hash collision. Tombstones fold a fixed
    /// tag digest so a deleted slot is distinguished from every live
    /// one, and the count term separates sequences of different
    /// lengths.
    pub(crate) fn combine_digests(
        digests: impl Iterator<Item = (bool, u128)>,
        count: usize,
    ) -> u128 {
        let mut acc = 0u128;
        for (i, (live, digest)) in digests.enumerate() {
            let h = if live { digest } else { TOMBSTONE_DIGEST };
            acc = acc.wrapping_add(slot_term(i, h));
        }
        finalize_digest(acc, count)
    }

    /// The configuration's 128-bit state digest, computed incrementally:
    /// only machines mutated since the last call are re-encoded and
    /// re-hashed; untouched machines reuse their cached digests.
    ///
    /// The digest obeys the same stability contract as
    /// [`Config::canonical_bytes`] — equal for equal configurations,
    /// distinct for distinct ones (up to 128-bit hash collisions),
    /// deterministic across threads, runs and processes.
    pub fn digest(&mut self) -> u128 {
        self.digest_and_len().0
    }

    /// [`Config::digest`] and [`Config::encoded_len`] straight from the
    /// maintained accumulators — the explorers need both per
    /// transition, and after the O(#dirty) fill this is O(1) regardless
    /// of configuration size.
    pub fn digest_and_len(&mut self) -> (u128, usize) {
        self.fill_digests();
        (
            finalize_digest(self.acc, self.machines.len()),
            4 + self.len_acc,
        )
    }

    /// The digest computed entirely from scratch, ignoring (and not
    /// touching) the cache. Used by tests and debug assertions to prove
    /// the incremental path agrees with a cold recomputation.
    pub fn digest_uncached(&self) -> u128 {
        Config::combine_digests(
            self.machines
                .iter()
                .map(|m| (m.is_some(), Config::slot_digest(m).0)),
            self.machines.len(),
        )
    }

    /// The length of [`Config::canonical_bytes`] without materializing
    /// it, from the same per-slot cache as [`Config::digest`]. The
    /// checker accounts this as the stored-bytes statistic (the memory
    /// column of Figure 8).
    pub fn encoded_len(&mut self) -> usize {
        self.fill_digests();
        4 + self.len_acc
    }

    /// The raw slot vector alongside the (filled) per-slot digest cache,
    /// for the canonicalization layer: canonical renumbering keys its
    /// per-slot memo by the concrete slot digest, so it wants both in
    /// one borrow.
    #[allow(clippy::type_complexity)]
    pub(crate) fn slots_and_digests(
        &mut self,
    ) -> (&[Option<Arc<MachineState>>], &[Option<(u128, u32)>]) {
        self.fill_digests();
        (&self.machines, &self.digests)
    }

    /// Relabels machine ids through the bijection `perm` (`perm[i]` is
    /// the new slot index of old slot `i`): slot contents move to their
    /// new indices and every `Value::Machine` reference stored in any
    /// machine is rewritten through `perm`. The caller must pass a
    /// permutation of `0..created_count()` that is *type-preserving* on
    /// live slots and fixes tombstones, or the result is not
    /// behaviorally equivalent.
    ///
    /// This is the specification the symmetry-reduced fingerprint is
    /// tested against: `canonical_digest` must be invariant under every
    /// such relabeling.
    pub fn apply_permutation(&self, perm: &[u32]) -> Config {
        assert_eq!(perm.len(), self.machines.len(), "permutation arity");
        let mut machines: Vec<Option<Arc<MachineState>>> = vec![None; self.machines.len()];
        for (i, slot) in self.machines.iter().enumerate() {
            let Some(state) = slot else {
                assert_eq!(perm[i] as usize, i, "tombstones must stay fixed");
                continue;
            };
            let mut renamed = MachineState::clone(state);
            let rewrite = |v: &mut Value| {
                if let Value::Machine(m) = v {
                    *m = MachineId(perm[m.0 as usize]);
                }
            };
            renamed.locals.iter_mut().for_each(rewrite);
            rewrite(&mut renamed.msg);
            rewrite(&mut renamed.arg);
            if let Some((_, v)) = &mut renamed.pending {
                rewrite(v);
            }
            for (_, v) in &mut renamed.queue {
                rewrite(v);
            }
            let target = &mut machines[perm[i] as usize];
            assert!(target.is_none(), "perm is not a bijection");
            *target = Some(Arc::new(renamed));
        }
        Config::from_machines(machines)
    }

    /// Offers every not-yet-interned live slot to `interner`, replacing
    /// this configuration's `Arc`s with the table's canonical ones, and
    /// returns the configuration's *marginal* stored size: the encoding
    /// overhead (count word plus one tag byte per slot) plus the
    /// encoded lengths of only those slots this call newly inserted
    /// into the table. Slots already interned — by an ancestor, a
    /// sibling, or any other configuration sharing the table — count
    /// zero, so summing the return value over all admitted states
    /// counts each distinct machine state once.
    ///
    /// Call this only for configurations the visited set *admitted*:
    /// interning rejected candidates would replace their uniquely-owned
    /// slots with shared ones and defeat the successor buffer-reuse
    /// path.
    pub fn intern_slots(&mut self, interner: &mut SlotInterner) -> usize {
        self.fill_digests();
        let mut fresh = 4 + self.machines.len();
        let list = self.uninterned;
        if list.all {
            for i in 0..self.machines.len() {
                fresh += self.intern_slot(i, interner);
            }
        } else {
            for &i in list.indices() {
                fresh += self.intern_slot(i as usize, interner);
            }
        }
        self.uninterned.clear();
        fresh
    }

    /// Interns slot `i` (live, digest cached), returning the bytes
    /// newly added to the table.
    fn intern_slot(&mut self, i: usize, interner: &mut SlotInterner) -> usize {
        let Some(state) = &mut self.machines[i] else {
            return 0;
        };
        let (digest, len) = self.digests[i].expect("cache filled");
        let (fresh, displaced) = interner.intern(digest, state);
        if let Some(old) = displaced {
            // Keep the displaced buffer (usually this candidate's own
            // fresh copy) as a scratch spare: interned slots are never
            // uniquely owned, so the drop-time harvest can no longer
            // recover buffers from explored configurations.
            if self.scratch.len() < 2 && Arc::strong_count(&old) == 1 && Arc::weak_count(&old) == 0
            {
                self.scratch.push(old);
            }
        }
        if fresh {
            len as usize
        } else {
            0
        }
    }
}

/// Hash-consing table for machine slots: maps a slot's 128-bit content
/// digest to the one shared [`Arc<MachineState>`] every admitted
/// configuration with that slot content points at. Sharing identical
/// slots across configurations cuts resident state memory (each
/// distinct machine state is stored once) and makes untouched-slot
/// clones and comparisons pointer-cheap.
///
/// Keyed by digest alone — the same ~2⁻¹²⁸ collision assumption the
/// visited set already makes for whole configurations. The key is
/// already a SipHash output, so the map hashes it by truncation
/// (identity hashing).
///
/// One table per exploration engine (per worker, in parallel mode):
/// the table is not synchronized, and per-worker tables keep the
/// admission hot path lock-free at the cost of some cross-worker
/// duplication in the byte accounting.
#[derive(Debug)]
pub struct SlotInterner {
    table: HashMap<u128, Arc<MachineState>, BuildDigestHasher>,
    /// Entry cap: beyond this the table stops growing (lookups still
    /// hit) so a pathological state space cannot turn the interner
    /// itself into the memory problem it exists to solve.
    cap: usize,
}

impl Default for SlotInterner {
    fn default() -> SlotInterner {
        SlotInterner::new()
    }
}

impl SlotInterner {
    /// Default entry cap (~48 MiB of table at worst, ignoring the
    /// interned states themselves, which the visited set accounts).
    const DEFAULT_CAP: usize = 1 << 20;

    /// An empty table with the default capacity limit.
    pub fn new() -> SlotInterner {
        SlotInterner {
            table: HashMap::default(),
            cap: SlotInterner::DEFAULT_CAP,
        }
    }

    /// A table that refuses to grow past `cap` entries.
    pub fn with_capacity_limit(cap: usize) -> SlotInterner {
        SlotInterner {
            table: HashMap::default(),
            cap,
        }
    }

    /// Interns `state` by content digest in one table probe. On a hit,
    /// repoints `state` at the canonical `Arc` and returns the
    /// displaced handle; on a miss, stores a clone of `state` (capacity
    /// permitting — at the cap the state simply stays unshared).
    /// Returns `(fresh, displaced)`: `fresh` is true iff the content
    /// was not in the table, i.e. its bytes are newly accounted.
    fn intern(
        &mut self,
        digest: u128,
        state: &mut Arc<MachineState>,
    ) -> (bool, Option<Arc<MachineState>>) {
        let full = self.table.len() >= self.cap;
        match self.table.entry(digest) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                if Arc::ptr_eq(state, entry.get()) {
                    (false, None)
                } else {
                    (
                        false,
                        Some(std::mem::replace(state, Arc::clone(entry.get()))),
                    )
                }
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                if !full {
                    entry.insert(Arc::clone(state));
                }
                (true, None)
            }
        }
    }

    /// Number of distinct machine states currently interned.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no machine state has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Identity hasher for digest keys: slot digests are SipHash outputs,
/// already uniform, so the map key hashes by truncating to the low 64
/// bits instead of re-hashing 16 bytes.
#[derive(Debug, Default, Clone)]
struct DigestHasher(u64);

impl std::hash::Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // u128 keys arrive as one 16-byte write; take the low word.
        let mut lo = [0u8; 8];
        let n = bytes.len().min(8);
        lo[..n].copy_from_slice(&bytes[..n]);
        self.0 = u64::from_le_bytes(lo);
    }

    fn write_u128(&mut self, v: u128) {
        self.0 = v as u64;
    }
}

type BuildDigestHasher = std::hash::BuildHasherDefault<DigestHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use p_ast::{ProgramBuilder, Ty};

    fn tiny_program() -> LoweredProgram {
        let mut b = ProgramBuilder::new();
        b.event("e");
        b.event_with("d", Ty::Int);
        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        m.state("A").defer(&["d"]);
        m.state("B");
        m.step("A", "e", "B");
        m.finish();
        lower(&b.finish("M")).unwrap()
    }

    #[test]
    fn allocate_sets_up_initial_machine() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        let m = c.machine(id).unwrap();
        assert_eq!(m.stack.len(), 1);
        assert_eq!(m.current_state(), StateId(0));
        assert_eq!(m.locals, vec![Value::Null]);
        assert_eq!(m.cont.len(), 1);
        assert!(m.queue.is_empty());
    }

    #[test]
    fn enqueue_deduplicates_identical_pairs() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        let m = c.machine_mut(id).unwrap();
        let e = EventId(0);
        assert!(m.enqueue(e, Value::Null));
        assert!(!m.enqueue(e, Value::Null));
        // Same event with a different payload is a distinct pair.
        assert!(m.enqueue(e, Value::Int(1)));
        assert!(m.enqueue(e, Value::Int(2)));
        assert!(!m.enqueue(e, Value::Int(1)));
        assert_eq!(m.queue.len(), 3);
    }

    #[test]
    fn delete_leaves_tombstone() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        c.delete(id);
        assert!(c.machine(id).is_none());
        assert_eq!(c.created_count(), 1);
        assert_eq!(c.live_ids().count(), 0);
        // A new allocation gets a fresh id, not the tombstone's.
        let id2 = c.allocate(&p, p.main);
        assert_ne!(id, id2);
    }

    #[test]
    fn dequeue_skips_deferred_events() {
        let p = tiny_program();
        let d = p.event_id_named("d").unwrap();
        let e = p.event_id_named("e").unwrap();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        {
            let m = c.machine_mut(id).unwrap();
            m.cont.clear(); // pretend entry finished
            m.enqueue(d, Value::Int(1));
            m.enqueue(e, Value::Null);
        }
        let m = c.machine(id).unwrap();
        // `d` is deferred in state A, `e` has a transition: index 1.
        assert_eq!(c.dequeuable_index(m, &p), Some(1));
    }

    #[test]
    fn enabled_accounts_for_queue_and_cont() {
        let p = tiny_program();
        let d = p.event_id_named("d").unwrap();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        assert!(c.enabled(id, &p)); // entry statement still to run
        c.machine_mut(id).unwrap().cont.clear();
        assert!(!c.enabled(id, &p)); // empty queue
        c.machine_mut(id).unwrap().enqueue(d, Value::Null);
        assert!(!c.enabled(id, &p)); // only a deferred event queued
    }

    #[test]
    fn canonical_bytes_distinguish_configs() {
        let p = tiny_program();
        let mut c1 = Config::default();
        let id = c1.allocate(&p, p.main);
        let mut c2 = c1.clone();
        assert_eq!(c1.canonical_bytes(), c2.canonical_bytes());
        c2.machine_mut(id).unwrap().locals[0] = Value::Int(3);
        assert_ne!(c1.canonical_bytes(), c2.canonical_bytes());
    }

    /// The stability contract: queue *order* is semantic content (FIFO
    /// dequeue), so two configurations differing only in the order of
    /// queued events must encode differently — and re-encoding the same
    /// configuration is bit-identical.
    #[test]
    fn canonical_bytes_distinguish_queue_order() {
        let p = tiny_program();
        let mut c1 = Config::default();
        let id = c1.allocate(&p, p.main);
        let mut c2 = c1.clone();
        c1.machine_mut(id).unwrap().enqueue(EventId(0), Value::Null);
        c1.machine_mut(id)
            .unwrap()
            .enqueue(EventId(1), Value::Int(1));
        c2.machine_mut(id)
            .unwrap()
            .enqueue(EventId(1), Value::Int(1));
        c2.machine_mut(id).unwrap().enqueue(EventId(0), Value::Null);
        assert_ne!(c1.canonical_bytes(), c2.canonical_bytes());
        assert_eq!(c1.canonical_bytes(), c1.canonical_bytes());
        assert_eq!(c1.canonical_bytes(), c1.clone().canonical_bytes());
    }

    /// The incremental digest must agree with a cold recomputation at
    /// every point of a mutate/clone/delete history, and distinguish the
    /// same configurations the canonical encoding distinguishes.
    #[test]
    fn digest_incremental_matches_uncached() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        assert_eq!(c.digest(), c.digest_uncached());

        // A branch clone shares machines; mutating one branch must not
        // disturb the other (copy-on-write) and both digests must track.
        let mut branch = c.clone();
        branch.machine_mut(id).unwrap().locals[0] = Value::Int(7);
        assert_eq!(branch.digest(), branch.digest_uncached());
        assert_eq!(c.digest(), c.digest_uncached());
        assert_ne!(c.digest(), branch.digest());
        assert_eq!(c.machine(id).unwrap().locals[0], Value::Null);

        // Enqueue through the cache-invalidating accessor.
        c.machine_mut(id).unwrap().enqueue(EventId(0), Value::Null);
        assert_eq!(c.digest(), c.digest_uncached());

        // Allocation and deletion both reshape the slot vector.
        let id2 = c.allocate(&p, p.main);
        assert_eq!(c.digest(), c.digest_uncached());
        c.delete(id2);
        assert_eq!(c.digest(), c.digest_uncached());

        // A tombstone is not the same as the machine never existing.
        let mut fresh = Config::default();
        fresh.allocate(&p, p.main);
        fresh
            .machine_mut(MachineId(0))
            .unwrap()
            .enqueue(EventId(0), Value::Null);
        assert_ne!(c.digest(), fresh.digest());
    }

    /// Digest equality must coincide with canonical-encoding equality.
    #[test]
    fn digest_tracks_canonical_bytes() {
        let p = tiny_program();
        let mut c1 = Config::default();
        let id = c1.allocate(&p, p.main);
        let mut c2 = c1.clone();
        assert_eq!(c1.digest(), c2.digest());
        c2.machine_mut(id).unwrap().locals[0] = Value::Int(3);
        assert_ne!(c1.canonical_bytes(), c2.canonical_bytes());
        assert_ne!(c1.digest(), c2.digest());
    }

    /// `encoded_len` equals the materialized canonical encoding's length
    /// (the stored-bytes statistic must not drift from the old
    /// accounting).
    #[test]
    fn encoded_len_matches_canonical_bytes_len() {
        let p = tiny_program();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        assert_eq!(c.encoded_len(), c.canonical_bytes().len());
        c.machine_mut(id)
            .unwrap()
            .enqueue(EventId(1), Value::Int(4));
        c.allocate(&p, p.main);
        assert_eq!(c.encoded_len(), c.canonical_bytes().len());
        c.delete(id);
        assert_eq!(c.encoded_len(), c.canonical_bytes().len());
    }

    /// Checkpoint round trip: decoding the canonical encoding rebuilds
    /// an equal configuration with an equal digest — through mutation,
    /// deletion (tombstones), queued payloads, and a raised event.
    #[test]
    fn canonical_bytes_round_trip() {
        let p = tiny_program();
        let n_events = p.event_count();
        let mut c = Config::default();
        let id = c.allocate(&p, p.main);
        let id2 = c.allocate(&p, p.main);
        {
            let m = c.machine_mut(id).unwrap();
            m.locals[0] = Value::Machine(id2);
            m.enqueue(EventId(0), Value::Int(-9));
            m.enqueue(EventId(1), Value::Null);
            m.pending = Some((EventId(1), Value::Bool(true)));
        }
        c.delete(id2);
        let bytes = c.canonical_bytes();
        let back = Config::from_canonical_bytes(&bytes, n_events).expect("round trip");
        assert_eq!(back, c);
        assert_eq!(back.canonical_bytes(), bytes);
        let mut back = back;
        assert_eq!(back.digest(), c.digest());
    }

    /// Malformed inputs are rejected with a typed error naming the
    /// cause, never panicked on: truncation, trailing garbage, and a
    /// bad tag byte are each distinguished.
    #[test]
    fn from_canonical_bytes_rejects_malformed() {
        let p = tiny_program();
        let n_events = p.event_count();
        let mut c = Config::default();
        c.allocate(&p, p.main);
        let bytes = c.canonical_bytes();
        for cut in 0..bytes.len() {
            let err = Config::from_canonical_bytes(&bytes[..cut], n_events)
                .expect_err("truncation must be rejected");
            assert!(
                matches!(
                    err,
                    ConfigDecodeError::Truncated { .. } | ConfigDecodeError::BadMachine { .. }
                ),
                "truncation at {cut} gave {err}"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            Config::from_canonical_bytes(&trailing, n_events),
            Err(ConfigDecodeError::TrailingBytes { extra: 1 })
        ));
        let mut bad_tag = bytes.clone();
        bad_tag[4] = 7; // slot tag must be 0 or 1
        assert!(matches!(
            Config::from_canonical_bytes(&bad_tag, n_events),
            Err(ConfigDecodeError::BadSlotTag { slot: 0, tag: 7 })
        ));
        // A wrong event count misaligns the frame decode.
        assert!(Config::from_canonical_bytes(&bytes, n_events + 13).is_err());
        // Errors format with their position so corruption reports read.
        let err = Config::from_canonical_bytes(&bytes[..2], n_events).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    /// Interning admitted configurations shares identical slots behind
    /// one `Arc` and accounts each distinct machine state's bytes
    /// exactly once.
    #[test]
    fn intern_slots_shares_and_counts_once() {
        let p = tiny_program();
        let mut interner = SlotInterner::new();
        let mut a = Config::default();
        a.allocate(&p, p.main);
        a.allocate(&p, p.main);
        let overhead = 4 + a.machines.len();
        let slot_len: usize = a.canonical_bytes().len() - overhead;
        // Two freshly allocated machines are identical: one insert.
        let fresh_a = a.intern_slots(&mut interner);
        assert_eq!(interner.len(), 1);
        assert_eq!(fresh_a, overhead + slot_len / 2);
        assert!(Arc::ptr_eq(
            a.machines[0].as_ref().unwrap(),
            a.machines[1].as_ref().unwrap()
        ));
        // A second config with the same content adds only overhead.
        let mut b = Config::default();
        b.allocate(&p, p.main);
        b.allocate(&p, p.main);
        let fresh_b = b.intern_slots(&mut interner);
        assert_eq!(fresh_b, overhead);
        assert_eq!(interner.len(), 1);
        assert!(Arc::ptr_eq(
            a.machines[0].as_ref().unwrap(),
            b.machines[1].as_ref().unwrap()
        ));
        // Interning preserves digests and canonical bytes.
        assert_eq!(b.digest(), b.digest_uncached());
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        // A mutated slot is a new distinct state: its bytes are fresh.
        b.machine_mut(MachineId(0)).unwrap().locals[0] = Value::Int(77);
        let mutated_len = b.canonical_bytes().len() - overhead - slot_len / 2;
        let fresh_b2 = b.intern_slots(&mut interner);
        assert_eq!(fresh_b2, overhead + mutated_len);
        assert_eq!(interner.len(), 2);
        // Re-interning with nothing dirty adds only overhead again.
        assert_eq!(b.intern_slots(&mut interner), overhead);
    }

    /// The interner's capacity limit stops growth but keeps lookups
    /// serving, and a full table counts unshared bytes as fresh.
    #[test]
    fn intern_slots_respects_capacity_limit() {
        let p = tiny_program();
        let mut interner = SlotInterner::with_capacity_limit(1);
        let mut a = Config::default();
        a.allocate(&p, p.main);
        let overhead = 4 + 1;
        let slot_len = a.canonical_bytes().len() - overhead;
        assert_eq!(a.intern_slots(&mut interner), overhead + slot_len);
        assert_eq!(interner.len(), 1);
        // A distinct state cannot be inserted: counted fresh each time.
        let mut b = Config::default();
        let id = b.allocate(&p, p.main);
        b.machine_mut(id).unwrap().locals[0] = Value::Int(5);
        let b_len = b.canonical_bytes().len() - overhead;
        assert_eq!(b.intern_slots(&mut interner), overhead + b_len);
        assert_eq!(interner.len(), 1);
        // The existing entry still serves hits.
        let mut c = Config::default();
        c.allocate(&p, p.main);
        assert_eq!(c.intern_slots(&mut interner), overhead);
        assert!(Arc::ptr_eq(
            a.machines[0].as_ref().unwrap(),
            c.machines[0].as_ref().unwrap()
        ));
    }

    /// The digest cache must never leak into equality.
    #[test]
    fn equality_ignores_digest_cache() {
        let p = tiny_program();
        let mut a = Config::default();
        a.allocate(&p, p.main);
        let b = a.clone();
        let _ = a.digest(); // fill a's cache only
        assert_eq!(a, b);
    }
}
