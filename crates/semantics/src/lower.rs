//! Lowering from the surface AST to a dense, table-driven representation.
//!
//! The lowered form mirrors the data structures the P compiler generates
//! for execution (§4): events, machine types, variables and states become
//! dense indices; every state carries per-event transition, deferred and
//! action tables; statement and expression trees live in flat arenas and
//! are referenced by index, which makes machine configurations cheap to
//! clone and hash during model checking.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use p_ast::{
    BinOp, Expr, ExprKind, Interner, MachineDecl, Program, Stmt, StmtKind, Symbol, TransitionKind,
    Ty, UnOp,
};

/// Index of an event declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

/// Index of a machine type (declaration, not instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineTypeId(pub u32);

/// Index of a state within its machine type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

/// Index of a variable within its machine type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of an action within its machine type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u32);

/// Index of a foreign function within its machine type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId(pub u32);

/// Index of a lowered statement in the program's code arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// Index of a lowered expression in the program's code arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// A lowered expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LExpr {
    /// `this`
    This,
    /// `msg`
    Msg,
    /// `arg`
    Arg,
    /// ⊥
    Null,
    /// A boolean literal.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// A resolved local variable.
    Var(VarId),
    /// A resolved event literal.
    Event(EventId),
    /// Nondeterministic boolean choice.
    Nondet,
    /// Unary operation.
    Unary(UnOp, ExprId),
    /// Binary operation.
    Binary(BinOp, ExprId, ExprId),
    /// Foreign function call in expression position.
    Foreign(FnId, Vec<ExprId>),
}

/// A lowered statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LStmt {
    /// `skip;`
    Skip,
    /// `x := e;`
    Assign(VarId, ExprId),
    /// `x := new M(v1 = e1, ...);`
    New {
        /// Destination variable.
        dst: VarId,
        /// Created machine type.
        ty: MachineTypeId,
        /// Initializers, resolved against the created machine's variables.
        inits: Vec<(VarId, ExprId)>,
    },
    /// `delete;`
    Delete,
    /// `send(target, e, payload);`
    Send {
        /// Target machine expression.
        target: ExprId,
        /// Event sent.
        event: EventId,
        /// Payload, if any.
        payload: Option<ExprId>,
    },
    /// `raise(e, payload);`
    Raise {
        /// Event raised.
        event: EventId,
        /// Payload, if any.
        payload: Option<ExprId>,
    },
    /// `leave;`
    Leave,
    /// `return;`
    Return,
    /// `assert(e);`
    Assert(ExprId),
    /// `{ ... }`
    Block(Vec<StmtId>),
    /// `if (c) { .. } else { .. }`
    If {
        /// Condition.
        cond: ExprId,
        /// Then branch.
        then: StmtId,
        /// Else branch.
        els: StmtId,
    },
    /// `while (c) { .. }`
    While {
        /// Condition.
        cond: ExprId,
        /// Body.
        body: StmtId,
    },
    /// `call n;` — push `n` with a saved continuation.
    CallState(StateId),
    /// Foreign call for value or effect.
    Foreign {
        /// Destination variable, if the call's value is stored.
        dst: Option<VarId>,
        /// Callee.
        func: FnId,
        /// Arguments.
        args: Vec<ExprId>,
    },
}

/// Flat arenas holding all lowered code of a program.
#[derive(Debug, Clone, Default)]
pub struct Code {
    stmts: Vec<LStmt>,
    exprs: Vec<LExpr>,
}

impl Code {
    /// Adds a statement, returning its id.
    pub fn push_stmt(&mut self, s: LStmt) -> StmtId {
        self.stmts.push(s);
        StmtId((self.stmts.len() - 1) as u32)
    }

    /// Adds an expression, returning its id.
    pub fn push_expr(&mut self, e: LExpr) -> ExprId {
        self.exprs.push(e);
        ExprId((self.exprs.len() - 1) as u32)
    }

    /// Looks up a statement.
    pub fn stmt(&self, id: StmtId) -> &LStmt {
        &self.stmts[id.0 as usize]
    }

    /// Looks up an expression.
    pub fn expr(&self, id: ExprId) -> &LExpr {
        &self.exprs[id.0 as usize]
    }

    /// Number of statements in the arena.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Number of expressions in the arena.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }
}

/// A set of events, densely indexed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventSet {
    bits: Vec<u64>,
}

impl EventSet {
    /// An empty set sized for `n` events.
    pub fn with_capacity(n: usize) -> EventSet {
        EventSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts an event.
    pub fn insert(&mut self, e: EventId) {
        let i = e.0 as usize;
        if i / 64 >= self.bits.len() {
            self.bits.resize(i / 64 + 1, 0);
        }
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, e: EventId) -> bool {
        let i = e.0 as usize;
        i / 64 < self.bits.len() && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| EventId((w * 64 + b) as u32))
        })
    }
}

/// Event metadata.
#[derive(Debug, Clone)]
pub struct EventInfo {
    /// Source name.
    pub name: Symbol,
    /// Payload type.
    pub payload: Ty,
}

/// Variable metadata.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name.
    pub name: Symbol,
    /// Declared type.
    pub ty: Ty,
    /// Whether the variable is ghost.
    pub ghost: bool,
}

/// Action metadata.
#[derive(Debug, Clone)]
pub struct ActionInfo {
    /// Source name.
    pub name: Symbol,
    /// Body.
    pub body: StmtId,
}

/// Foreign function metadata.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Source name.
    pub name: Symbol,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// Lowered model body, when the declaration gives one (§3: an
    /// erasable "P body" interpreted during verification when no native
    /// implementation is registered).
    pub model: Option<ModelInfo>,
}

/// A lowered foreign-function model body.
///
/// The body executes over an extended local frame: the machine's locals
/// (read-only in well-checked programs), then one slot per parameter, then
/// the `result` slot.
#[derive(Debug, Clone, Copy)]
pub struct ModelInfo {
    /// The body statement.
    pub body: StmtId,
    /// Index of the first parameter slot (= the machine's variable count).
    pub param_base: u32,
    /// Number of parameters.
    pub param_count: u32,
    /// Index of the `result` slot (= `param_base + param_count`).
    pub result_slot: u32,
}

/// A state's lowered tables: per-event transition targets, deferred and
/// postponed sets, and entry/exit code. This is the analog of the per-state
/// table entry in the paper's generated C code.
#[derive(Debug, Clone)]
pub struct StateInfo {
    /// Source name.
    pub name: Symbol,
    /// Deferred events (`Deferred(m, n)`).
    pub deferred: EventSet,
    /// Postponed events (liveness annotation, §3.2).
    pub postponed: EventSet,
    /// Entry statement.
    pub entry: StmtId,
    /// Exit statement.
    pub exit: StmtId,
    /// `Step(m, n, e)` table, indexed by event.
    pub steps: Vec<Option<StateId>>,
    /// `Call(m, n, e)` table, indexed by event.
    pub calls: Vec<Option<StateId>>,
    /// `Action(m, n, e)` table, indexed by event.
    pub actions: Vec<Option<ActionId>>,
}

impl StateInfo {
    /// Whether event `e` has a step or call transition or a bound action in
    /// this state (the set `t` in the DEQUEUE rule).
    pub fn handles(&self, e: EventId) -> bool {
        let i = e.0 as usize;
        self.steps[i].is_some() || self.calls[i].is_some() || self.actions[i].is_some()
    }
}

/// A lowered machine type.
#[derive(Debug, Clone)]
pub struct MachineType {
    /// Source name.
    pub name: Symbol,
    /// Whether the machine is ghost.
    pub ghost: bool,
    /// Variables (locals), in declaration order.
    pub vars: Vec<VarInfo>,
    /// States; index 0 is the initial state.
    pub states: Vec<StateInfo>,
    /// Actions.
    pub actions: Vec<ActionInfo>,
    /// Foreign functions.
    pub foreign: Vec<FnInfo>,
}

impl MachineType {
    /// The initial state id.
    pub fn init_state(&self) -> StateId {
        StateId(0)
    }

    /// Looks up a state by source name.
    pub fn state_named(&self, name: Symbol) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId(i as u32))
    }

    /// Looks up a variable by source name.
    pub fn var_named(&self, name: Symbol) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }
}

/// A fully lowered program: the unit of execution for both the model
/// checker and the runtime.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// Events, densely indexed by [`EventId`].
    pub events: Vec<EventInfo>,
    /// Machine types, densely indexed by [`MachineTypeId`].
    pub machines: Vec<MachineType>,
    /// All statements and expressions.
    pub code: Code,
    /// The machine instantiated at start.
    pub main: MachineTypeId,
    /// Initializers for the main machine.
    pub main_inits: Vec<(VarId, ExprId)>,
    /// Identifier table (shared with the source program).
    pub interner: Interner,
}

impl LoweredProgram {
    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Machine type lookup.
    pub fn machine(&self, id: MachineTypeId) -> &MachineType {
        &self.machines[id.0 as usize]
    }

    /// Event lookup.
    pub fn event(&self, id: EventId) -> &EventInfo {
        &self.events[id.0 as usize]
    }

    /// Resolves an event id to its source name.
    pub fn event_name(&self, id: EventId) -> &str {
        self.interner.resolve(self.events[id.0 as usize].name)
    }

    /// Resolves a machine type id to its source name.
    pub fn machine_name(&self, id: MachineTypeId) -> &str {
        self.interner.resolve(self.machines[id.0 as usize].name)
    }

    /// Resolves a state to its source name.
    pub fn state_name(&self, m: MachineTypeId, s: StateId) -> &str {
        self.interner
            .resolve(self.machines[m.0 as usize].states[s.0 as usize].name)
    }

    /// Finds a machine type by its string name.
    pub fn machine_type_named(&self, name: &str) -> Option<MachineTypeId> {
        let sym = self.interner.get(name)?;
        self.machines
            .iter()
            .position(|m| m.name == sym)
            .map(|i| MachineTypeId(i as u32))
    }

    /// Finds an event by its string name.
    pub fn event_id_named(&self, name: &str) -> Option<EventId> {
        let sym = self.interner.get(name)?;
        self.events
            .iter()
            .position(|e| e.name == sym)
            .map(|i| EventId(i as u32))
    }
}

/// An error during lowering (dangling name, duplicate declaration).
///
/// `p-typecheck` produces friendlier diagnostics for the same defects;
/// lowering re-checks them so that it is safe on unchecked programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    message: String,
}

impl LowerError {
    fn new(message: String) -> LowerError {
        LowerError { message }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering failed: {}", self.message)
    }
}

impl Error for LowerError {}

/// Lowers a program to its dense executable form.
///
/// # Errors
///
/// Fails on unresolved names (events, machines, states, variables, actions
/// or foreign functions) and on duplicate transition sources — defects that
/// `p-typecheck` reports with source positions.
pub fn lower(program: &Program) -> Result<LoweredProgram, LowerError> {
    Lowering::new(program).run()
}

struct Lowering<'p> {
    program: &'p Program,
    code: Code,
    event_ids: HashMap<Symbol, EventId>,
    machine_ids: HashMap<Symbol, MachineTypeId>,
}

struct MachineCtx {
    vars: HashMap<Symbol, VarId>,
    fns: HashMap<Symbol, FnId>,
    states: HashMap<Symbol, StateId>,
}

impl<'p> Lowering<'p> {
    fn new(program: &'p Program) -> Lowering<'p> {
        Lowering {
            program,
            code: Code::default(),
            event_ids: HashMap::new(),
            machine_ids: HashMap::new(),
        }
    }

    fn err(&self, msg: String) -> LowerError {
        LowerError::new(msg)
    }

    fn name(&self, s: Symbol) -> &str {
        self.program.interner.resolve(s)
    }

    fn run(mut self) -> Result<LoweredProgram, LowerError> {
        for (i, ev) in self.program.events.iter().enumerate() {
            if self.event_ids.insert(ev.name, EventId(i as u32)).is_some() {
                return Err(self.err(format!("duplicate event `{}`", self.name(ev.name))));
            }
        }
        for (i, m) in self.program.machines.iter().enumerate() {
            if self
                .machine_ids
                .insert(m.name, MachineTypeId(i as u32))
                .is_some()
            {
                return Err(self.err(format!("duplicate machine `{}`", self.name(m.name))));
            }
        }

        let mut machines = Vec::with_capacity(self.program.machines.len());
        for decl in &self.program.machines {
            machines.push(self.lower_machine(decl)?);
        }

        let main = *self
            .machine_ids
            .get(&self.program.main.machine)
            .ok_or_else(|| {
                self.err(format!(
                    "main machine `{}` not declared",
                    self.name(self.program.main.machine)
                ))
            })?;
        // Main initializers are resolved against the main machine's
        // variables and evaluated in an empty context.
        let main_decl = &self.program.machines[main.0 as usize];
        let main_ctx = self.machine_ctx(main_decl)?;
        let mut main_inits = Vec::new();
        // The initializer expressions themselves may not reference any
        // machine context; lower them in the main machine's own context
        // (they are constants in well-typed programs).
        for init in &self.program.main.inits {
            let var = *main_ctx.vars.get(&init.var).ok_or_else(|| {
                self.err(format!(
                    "main initializer references unknown variable `{}`",
                    self.name(init.var)
                ))
            })?;
            let value = self.lower_expr(&init.value, &main_ctx)?;
            main_inits.push((var, value));
        }

        Ok(LoweredProgram {
            events: self
                .program
                .events
                .iter()
                .map(|e| EventInfo {
                    name: e.name,
                    payload: e.payload,
                })
                .collect(),
            machines,
            code: self.code,
            main,
            main_inits,
            interner: self.program.interner.clone(),
        })
    }

    fn machine_ctx(&self, decl: &MachineDecl) -> Result<MachineCtx, LowerError> {
        let mut vars = HashMap::new();
        for (i, v) in decl.vars.iter().enumerate() {
            if vars.insert(v.name, VarId(i as u32)).is_some() {
                return Err(self.err(format!(
                    "duplicate variable `{}` in machine `{}`",
                    self.name(v.name),
                    self.name(decl.name)
                )));
            }
        }
        let mut fns = HashMap::new();
        for (i, f) in decl.foreign.iter().enumerate() {
            if fns.insert(f.name, FnId(i as u32)).is_some() {
                return Err(self.err(format!(
                    "duplicate foreign function `{}` in machine `{}`",
                    self.name(f.name),
                    self.name(decl.name)
                )));
            }
        }
        let mut states = HashMap::new();
        for (i, s) in decl.states.iter().enumerate() {
            if states.insert(s.name, StateId(i as u32)).is_some() {
                return Err(self.err(format!(
                    "duplicate state `{}` in machine `{}`",
                    self.name(s.name),
                    self.name(decl.name)
                )));
            }
        }
        Ok(MachineCtx { vars, fns, states })
    }

    fn lower_machine(&mut self, decl: &MachineDecl) -> Result<MachineType, LowerError> {
        if decl.states.is_empty() {
            return Err(self.err(format!(
                "machine `{}` declares no states",
                self.name(decl.name)
            )));
        }
        let ctx = self.machine_ctx(decl)?;
        let n_events = self.program.events.len();

        let mut action_ids = HashMap::new();
        let mut actions = Vec::new();
        for (i, a) in decl.actions.iter().enumerate() {
            if action_ids.insert(a.name, ActionId(i as u32)).is_some() {
                return Err(self.err(format!(
                    "duplicate action `{}` in machine `{}`",
                    self.name(a.name),
                    self.name(decl.name)
                )));
            }
            let body = self.lower_stmt(&a.body, &ctx)?;
            actions.push(ActionInfo { name: a.name, body });
        }

        let mut states = Vec::new();
        for s in &decl.states {
            let mut deferred = EventSet::with_capacity(n_events);
            for &e in &s.deferred {
                deferred.insert(self.event_id(e)?);
            }
            let mut postponed = EventSet::with_capacity(n_events);
            for &e in &s.postponed {
                postponed.insert(self.event_id(e)?);
            }
            let entry = self.lower_stmt(&s.entry, &ctx)?;
            let exit = self.lower_stmt(&s.exit, &ctx)?;
            states.push(StateInfo {
                name: s.name,
                deferred,
                postponed,
                entry,
                exit,
                steps: vec![None; n_events],
                calls: vec![None; n_events],
                actions: vec![None; n_events],
            });
        }

        for t in &decl.transitions {
            let from = *ctx.states.get(&t.from).ok_or_else(|| {
                self.err(format!(
                    "transition from unknown state `{}`",
                    self.name(t.from)
                ))
            })?;
            let to = *ctx.states.get(&t.to).ok_or_else(|| {
                self.err(format!("transition to unknown state `{}`", self.name(t.to)))
            })?;
            let ev = self.event_id(t.event)?;
            let state = &mut states[from.0 as usize];
            let table = match t.kind {
                TransitionKind::Step => &mut state.steps,
                TransitionKind::Call => &mut state.calls,
            };
            let slot = &mut table[ev.0 as usize];
            if slot.is_some() {
                return Err(self.err(format!(
                    "nondeterministic transitions from state `{}` on event `{}`",
                    self.name(t.from),
                    self.name(t.event)
                )));
            }
            *slot = Some(to);
        }

        for b in &decl.bindings {
            let state_id = *ctx.states.get(&b.state).ok_or_else(|| {
                self.err(format!("binding on unknown state `{}`", self.name(b.state)))
            })?;
            let action = *action_ids.get(&b.action).ok_or_else(|| {
                self.err(format!(
                    "binding to unknown action `{}`",
                    self.name(b.action)
                ))
            })?;
            let ev = self.event_id(b.event)?;
            let slot = &mut states[state_id.0 as usize].actions[ev.0 as usize];
            if slot.is_some() {
                return Err(self.err(format!(
                    "multiple actions bound to state `{}` on event `{}`",
                    self.name(b.state),
                    self.name(b.event)
                )));
            }
            *slot = Some(action);
        }

        // Foreign functions: lower model bodies in an extended context
        // where the named parameters and `result` become synthetic local
        // slots appended after the machine's variables.
        let mut foreign = Vec::with_capacity(decl.foreign.len());
        for f in &decl.foreign {
            let model = match &f.model_body {
                None => None,
                Some(body) => {
                    let param_base = decl.vars.len() as u32;
                    let mut model_ctx = self.machine_ctx(decl)?;
                    for (i, p) in f.params.iter().enumerate() {
                        if let Some(pname) = p.name {
                            model_ctx.vars.insert(pname, VarId(param_base + i as u32));
                        }
                    }
                    let result_slot = param_base + f.params.len() as u32;
                    let result_sym = self.program.interner.get("result");
                    if let Some(result_sym) = result_sym {
                        model_ctx
                            .vars
                            .entry(result_sym)
                            .or_insert(VarId(result_slot));
                    }
                    let body = self.lower_stmt(body, &model_ctx)?;
                    Some(ModelInfo {
                        body,
                        param_base,
                        param_count: f.params.len() as u32,
                        result_slot,
                    })
                }
            };
            foreign.push(FnInfo {
                name: f.name,
                params: f.param_types(),
                ret: f.ret,
                model,
            });
        }

        Ok(MachineType {
            name: decl.name,
            ghost: decl.ghost,
            vars: decl
                .vars
                .iter()
                .map(|v| VarInfo {
                    name: v.name,
                    ty: v.ty,
                    ghost: v.ghost,
                })
                .collect(),
            states,
            actions,
            foreign,
        })
    }

    fn event_id(&self, name: Symbol) -> Result<EventId, LowerError> {
        self.event_ids
            .get(&name)
            .copied()
            .ok_or_else(|| self.err(format!("unknown event `{}`", self.name(name))))
    }

    fn lower_stmt(&mut self, s: &Stmt, ctx: &MachineCtx) -> Result<StmtId, LowerError> {
        let lowered = match &s.kind {
            StmtKind::Skip => LStmt::Skip,
            StmtKind::Assign { dst, value } => {
                let var = self.var_id(*dst, ctx)?;
                let value = self.lower_expr(value, ctx)?;
                LStmt::Assign(var, value)
            }
            StmtKind::New {
                dst,
                machine,
                inits,
            } => {
                let var = self.var_id(*dst, ctx)?;
                let ty = *self.machine_ids.get(machine).ok_or_else(|| {
                    self.err(format!("new of unknown machine `{}`", self.name(*machine)))
                })?;
                // Initializer variables are resolved against the *created*
                // machine's declaration; initializer expressions are
                // evaluated in the *creating* machine's context.
                let target_decl = &self.program.machines[ty.0 as usize];
                let mut lowered_inits = Vec::new();
                for init in inits {
                    let var_pos = target_decl
                        .vars
                        .iter()
                        .position(|v| v.name == init.var)
                        .ok_or_else(|| {
                            self.err(format!(
                                "initializer for unknown variable `{}` of machine `{}`",
                                self.name(init.var),
                                self.name(*machine)
                            ))
                        })?;
                    let value = self.lower_expr(&init.value, ctx)?;
                    lowered_inits.push((VarId(var_pos as u32), value));
                }
                LStmt::New {
                    dst: var,
                    ty,
                    inits: lowered_inits,
                }
            }
            StmtKind::Delete => LStmt::Delete,
            StmtKind::Send {
                target,
                event,
                payload,
            } => {
                let target = self.lower_expr(target, ctx)?;
                let event = self.event_id(*event)?;
                let payload = payload
                    .as_ref()
                    .map(|p| self.lower_expr(p, ctx))
                    .transpose()?;
                LStmt::Send {
                    target,
                    event,
                    payload,
                }
            }
            StmtKind::Raise { event, payload } => {
                let event = self.event_id(*event)?;
                let payload = payload
                    .as_ref()
                    .map(|p| self.lower_expr(p, ctx))
                    .transpose()?;
                LStmt::Raise { event, payload }
            }
            StmtKind::Leave => LStmt::Leave,
            StmtKind::Return => LStmt::Return,
            StmtKind::Assert(e) => LStmt::Assert(self.lower_expr(e, ctx)?),
            StmtKind::Block(stmts) => {
                let ids = stmts
                    .iter()
                    .map(|st| self.lower_stmt(st, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                LStmt::Block(ids)
            }
            StmtKind::If { cond, then, els } => {
                let cond = self.lower_expr(cond, ctx)?;
                let then = self.lower_stmt(then, ctx)?;
                let els = self.lower_stmt(els, ctx)?;
                LStmt::If { cond, then, els }
            }
            StmtKind::While { cond, body } => {
                let cond = self.lower_expr(cond, ctx)?;
                let body = self.lower_stmt(body, ctx)?;
                LStmt::While { cond, body }
            }
            StmtKind::CallState(state) => {
                let id = *ctx.states.get(state).ok_or_else(|| {
                    self.err(format!("call of unknown state `{}`", self.name(*state)))
                })?;
                LStmt::CallState(id)
            }
            StmtKind::ForeignCall { dst, func, args } => {
                let func_id = *ctx.fns.get(func).ok_or_else(|| {
                    self.err(format!(
                        "call of undeclared foreign function `{}`",
                        self.name(*func)
                    ))
                })?;
                let dst = dst.map(|d| self.var_id(d, ctx)).transpose()?;
                let args = args
                    .iter()
                    .map(|a| self.lower_expr(a, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                LStmt::Foreign {
                    dst,
                    func: func_id,
                    args,
                }
            }
        };
        Ok(self.code.push_stmt(lowered))
    }

    fn var_id(&self, name: Symbol, ctx: &MachineCtx) -> Result<VarId, LowerError> {
        ctx.vars
            .get(&name)
            .copied()
            .ok_or_else(|| self.err(format!("unknown variable `{}`", self.name(name))))
    }

    fn lower_expr(&mut self, e: &Expr, ctx: &MachineCtx) -> Result<ExprId, LowerError> {
        let lowered = match &e.kind {
            ExprKind::This => LExpr::This,
            ExprKind::Msg => LExpr::Msg,
            ExprKind::Arg => LExpr::Arg,
            ExprKind::Null => LExpr::Null,
            ExprKind::Bool(b) => LExpr::Bool(*b),
            ExprKind::Int(i) => LExpr::Int(*i),
            ExprKind::Nondet => LExpr::Nondet,
            ExprKind::Name(sym) => {
                // Variables shadow events.
                if let Some(&v) = ctx.vars.get(sym) {
                    LExpr::Var(v)
                } else if let Some(&ev) = self.event_ids.get(sym) {
                    LExpr::Event(ev)
                } else {
                    return Err(self.err(format!(
                        "unresolved name `{}` (neither a variable nor an event)",
                        self.name(*sym)
                    )));
                }
            }
            ExprKind::Unary(op, inner) => {
                let inner = self.lower_expr(inner, ctx)?;
                LExpr::Unary(*op, inner)
            }
            ExprKind::Binary(op, a, b) => {
                let a = self.lower_expr(a, ctx)?;
                let b = self.lower_expr(b, ctx)?;
                LExpr::Binary(*op, a, b)
            }
            ExprKind::ForeignCall(func, args) => {
                let func_id = *ctx.fns.get(func).ok_or_else(|| {
                    self.err(format!(
                        "call of undeclared foreign function `{}`",
                        self.name(*func)
                    ))
                })?;
                let args = args
                    .iter()
                    .map(|a| self.lower_expr(a, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                LExpr::Foreign(func_id, args)
            }
        };
        Ok(self.code.push_expr(lowered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_ast::{Expr as AExpr, ProgramBuilder, Stmt as AStmt};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.event("go");
        b.event_with("data", Ty::Int);
        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        let x = m.sym("x");
        let go = m.sym("go");
        m.action("bump", AStmt::assign(x, AExpr::int(1)));
        m.state("A").defer(&["data"]).entry(AStmt::raise(go));
        m.state("B").postpone(&["go"]);
        m.step("A", "go", "B");
        m.call("B", "data", "A");
        m.bind("B", "go", "bump");
        m.finish();
        b.finish("M")
    }

    #[test]
    fn lowers_tables() {
        let lowered = lower(&sample()).unwrap();
        assert_eq!(lowered.event_count(), 2);
        let m = lowered.machine(MachineTypeId(0));
        assert_eq!(m.states.len(), 2);
        let go = lowered.event_id_named("go").unwrap();
        let data = lowered.event_id_named("data").unwrap();
        let a = &m.states[0];
        assert_eq!(a.steps[go.0 as usize], Some(StateId(1)));
        assert!(a.deferred.contains(data));
        assert!(!a.deferred.contains(go));
        let b_state = &m.states[1];
        assert_eq!(b_state.calls[data.0 as usize], Some(StateId(0)));
        assert_eq!(b_state.actions[go.0 as usize], Some(ActionId(0)));
        assert!(b_state.postponed.contains(go));
    }

    #[test]
    fn handles_accounts_for_all_tables() {
        let lowered = lower(&sample()).unwrap();
        let m = lowered.machine(MachineTypeId(0));
        let go = lowered.event_id_named("go").unwrap();
        let data = lowered.event_id_named("data").unwrap();
        assert!(m.states[0].handles(go));
        assert!(!m.states[0].handles(data));
        assert!(m.states[1].handles(go)); // via action binding
        assert!(m.states[1].handles(data)); // via call transition
    }

    #[test]
    fn rejects_duplicate_transition() {
        let mut b = ProgramBuilder::new();
        b.event("e");
        let mut m = b.machine("M");
        m.state("A");
        m.state("B");
        m.step("A", "e", "B");
        m.step("A", "e", "A");
        m.finish();
        let err = lower(&b.finish("M")).unwrap_err();
        assert!(err.message().contains("nondeterministic"));
    }

    #[test]
    fn rejects_unknown_event() {
        let mut b = ProgramBuilder::new();
        let mut m = b.machine("M");
        m.state("A");
        m.state("B");
        m.step("A", "phantom", "B");
        m.finish();
        assert!(lower(&b.finish("M")).is_err());
    }

    #[test]
    fn rejects_machine_without_states() {
        let mut b = ProgramBuilder::new();
        let m = b.machine("M");
        m.finish();
        let err = lower(&b.finish("M")).unwrap_err();
        assert!(err.message().contains("no states"));
    }

    #[test]
    fn variables_shadow_events_in_expressions() {
        let mut b = ProgramBuilder::new();
        b.event("x");
        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        let x = m.sym("x");
        m.state("A").entry(AStmt::assign(x, AExpr::name(x)));
        m.finish();
        let lowered = lower(&b.finish("M")).unwrap();
        let mt = lowered.machine(MachineTypeId(0));
        let entry = lowered.code.stmt(mt.states[0].entry);
        match entry {
            LStmt::Assign(var, value) => {
                assert_eq!(*var, VarId(0));
                assert_eq!(lowered.code.expr(*value), &LExpr::Var(VarId(0)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn event_set_iter_round_trips() {
        let mut s = EventSet::with_capacity(200);
        for i in [0u32, 5, 63, 64, 129, 199] {
            s.insert(EventId(i));
        }
        let collected: Vec<u32> = s.iter().map(|e| e.0).collect();
        assert_eq!(collected, vec![0, 5, 63, 64, 129, 199]);
        assert!(!s.contains(EventId(1)));
        assert!(s.contains(EventId(129)));
    }

    #[test]
    fn main_inits_resolved() {
        let mut b = ProgramBuilder::new();
        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        m.state("A");
        m.finish();
        let x = b.sym("x");
        let p = b.finish_with(
            "M",
            vec![p_ast::Initializer {
                var: x,
                value: AExpr::int(7),
            }],
        );
        let lowered = lower(&p).unwrap();
        assert_eq!(lowered.main_inits.len(), 1);
        assert_eq!(lowered.main_inits[0].0, VarId(0));
    }
}
