//! SipHash with the 128-bit output extension — the hash behind both
//! the per-machine digests cached in [`crate::Config`] and the checker's
//! global state fingerprints. Two round-count flavors share one
//! implementation: full SipHash-2-4 ([`fingerprint128`]) for cold
//! composite keys and checksums, and reduced SipHash-1-3
//! ([`fingerprint128_fast`]) for the hot per-machine slot digests.
//!
//! The function lives in `p-semantics` (rather than `p-checker`, where
//! the fingerprint type is defined) because the incremental digest
//! scheme caches per-machine hashes *inside* the configuration: a
//! machine's digest is computed right next to the encoding it hashes,
//! and the checker only combines the cached digests.
//!
//! The key is fixed so digests are stable across threads, runs and
//! processes — parallel workers, replay tooling and persisted reports
//! all agree on a state's identity. (`std`'s `DefaultHasher` guarantees
//! neither algorithm nor cross-run stability.) Determinism is all that
//! is needed; P programs do not choose their own state encodings
//! adversarially.

/// Fixed SipHash key, low word. Equals the reference implementation's
/// test key `00 01 02 … 0f` read little-endian, so the published
/// `vectors_sip128` vectors apply directly.
pub const KEY0: u64 = 0x0706_0504_0302_0100;
/// Fixed SipHash key, high word.
pub const KEY1: u64 = 0x0f0e_0d0c_0b0a_0908;

/// Hashes `data` with the fixed key — the digest used for composite
/// fingerprints, checkpoint checksums and other cold paths.
#[inline]
pub fn fingerprint128(data: &[u8]) -> u128 {
    siphash_2_4_128(KEY0, KEY1, data)
}

/// Hashes `data` with the fixed key using the reduced-round
/// SipHash-1-3 — the digest behind the per-machine slot digests and
/// canonical (symmetry) keys, the hottest hashes in the checker. The
/// 1/3 round counts are the ones `std`'s `DefaultHasher` ships for
/// exactly this non-adversarial setting; distribution quality is
/// unaffected, only the cryptographic PRF margin shrinks, which state
/// fingerprinting does not rely on (P programs do not choose their
/// encodings adversarially).
#[inline]
pub fn fingerprint128_fast(data: &[u8]) -> u128 {
    siphash_128::<1, 3>(KEY0, KEY1, data)
}

#[inline]
fn sip_rounds(v: &mut [u64; 4], n: usize) {
    for _ in 0..n {
        v[0] = v[0].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(13);
        v[1] ^= v[0];
        v[0] = v[0].rotate_left(32);
        v[2] = v[2].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(16);
        v[3] ^= v[2];
        v[0] = v[0].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(21);
        v[3] ^= v[0];
        v[2] = v[2].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(17);
        v[1] ^= v[2];
        v[2] = v[2].rotate_left(32);
    }
}

/// SipHash-2-4 with the 128-bit output extension (the `SipHash-128` of
/// the reference implementation): the low word is the standard 64-bit
/// digest computed with the `0xee` initialization/finalization tweaks,
/// the high word comes from four extra rounds after XORing `0xdd` into
/// `v1`.
pub fn siphash_2_4_128(k0: u64, k1: u64, data: &[u8]) -> u128 {
    siphash_128::<2, 4>(k0, k1, data)
}

/// SipHash-C-D with the 128-bit output extension, generic over the
/// compression (`C`) and finalization (`D`) round counts.
fn siphash_128<const C: usize, const D: usize>(k0: u64, k1: u64, data: &[u8]) -> u128 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575, // "somepseu"
        k1 ^ 0x646f_7261_6e64_6f6d, // "dorandom"
        k0 ^ 0x6c79_6765_6e65_7261, // "lygenera"
        k1 ^ 0x7465_6462_7974_6573, // "tedbytes"
    ];
    v[1] ^= 0xee;

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sip_rounds(&mut v, C);
        v[0] ^= m;
    }
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sip_rounds(&mut v, C);
    v[0] ^= m;

    v[2] ^= 0xee;
    sip_rounds(&mut v, D);
    let lo = v[0] ^ v[1] ^ v[2] ^ v[3];
    v[1] ^= 0xdd;
    sip_rounds(&mut v, D);
    let hi = v[0] ^ v[1] ^ v[2] ^ v[3];
    (lo as u128) | ((hi as u128) << 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The digest as the reference implementation's 16 output bytes
    /// (low word little-endian first, then the high word).
    fn digest_bytes(data: &[u8]) -> [u8; 16] {
        let d = fingerprint128(data);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&(d as u64).to_le_bytes());
        out[8..].copy_from_slice(&((d >> 64) as u64).to_le_bytes());
        out
    }

    #[test]
    fn reference_test_vectors() {
        // `vectors_sip128` of the SipHash reference implementation
        // (github.com/veorq/SipHash): key 000102…0f, input 00 01 02 …
        // of increasing length.
        let expected: [[u8; 16]; 4] = [
            [
                0xa3, 0x81, 0x7f, 0x04, 0xba, 0x25, 0xa8, 0xe6, 0x6d, 0xf6, 0x72, 0x14, 0xc7, 0x55,
                0x02, 0x93,
            ],
            [
                0xda, 0x87, 0xc1, 0xd8, 0x6b, 0x99, 0xaf, 0x44, 0x34, 0x76, 0x59, 0x11, 0x9b, 0x22,
                0xfc, 0x45,
            ],
            [
                0x81, 0x77, 0x22, 0x8d, 0xa4, 0xa4, 0x5d, 0xc7, 0xfc, 0xa3, 0x8b, 0xde, 0xf6, 0x0a,
                0xff, 0xe4,
            ],
            [
                0x9c, 0x70, 0xb6, 0x0c, 0x52, 0x67, 0xa9, 0x4e, 0x5f, 0x33, 0xb6, 0xb0, 0x29, 0x85,
                0xed, 0x51,
            ],
        ];
        let input: Vec<u8> = (0..4).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                &digest_bytes(&input[..len]),
                want,
                "SipHash-2-4-128 vector for input length {len}"
            );
        }
    }

    #[test]
    fn fast_variant_differs_but_mixes() {
        // SipHash-1-3 is a different function from SipHash-2-4…
        assert_ne!(fingerprint128_fast(b"probe"), fingerprint128(b"probe"));
        // …that still avalanches: flipping one input bit moves about
        // half the output bits.
        let base = fingerprint128_fast(b"avalanche-probe");
        let mut data = *b"avalanche-probe";
        data[3] ^= 1;
        let differing = (base ^ fingerprint128_fast(&data)).count_ones();
        assert!((32..=96).contains(&differing), "{differing} bits differ");
        // And it keeps the padding/length guarantees of the slow one.
        assert_ne!(fingerprint128_fast(&[0]), fingerprint128_fast(&[0, 0]));
        assert_ne!(fingerprint128_fast(&[1; 8]), fingerprint128_fast(&[1; 9]));
    }

    #[test]
    fn length_extension_is_distinguished() {
        // Trailing zero bytes must change the digest (the length byte in
        // the final block guards the padding).
        assert_ne!(fingerprint128(&[0]), fingerprint128(&[0, 0]));
        assert_ne!(fingerprint128(&[]), fingerprint128(&[0]));
        // And an 8-byte boundary does not fuse with its neighbor.
        assert_ne!(fingerprint128(&[1; 8]), fingerprint128(&[1; 9]));
    }
}
