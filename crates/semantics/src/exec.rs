//! The execution engine: an interpreter for the operational semantics of
//! Figures 4–6.
//!
//! The engine executes one machine at a time. Per the atomicity reduction
//! of §5, a machine runs *atomically* until it reaches a scheduling point —
//! a `send` or a `new` — or until it blocks waiting for an event, deletes
//! itself, or errors. A fine-grained mode (every small step is a scheduling
//! point) exists for the ablation experiment that validates the reduction.
//!
//! Nondeterministic `*` choices inside ghost machines are resolved through
//! a caller-supplied choice source. The model checker passes a replayable
//! script and re-executes with extended scripts to enumerate both branches;
//! the simulator passes a random source.

use crate::compiled::{CompiledProgram, Ctx, Flow, RunEnd};
use crate::config::{Config, Frame, Inherited, Instr, MachineState};
use crate::error::{ErrorKind, ExecError, PError};
use crate::foreign::ForeignEnv;
use crate::lower::{
    EventId, ExprId, FnId, LExpr, LStmt, LoweredProgram, MachineTypeId, StateId, StmtId,
};
use crate::value::Value;
use crate::MachineId;

/// How a machine's atomic run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The machine reached a scheduling point and can continue later.
    Yield(YieldKind),
    /// The machine is waiting for an event it can dequeue.
    Blocked,
    /// The machine executed `delete` and no longer exists.
    Deleted,
    /// The machine took an error transition.
    Error(PError),
    /// The choice source was exhausted at a nondeterministic `*`.
    ///
    /// The configuration is left partially mutated; the caller must restore
    /// it from a copy and re-run with a longer choice script.
    NeedChoice,
}

/// The scheduling point a yielding machine stopped at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldKind {
    /// The machine sent `event` to `to`. `enqueued` is false when the ⊕
    /// duplicate-suppression rule dropped the event.
    Sent {
        /// Receiver.
        to: MachineId,
        /// Event sent.
        event: EventId,
        /// Whether the queue actually grew.
        enqueued: bool,
    },
    /// The machine created a new machine.
    Created {
        /// The new machine's id.
        id: MachineId,
        /// Its type.
        ty: MachineTypeId,
    },
    /// Fine-grained mode only: an internal small step completed.
    Internal,
}

/// Result of [`Engine::run_machine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: ExecOutcome,
    /// Number of nondeterministic choices consumed.
    pub choices_used: usize,
    /// Number of small steps executed.
    pub steps: usize,
    /// Events dequeued from this machine's input queue during the run
    /// (used by the liveness analysis in `p-checker`). Recorded by
    /// default; callers that never read it (the safety checker's hot
    /// path) can switch it off with [`Engine::with_dequeue_log`] to
    /// avoid the per-run allocation.
    pub dequeued: Vec<EventId>,
    /// Events the machine `raise`d during the run. Recorded only when
    /// the engine was built [`Engine::with_event_log`]; empty otherwise
    /// so the checker's hot path pays no extra allocation.
    pub raised: Vec<EventId>,
    /// Queued events skipped as deferred while picking the event to
    /// dequeue. Recorded only under [`Engine::with_event_log`].
    pub deferred: Vec<EventId>,
}

/// Scheduling granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Context switches only after `send`/`new` (§5's atomicity
    /// reduction). The default.
    #[default]
    Atomic,
    /// Context switches after every small step (ablation baseline).
    Fine,
}

/// A source of nondeterministic boolean choices.
///
/// `None` means the source is exhausted and the engine must abort with
/// [`ExecOutcome::NeedChoice`].
pub trait ChoiceSource {
    /// Produces the next choice, or `None` if exhausted.
    fn next_choice(&mut self) -> Option<bool>;
}

/// A finite, replayable choice script (used by the model checker).
#[derive(Debug, Clone)]
pub struct Script<'a> {
    bits: &'a [bool],
    used: usize,
}

impl<'a> Script<'a> {
    /// Creates a script over `bits`.
    pub fn new(bits: &'a [bool]) -> Script<'a> {
        Script { bits, used: 0 }
    }

    /// Number of bits consumed so far.
    pub fn used(&self) -> usize {
        self.used
    }
}

impl ChoiceSource for Script<'_> {
    fn next_choice(&mut self) -> Option<bool> {
        let bit = self.bits.get(self.used).copied();
        if bit.is_some() {
            self.used += 1;
        }
        bit
    }
}

impl<F: FnMut() -> bool> ChoiceSource for F {
    fn next_choice(&mut self) -> Option<bool> {
        Some(self())
    }
}

/// Interprets one lowered program.
///
/// # Examples
///
/// ```
/// use p_ast::ProgramBuilder;
/// use p_semantics::{lower, Engine, ForeignEnv};
///
/// let mut b = ProgramBuilder::new();
/// b.event("go");
/// let mut m = b.machine("M");
/// m.state("Init").entry_raise("go");
/// m.state("Done");
/// m.step("Init", "go", "Done");
/// m.finish();
/// let program = lower(&b.finish("M")).unwrap();
///
/// let engine = Engine::new(&program, ForeignEnv::empty());
/// let mut config = engine.initial_config();
/// let id = config.live_ids().next().unwrap();
/// let result = engine
///     .run_machine(&mut config, id, &mut || false, Default::default())
///     .unwrap();
/// assert!(matches!(result.outcome, p_semantics::ExecOutcome::Blocked));
/// ```
#[derive(Debug)]
pub struct Engine<'p> {
    program: &'p LoweredProgram,
    foreign: ForeignEnv,
    fuel: usize,
    event_log: bool,
    dequeue_log: bool,
    compiled: Option<&'p dyn CompiledProgram>,
}

/// What one atomic run observed (internal accumulator for
/// [`RunResult`]'s event lists).
pub(crate) struct RunLog {
    pub(crate) dequeued: Vec<EventId>,
    pub(crate) raised: Vec<EventId>,
    pub(crate) deferred: Vec<EventId>,
    /// Record `dequeued`? (On by default — the liveness analysis and the
    /// runtime depend on it; the safety checker turns it off.)
    pub(crate) dequeue: bool,
    /// Record `raised`/`deferred` too?
    pub(crate) extended: bool,
}

/// Result of one small step (internal).
enum SmallStep {
    Continue,
    Yield(YieldKind),
    Blocked,
    Deleted,
    Error(ErrorKind),
    NeedChoice,
    /// An interpreter invariant was violated (corrupt continuation or
    /// lowered program); the detail becomes
    /// [`ExecError::CorruptContinuation`].
    Fatal(&'static str),
}

/// Expression evaluation abort: the choice source ran dry.
struct NeedChoiceMarker;

impl<'p> Engine<'p> {
    /// Creates an engine with the default fuel (100 000 small steps per
    /// atomic run).
    pub fn new(program: &'p LoweredProgram, foreign: ForeignEnv) -> Engine<'p> {
        Engine {
            program,
            foreign,
            fuel: 100_000,
            event_log: false,
            dequeue_log: true,
            compiled: None,
        }
    }

    /// Attaches a compiled execution backend: atomic runs then execute
    /// statements through `table`'s generated functions instead of the
    /// interpreter (fine-grained runs still interpret — the ablation
    /// baseline measures the interpreter). The interpreter remains the
    /// differential oracle; both backends are bit-identical in outcomes,
    /// step counts, choice consumption and machine state.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::CompiledMismatch`] when `table` was generated
    /// from a different program than this engine interprets.
    pub fn with_compiled(
        mut self,
        table: &'p dyn CompiledProgram,
    ) -> Result<Engine<'p>, ExecError> {
        let expected = crate::compiled::program_digest(self.program);
        let found = table.digest();
        if found != expected {
            return Err(ExecError::CompiledMismatch { expected, found });
        }
        self.compiled = Some(table);
        Ok(self)
    }

    /// Also records `raise`d and deferred events in [`RunResult`] (the
    /// runtime's tracing wants them; the model checker leaves this off
    /// to keep atomic runs allocation-light).
    pub fn with_event_log(mut self, on: bool) -> Engine<'p> {
        self.event_log = on;
        self
    }

    /// Records dequeued events in [`RunResult::dequeued`] (on by
    /// default). The safety checker's exhaustive engines switch this off:
    /// they never read the list, and skipping it saves one `Vec`
    /// allocation per atomic run on the exploration hot path.
    pub fn with_dequeue_log(mut self, on: bool) -> Engine<'p> {
        self.dequeue_log = on;
        self
    }

    /// Overrides the per-run small-step budget. Exceeding it produces
    /// [`ErrorKind::FuelExhausted`] — the detector for machines that loop
    /// privately forever (first liveness property, §3.2).
    pub fn with_fuel(mut self, fuel: usize) -> Engine<'p> {
        self.fuel = fuel;
        self
    }

    /// The program being interpreted.
    pub fn program(&self) -> &'p LoweredProgram {
        self.program
    }

    /// Builds the initial configuration: one instance of the main machine
    /// with its initializers applied, poised to run the entry statement of
    /// its initial state.
    pub fn initial_config(&self) -> Config {
        let mut config = Config::default();
        let id = config.allocate(self.program, self.program.main);
        // Main initializers are constant expressions (the type checker
        // rejects anything context-dependent); evaluate them in the fresh
        // machine's own empty context.
        let inits = self.program.main_inits.clone();
        let mut values = Vec::new();
        {
            let m = config.machine(id).expect("just allocated");
            // No choices are available here; the type checker rejects `*`
            // in main initializers, and any that slips through becomes ⊥.
            let mut empty = Script::new(&[]);
            for (var, expr) in &inits {
                let v = self.eval(m, id, *expr, &mut empty).unwrap_or(Value::Null);
                values.push((*var, v));
            }
        }
        let m = config.machine_mut(id).expect("just allocated");
        for (var, v) in values {
            m.locals[var.0 as usize] = v;
        }
        config
    }

    /// Runs machine `id` until it yields, blocks, deletes itself, or
    /// errors.
    ///
    /// On [`ExecOutcome::NeedChoice`] the configuration is left partially
    /// mutated and must be discarded by the caller.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DeadMachine`] if `id` is not a live machine,
    /// and [`ExecError::CorruptContinuation`] if a stored continuation or
    /// the lowered program violates an interpreter invariant. Both signal
    /// a malformed request — not an error transition of the program under
    /// test, which is reported in-band as [`ExecOutcome::Error`].
    pub fn run_machine(
        &self,
        config: &mut Config,
        id: MachineId,
        choices: &mut dyn ChoiceSource,
        granularity: Granularity,
    ) -> Result<RunResult, ExecError> {
        // Take the running machine out of its slot for the whole run: the
        // copy-on-write clone happens exactly once here, and every small
        // step then works on a direct `&mut MachineState` instead of
        // re-resolving the slot (bounds + liveness check, refcount
        // inspection, digest invalidation) two or three times per step.
        // While taken, the slot is a tombstone; `exec_stmt` special-cases
        // sends to the running machine itself.
        let Some(mut taken) = config.take_machine(id) else {
            return Err(ExecError::DeadMachine { machine: id });
        };
        let mut counting = CountingChoices {
            inner: choices,
            used: 0,
        };
        let mut steps = 0;
        let mut log = RunLog {
            dequeued: Vec::new(),
            raised: Vec::new(),
            deferred: Vec::new(),
            dequeue: self.dequeue_log,
            extended: self.event_log,
        };
        let mut fatal = None;
        let outcome = {
            let m = config.cow_unshare(&mut taken);
            if let (Some(table), Granularity::Atomic) = (self.compiled, granularity) {
                self.run_compiled(
                    table,
                    config,
                    m,
                    id,
                    &mut counting,
                    &mut log,
                    &mut steps,
                    &mut fatal,
                )
            } else {
                loop {
                    if steps >= self.fuel {
                        break ExecOutcome::Error(PError::new(ErrorKind::FuelExhausted, id));
                    }
                    steps += 1;
                    let step = self.small_step(config, m, id, &mut counting, &mut log);
                    match step {
                        SmallStep::Continue => {
                            if granularity == Granularity::Fine {
                                // Blocked/terminated conditions are detected on
                                // the next entry, so a fine step is always
                                // resumable.
                                break ExecOutcome::Yield(YieldKind::Internal);
                            }
                        }
                        SmallStep::Yield(kind) => break ExecOutcome::Yield(kind),
                        SmallStep::Blocked => break ExecOutcome::Blocked,
                        SmallStep::Deleted => break ExecOutcome::Deleted,
                        SmallStep::Error(kind) => break ExecOutcome::Error(PError::new(kind, id)),
                        SmallStep::NeedChoice => break ExecOutcome::NeedChoice,
                        SmallStep::Fatal(detail) => {
                            fatal = Some(detail);
                            break ExecOutcome::NeedChoice; // placeholder, unused
                        }
                    }
                }
            }
        };
        if let Some(detail) = fatal {
            // Put the machine back so the configuration stays structurally
            // valid for the caller's error reporting.
            config.restore_machine(id, taken);
            return Err(ExecError::CorruptContinuation {
                machine: id,
                detail,
            });
        }
        if !matches!(outcome, ExecOutcome::Deleted) {
            // A deleted machine leaves its tombstone in place (the
            // `delete` statement); every other outcome puts the mutated
            // state back.
            config.restore_machine(id, taken);
        }
        Ok(RunResult {
            outcome,
            choices_used: counting.used,
            steps,
            dequeued: log.dequeued,
            raised: log.raised,
            deferred: log.deferred,
        })
    }

    /// The compiled driver loop: statement-shaped instructions (`Stmt`,
    /// `Seq`, `Loop`) run as generated code; dispatch, dequeueing and the
    /// stack instructions take the interpreter path (they are identical
    /// table walks in both backends and never dominate a profile).
    ///
    /// Step accounting is exact: generated statement functions charge one
    /// step per interpreter instruction pop they fuse away, and this loop
    /// charges the pops it performs itself, so fuel runs out at the same
    /// point on both backends.
    #[allow(clippy::too_many_arguments)]
    fn run_compiled(
        &self,
        table: &dyn CompiledProgram,
        config: &mut Config,
        m: &mut MachineState,
        id: MachineId,
        choices: &mut CountingChoices<'_>,
        log: &mut RunLog,
        steps: &mut usize,
        fatal: &mut Option<&'static str>,
    ) -> ExecOutcome {
        loop {
            if matches!(
                m.cont.last(),
                Some(Instr::Stmt(_) | Instr::Seq(..) | Instr::Loop(_))
            ) {
                let instr = m.cont.pop().expect("just matched Some");
                let cont_base = m.cont.len();
                let mut cx = Ctx {
                    engine: self,
                    config,
                    m,
                    id,
                    choices,
                    log,
                    steps,
                    fuel: self.fuel,
                    cont_base,
                };
                let flow = match instr {
                    Instr::Stmt(sid) => table.stmt(&mut cx, sid),
                    Instr::Seq(block, idx) => table.seq(&mut cx, block, idx),
                    Instr::Loop(while_stmt) => {
                        // The interpreter charges one step to pop `Loop`
                        // (which re-pushes the `while`), then the `while`
                        // statement charges its own.
                        if cx.step() {
                            Flow::End(RunEnd::Error(ErrorKind::FuelExhausted))
                        } else {
                            table.stmt(&mut cx, while_stmt)
                        }
                    }
                    _ => unreachable!("matched statement-shaped instruction above"),
                };
                match flow {
                    Flow::Done | Flow::Transfer => {}
                    Flow::Call(target) => self.finish_call_state(m, target),
                    Flow::End(RunEnd::Yield(kind)) => break ExecOutcome::Yield(kind),
                    Flow::End(RunEnd::Deleted) => break ExecOutcome::Deleted,
                    Flow::End(RunEnd::Error(kind)) => {
                        break ExecOutcome::Error(PError::new(kind, id))
                    }
                    Flow::End(RunEnd::NeedChoice) => break ExecOutcome::NeedChoice,
                    Flow::End(RunEnd::Fatal(detail)) => {
                        *fatal = Some(detail);
                        break ExecOutcome::NeedChoice; // placeholder, unused
                    }
                }
                continue;
            }
            if *steps >= self.fuel {
                break ExecOutcome::Error(PError::new(ErrorKind::FuelExhausted, id));
            }
            *steps += 1;
            match self.small_step(config, m, id, choices, log) {
                SmallStep::Continue => {}
                SmallStep::Yield(kind) => break ExecOutcome::Yield(kind),
                SmallStep::Blocked => break ExecOutcome::Blocked,
                SmallStep::Deleted => break ExecOutcome::Deleted,
                SmallStep::Error(kind) => break ExecOutcome::Error(PError::new(kind, id)),
                SmallStep::NeedChoice => break ExecOutcome::NeedChoice,
                SmallStep::Fatal(detail) => {
                    *fatal = Some(detail);
                    break ExecOutcome::NeedChoice; // placeholder, unused
                }
            }
        }
    }

    /// Completes a `call n` statement: computes the inherited table from
    /// the current state, saves the statement continuation as the resume
    /// point, pushes the callee frame and queues its entry statement.
    /// Shared by the interpreter's `CallState` arm and the compiled
    /// driver's [`Flow::Call`] handling.
    pub(crate) fn finish_call_state(&self, m: &mut MachineState, target: StateId) {
        let mt = self.program.machine(m.ty);
        let current = m.current_state();
        let state = &mt.states[current.0 as usize];
        let n_events = self.program.event_count();
        let old = m.top().inherited.clone();
        let mut inherited = Vec::with_capacity(n_events);
        #[allow(clippy::needless_range_loop)] // x indexes four tables
        for x in 0..n_events {
            let ev = EventId(x as u32);
            let entry = if state.steps[x].is_some() || state.calls[x].is_some() {
                Inherited::None
            } else if let Some(a) = state.actions[x] {
                Inherited::Action(a)
            } else if state.deferred.contains(ev) {
                Inherited::Deferred
            } else {
                old[x]
            };
            inherited.push(entry);
        }
        // The continuation after this statement becomes the saved
        // resume point; it is restored when the callee returns.
        let resume = std::mem::take(&mut m.cont);
        let entry = mt.states[target.0 as usize].entry;
        m.stack.push(Frame {
            state: target,
            inherited,
            resume: Some(resume),
        });
        m.cont.push(Instr::Stmt(entry));
    }

    /// Executes one small step of machine `id`, already taken out of
    /// `config` as `m`.
    fn small_step(
        &self,
        config: &mut Config,
        m: &mut MachineState,
        id: MachineId,
        choices: &mut CountingChoices<'_>,
        log: &mut RunLog,
    ) -> SmallStep {
        // 1. Remaining statement execution.
        if let Some(instr) = m.cont.pop() {
            return self.exec_instr(config, m, id, instr, choices, log);
        }

        // 2. A raised event awaiting dispatch.
        if let Some((event, _value)) = m.pending {
            return self.dispatch(m, event);
        }

        // 3. Waiting: try to dequeue (rule DEQUEUE).
        let mt = self.program.machine(m.ty);
        let frame = m.top();
        let state = &mt.states[frame.state.0 as usize];
        let index = m.queue.iter().position(|&(e, _)| {
            if state.handles(e) {
                return true;
            }
            let deferred =
                state.deferred.contains(e) || frame.inherited[e.0 as usize] == Inherited::Deferred;
            !deferred
        });
        match index {
            None => SmallStep::Blocked,
            Some(i) => {
                if log.extended {
                    // Everything the scan passed over was skipped as
                    // deferred (handled events stop the scan).
                    for &(skipped, _) in &m.queue[..i] {
                        log.deferred.push(skipped);
                    }
                }
                let (event, value) = m.queue.remove(i);
                if log.dequeue {
                    log.dequeued.push(event);
                }
                m.msg = Value::Event(event);
                m.arg = value;
                m.pending = Some((event, value));
                SmallStep::Continue
            }
        }
    }

    /// Dispatches a raised event against the top frame: rules STEP,
    /// CALL, ACTION, POP1 and the exit-statement insertion of
    /// DEQUEUE/RAISE.
    fn dispatch(&self, m: &mut MachineState, event: EventId) -> SmallStep {
        let mt = self.program.machine(m.ty);
        let frame_state;
        let inherited_entry;
        {
            let frame = m.top();
            frame_state = frame.state;
            inherited_entry = frame.inherited[event.0 as usize];
        }
        let state = &mt.states[frame_state.0 as usize];
        let e = event.0 as usize;

        // STEP has the highest priority.
        if let Some(target) = state.steps[e] {
            m.pending = None;
            m.cont.clear();
            m.cont.push(Instr::EnterState(target));
            m.cont.push(Instr::Stmt(state.exit));
            return SmallStep::Continue;
        }

        // CALL: push (n', a') where a' inherits from the current state.
        if let Some(target) = state.calls[e] {
            m.pending = None;
            let n_events = self.program.event_count();
            let old = m.top().inherited.clone();
            let mut inherited = Vec::with_capacity(n_events);
            #[allow(clippy::needless_range_loop)] // x indexes four tables
            for x in 0..n_events {
                let ev = EventId(x as u32);
                let entry = if state.steps[x].is_some() || state.calls[x].is_some() {
                    Inherited::None
                } else if let Some(a) = state.actions[x] {
                    Inherited::Action(a)
                } else if state.deferred.contains(ev) {
                    Inherited::Deferred
                } else {
                    old[x]
                };
                inherited.push(entry);
            }
            let entry_stmt = mt.states[target.0 as usize].entry;
            m.stack.push(Frame {
                state: target,
                inherited,
                resume: None,
            });
            m.cont.clear();
            m.cont.push(Instr::Stmt(entry_stmt));
            return SmallStep::Continue;
        }

        // ACTION: a binding on the current state overrides an inherited
        // action.
        let action = state.actions[e].or(match inherited_entry {
            Inherited::Action(a) => Some(a),
            _ => None,
        });
        if let Some(action) = action {
            m.pending = None;
            let body = mt.actions[action.0 as usize].body;
            m.cont.clear();
            m.cont.push(Instr::Stmt(body));
            return SmallStep::Continue;
        }

        // POP1: run the exit statement, then pop; the pending event stays
        // and is re-dispatched in the caller.
        m.cont.clear();
        m.cont.push(Instr::PopUnhandled);
        m.cont.push(Instr::Stmt(state.exit));
        SmallStep::Continue
    }

    fn exec_instr(
        &self,
        config: &mut Config,
        m: &mut MachineState,
        id: MachineId,
        instr: Instr,
        choices: &mut CountingChoices<'_>,
        log: &mut RunLog,
    ) -> SmallStep {
        match instr {
            Instr::Stmt(sid) => {
                // The code arena outlives the run; no clone needed.
                let stmt = self.program.code.stmt(sid);
                self.exec_stmt(config, m, id, sid, stmt, choices, log)
            }
            Instr::Seq(block, idx) => {
                let LStmt::Block(children) = self.program.code.stmt(block) else {
                    return SmallStep::Fatal("Seq instruction over a non-block statement");
                };
                if let Some(child) = children.get(idx as usize).copied() {
                    m.cont.push(Instr::Seq(block, idx + 1));
                    m.cont.push(Instr::Stmt(child));
                }
                SmallStep::Continue
            }
            Instr::Loop(while_stmt) => {
                m.cont.push(Instr::Stmt(while_stmt));
                SmallStep::Continue
            }
            Instr::EnterState(target) => {
                let mt = self.program.machine(m.ty);
                let entry = mt.states[target.0 as usize].entry;
                let Some(top) = m.stack.last_mut() else {
                    return SmallStep::Fatal("state transition with an empty call stack");
                };
                top.state = target;
                m.cont.push(Instr::Stmt(entry));
                SmallStep::Continue
            }
            Instr::PopViaReturn => {
                let Some(frame) = m.stack.pop() else {
                    return SmallStep::Fatal("return with an empty call stack");
                };
                if m.stack.is_empty() {
                    return SmallStep::Error(ErrorKind::StackUnderflow);
                }
                if let Some(resume) = frame.resume {
                    m.cont = resume;
                }
                SmallStep::Continue
            }
            Instr::PopUnhandled => {
                let Some(pending_event) = m.pending.map(|(e, _)| e) else {
                    return SmallStep::Fatal("PopUnhandled without a pending event");
                };
                if m.stack.pop().is_none() {
                    return SmallStep::Fatal("pop with an empty call stack");
                }
                if m.stack.is_empty() {
                    return SmallStep::Error(ErrorKind::UnhandledEvent {
                        event: pending_event,
                    });
                }
                SmallStep::Continue
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_stmt(
        &self,
        config: &mut Config,
        m: &mut MachineState,
        id: MachineId,
        sid: crate::lower::StmtId,
        stmt: &LStmt,
        choices: &mut CountingChoices<'_>,
        log: &mut RunLog,
    ) -> SmallStep {
        macro_rules! eval {
            ($expr:expr) => {{
                match self.eval(m, id, $expr, choices) {
                    Ok(v) => v,
                    Err(NeedChoiceMarker) => return SmallStep::NeedChoice,
                }
            }};
        }

        match stmt {
            LStmt::Skip => SmallStep::Continue,
            LStmt::Assign(var, value) => {
                let v = eval!(*value);
                m.locals[var.0 as usize] = v;
                SmallStep::Continue
            }
            LStmt::New { dst, ty, inits } => {
                let mut values = Vec::with_capacity(inits.len());
                for (var, expr) in inits {
                    values.push((*var, eval!(*expr)));
                }
                let new_id = config.allocate(self.program, *ty);
                {
                    let created = config.machine_mut(new_id).expect("just allocated");
                    for (var, v) in values {
                        created.locals[var.0 as usize] = v;
                    }
                }
                m.locals[dst.0 as usize] = Value::Machine(new_id);
                SmallStep::Yield(YieldKind::Created {
                    id: new_id,
                    ty: *ty,
                })
            }
            LStmt::Delete => {
                // The running machine was taken out of its slot by
                // `run_machine`, which leaves the tombstone in place on a
                // `Deleted` outcome — nothing to remove here.
                SmallStep::Deleted
            }
            LStmt::Send {
                target,
                event,
                payload,
            } => {
                let target_v = eval!(*target);
                let payload_v = match payload {
                    Some(p) => eval!(*p),
                    None => Value::Null,
                };
                let Some(target_id) = target_v.as_machine() else {
                    return SmallStep::Error(ErrorKind::SendToUndefined);
                };
                // The running machine's slot is a tombstone while it
                // runs; a self-send must not read it.
                let receiver = if target_id == id {
                    &mut *m
                } else {
                    match config.machine_mut(target_id) {
                        Some(r) => r,
                        None => {
                            return SmallStep::Error(ErrorKind::SendToDeleted { target: target_id })
                        }
                    }
                };
                let enqueued = receiver.enqueue(*event, payload_v);
                SmallStep::Yield(YieldKind::Sent {
                    to: target_id,
                    event: *event,
                    enqueued,
                })
            }
            LStmt::Raise { event, payload } => {
                let v = match payload {
                    Some(p) => eval!(*p),
                    None => Value::Null,
                };
                if log.extended {
                    log.raised.push(*event);
                }
                m.msg = Value::Event(*event);
                m.arg = v;
                m.cont.clear();
                m.pending = Some((*event, v));
                SmallStep::Continue
            }
            LStmt::Leave => {
                m.cont.clear();
                SmallStep::Continue
            }
            LStmt::Return => {
                let mt = self.program.machine(m.ty);
                let exit = mt.states[m.current_state().0 as usize].exit;
                m.cont.clear();
                m.cont.push(Instr::PopViaReturn);
                m.cont.push(Instr::Stmt(exit));
                SmallStep::Continue
            }
            LStmt::Assert(cond) => match eval!(*cond) {
                Value::Bool(true) => SmallStep::Continue,
                Value::Bool(false) => SmallStep::Error(ErrorKind::AssertionFailure),
                _ => SmallStep::Error(ErrorKind::AssertionUndefined),
            },
            LStmt::Block(_) => {
                m.cont.push(Instr::Seq(sid, 0));
                SmallStep::Continue
            }
            LStmt::If { cond, then, els } => match eval!(*cond) {
                Value::Bool(b) => {
                    let branch = if b { *then } else { *els };
                    m.cont.push(Instr::Stmt(branch));
                    SmallStep::Continue
                }
                _ => SmallStep::Error(ErrorKind::UndefinedCondition),
            },
            LStmt::While { cond, body } => match eval!(*cond) {
                Value::Bool(true) => {
                    m.cont.push(Instr::Loop(sid));
                    m.cont.push(Instr::Stmt(*body));
                    SmallStep::Continue
                }
                Value::Bool(false) => SmallStep::Continue,
                _ => SmallStep::Error(ErrorKind::UndefinedCondition),
            },
            LStmt::CallState(target) => {
                self.finish_call_state(m, *target);
                SmallStep::Continue
            }
            LStmt::Foreign { dst, func, args } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(eval!(*a));
                }
                let result = match self.call_foreign(m, id, *func, &arg_values, choices) {
                    Ok(v) => v,
                    Err(ModelAbort::NeedChoice) => return SmallStep::NeedChoice,
                    Err(ModelAbort::Error(kind)) => return SmallStep::Error(kind),
                };
                if let Some(dst) = dst {
                    m.locals[dst.0 as usize] = result;
                }
                SmallStep::Continue
            }
        }
    }

    /// Big-step expression evaluation (the paper's ⇓ relation) with ⊥
    /// propagation and external resolution of `*`.
    fn eval(
        &self,
        m: &MachineState,
        self_id: MachineId,
        expr: ExprId,
        choices: &mut dyn ChoiceSource,
    ) -> Result<Value, NeedChoiceMarker> {
        Ok(match self.program.code.expr(expr) {
            LExpr::This => Value::Machine(self_id),
            LExpr::Msg => m.msg,
            LExpr::Arg => m.arg,
            LExpr::Null => Value::Null,
            LExpr::Bool(b) => Value::Bool(*b),
            LExpr::Int(i) => Value::Int(*i),
            LExpr::Var(v) => m.locals[v.0 as usize],
            LExpr::Event(e) => Value::Event(*e),
            LExpr::Nondet => Value::Bool(choices.next_choice().ok_or(NeedChoiceMarker)?),
            LExpr::Unary(op, inner) => {
                let v = self.eval(m, self_id, *inner, choices)?;
                Value::unary(*op, &v)
            }
            LExpr::Binary(op, a, b) => {
                // Note: both operands are always evaluated (no short
                // circuit), matching the paper's strict operator semantics.
                let va = self.eval(m, self_id, *a, choices)?;
                let vb = self.eval(m, self_id, *b, choices)?;
                Value::binary(*op, &va, &vb)
            }
            LExpr::Foreign(func, args) => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(m, self_id, *a, choices)?);
                }
                match self.call_foreign(m, self_id, *func, &values, choices) {
                    Ok(v) => v,
                    Err(ModelAbort::NeedChoice) => return Err(NeedChoiceMarker),
                    // A failing assert inside a model body in expression
                    // position surfaces as ⊥ — the enclosing statement's
                    // dynamic checks then report the error; this keeps the
                    // expression layer total, matching the paper's
                    // ⊥-propagating discipline.
                    Err(ModelAbort::Error(_)) => Value::Null,
                }
            }
        })
    }

    /// The `en(m)` predicate: whether machine `id` can take a step.
    pub fn enabled(&self, config: &Config, id: MachineId) -> bool {
        config.enabled(id, self.program)
    }

    /// Ids of all enabled machines, in increasing id order.
    pub fn enabled_machines(&self, config: &Config) -> Vec<MachineId> {
        let mut out = Vec::new();
        self.enabled_machines_into(config, &mut out);
        out
    }

    /// [`Engine::enabled_machines`] into a caller-owned buffer (cleared
    /// first), so a hot loop reuses one allocation across states.
    pub fn enabled_machines_into(&self, config: &Config, out: &mut Vec<MachineId>) {
        out.clear();
        out.extend(config.live_ids().filter(|&id| self.enabled(config, id)));
    }
}

/// Why a model-body interpretation stopped early.
pub(crate) enum ModelAbort {
    NeedChoice,
    Error(ErrorKind),
}

impl Engine<'_> {
    /// Calls a foreign function: a registered native implementation wins;
    /// otherwise an erasable model body (§3) is interpreted; otherwise the
    /// conservative ⊥ is returned.
    pub(crate) fn call_foreign(
        &self,
        m: &MachineState,
        self_id: MachineId,
        func: FnId,
        args: &[Value],
        choices: &mut dyn ChoiceSource,
    ) -> Result<Value, ModelAbort> {
        if self.foreign.has_impl(m.ty, func) {
            return Ok(self.foreign.call(self_id, m.ty, func, args));
        }
        let mt = self.program.machine(m.ty);
        let Some(model) = mt.foreign[func.0 as usize].model else {
            return Ok(Value::Null);
        };
        // Extended frame: machine locals (read-only for well-checked
        // programs), then parameters, then the `result` slot.
        let mut locals = m.locals.clone();
        locals.resize(model.param_base as usize, Value::Null);
        for i in 0..model.param_count as usize {
            locals.push(args.get(i).copied().unwrap_or(Value::Null));
        }
        locals.push(Value::Null); // result
        let mut frame = ModelFrame {
            locals,
            msg: m.msg,
            arg: m.arg,
            self_id,
            ty: m.ty,
            fuel: 100_000,
        };
        self.model_stmt(&mut frame, model.body, choices)?;
        Ok(frame.locals[model.result_slot as usize])
    }

    /// Big-step interpretation of a (statement-restricted) model body.
    fn model_stmt(
        &self,
        frame: &mut ModelFrame,
        stmt: StmtId,
        choices: &mut dyn ChoiceSource,
    ) -> Result<(), ModelAbort> {
        if frame.fuel == 0 {
            return Err(ModelAbort::Error(ErrorKind::FuelExhausted));
        }
        frame.fuel -= 1;
        match self.program.code.stmt(stmt) {
            LStmt::Skip => Ok(()),
            LStmt::Assign(var, value) => {
                let v = self.model_expr(frame, *value, choices)?;
                frame.locals[var.0 as usize] = v;
                Ok(())
            }
            LStmt::Assert(cond) => match self.model_expr(frame, *cond, choices)? {
                Value::Bool(true) => Ok(()),
                Value::Bool(false) => Err(ModelAbort::Error(ErrorKind::AssertionFailure)),
                _ => Err(ModelAbort::Error(ErrorKind::AssertionUndefined)),
            },
            LStmt::Block(children) => {
                for child in children.clone() {
                    self.model_stmt(frame, child, choices)?;
                }
                Ok(())
            }
            LStmt::If { cond, then, els } => match self.model_expr(frame, *cond, choices)? {
                Value::Bool(true) => self.model_stmt(frame, *then, choices),
                Value::Bool(false) => self.model_stmt(frame, *els, choices),
                _ => Err(ModelAbort::Error(ErrorKind::UndefinedCondition)),
            },
            LStmt::While { cond, body } => loop {
                if frame.fuel == 0 {
                    return Err(ModelAbort::Error(ErrorKind::FuelExhausted));
                }
                frame.fuel -= 1;
                match self.model_expr(frame, *cond, choices)? {
                    Value::Bool(true) => self.model_stmt(frame, *body, choices)?,
                    Value::Bool(false) => return Ok(()),
                    _ => return Err(ModelAbort::Error(ErrorKind::UndefinedCondition)),
                }
            },
            // The checker rejects every other form inside model bodies.
            _ => Err(ModelAbort::Error(ErrorKind::UndefinedCondition)),
        }
    }

    fn model_expr(
        &self,
        frame: &mut ModelFrame,
        expr: ExprId,
        choices: &mut dyn ChoiceSource,
    ) -> Result<Value, ModelAbort> {
        Ok(match self.program.code.expr(expr) {
            LExpr::This => Value::Machine(frame.self_id),
            LExpr::Msg => frame.msg,
            LExpr::Arg => frame.arg,
            LExpr::Null => Value::Null,
            LExpr::Bool(b) => Value::Bool(*b),
            LExpr::Int(i) => Value::Int(*i),
            LExpr::Var(v) => frame
                .locals
                .get(v.0 as usize)
                .copied()
                .unwrap_or(Value::Null),
            LExpr::Event(e) => Value::Event(*e),
            LExpr::Nondet => Value::Bool(choices.next_choice().ok_or(ModelAbort::NeedChoice)?),
            LExpr::Unary(op, inner) => {
                let v = self.model_expr(frame, *inner, choices)?;
                Value::unary(*op, &v)
            }
            LExpr::Binary(op, a, b) => {
                let va = self.model_expr(frame, *a, choices)?;
                let vb = self.model_expr(frame, *b, choices)?;
                Value::binary(*op, &va, &vb)
            }
            // Nested foreign calls inside model bodies resolve through the
            // native registry only (no recursive model interpretation).
            LExpr::Foreign(func, args) => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.model_expr(frame, *a, choices)?);
                }
                if self.foreign.has_impl(frame.ty, *func) {
                    self.foreign.call(frame.self_id, frame.ty, *func, &values)
                } else {
                    Value::Null
                }
            }
        })
    }
}

struct ModelFrame {
    locals: Vec<Value>,
    msg: Value,
    arg: Value,
    self_id: MachineId,
    ty: MachineTypeId,
    fuel: usize,
}

struct CountingChoices<'a> {
    inner: &'a mut dyn ChoiceSource,
    used: usize,
}

impl ChoiceSource for CountingChoices<'_> {
    fn next_choice(&mut self) -> Option<bool> {
        let c = self.inner.next_choice();
        if c.is_some() {
            self.used += 1;
        }
        c
    }
}
