//! Symmetry-reduced configuration fingerprints.
//!
//! P machine ids are opaque: created by `new`, compared only for
//! equality, used as send targets. Consistently renumbering the machines
//! of one type — moving slot contents *and* rewriting every
//! `Value::Machine` reference through the same bijection — therefore
//! yields a behaviorally equivalent configuration: every enabled
//! transition of one is an enabled transition of the other with
//! renamed participants, and every safety verdict coincides. The
//! explicit-state checker can exploit this by deduplicating on a
//! *canonical* fingerprint that is invariant under such renumberings,
//! storing one representative per orbit instead of up to `k!` symmetric
//! duplicates per group of `k` interchangeable machines.
//!
//! # Algorithm
//!
//! [`canonical_digest`] picks the canonical renumbering by partition
//! refinement (the classic colour-refinement scheme of graph
//! canonizers, specialized to this encoding):
//!
//! 1. **Group** live slots by [`MachineTypeId`]; only groups of ≥ 2
//!    members admit any symmetry. Tombstones and singleton types are
//!    *fixed*: they keep their concrete slot index throughout.
//! 2. **Refine**: maintain a partition of the grouped slots into
//!    classes, initially one class per group. Each round hashes every
//!    member under a *code map* that replaces machine-id references
//!    with their referent's class code (fixed slots code as their own
//!    index, the member itself as a reserved `SELF` marker), then
//!    splits each class by digest, ordering the subclasses by digest
//!    value. Codes, and hence digests, are functions of
//!    permutation-invariant data only, so symmetric configurations
//!    refine identically. The loop stops at a fixpoint; each non-final
//!    round strictly grows the class count, so it terminates.
//! 3. **Enumerate**: classes still holding ≥ 2 members are genuinely
//!    ambiguous at this invariant's resolution. The cartesian product
//!    of their member orderings is enumerated up to
//!    [`MAX_CANDIDATES`]; oversized classes are frozen at their
//!    current order (sound — it only costs merges). Every candidate
//!    induces a full renumbering: each group's members, concatenated
//!    in class order, are assigned the group's own sorted slot
//!    indices, so the renumbering is type-preserving and fixes the
//!    slot-count layout.
//! 4. **Select**: every candidate renumbering is digested — the same
//!    order-sensitive polynomial fold over per-slot digests as
//!    [`Config::digest`], with slots taken in their renamed positions
//!    and each slot hashed with its references rewritten — and the
//!    numerically smallest candidate digest is the canonical digest.
//!
//! # Performance
//!
//! The function runs once per fresh concrete state (the explorers memo
//! concrete fingerprint → canonical key), so its constants matter. The
//! whole working set lives in reusable thread-local scratch, and every
//! per-slot hash — refinement member digests and final renamed slot
//! digests alike — goes through a direct-mapped cache keyed by the
//! slot's concrete digest plus a digest of the code map in force.
//! Machine-local states recur across an exploration far more often
//! than whole configurations do, so most canonicalizations reduce to
//! cache probes and one polynomial fold. Configurations with no
//! symmetry group at all short-circuit to the incremental concrete
//! digest (a singleton orbit needs no renumbering), making
//! `--symmetry` near-free for programs without interchangeable
//! machines.
//!
//! # Soundness
//!
//! A candidate digest is the concrete-digest fold of the renamed
//! configuration, so — up to the ~2⁻¹²⁸ collision probability shared
//! with all state hashing here — two configurations get the same
//! canonical digest only if some type-preserving permutation maps one
//! exactly onto the other. Isomorphic configurations refine to
//! corresponding classes and enumerate pairwise-equal candidate sets,
//! so the minimum is orbit-invariant. The refinement heuristic and the
//! candidate cap only affect *which* representative is chosen — a
//! missed merge explores a duplicate orbit, never skips a reachable
//! behavior — so checker verdicts are unchanged. Conversely the digest
//! is invariant under [`Config::apply_permutation`] whenever the full
//! candidate set is enumerated (the property-based tests exercise
//! exactly this).

use std::cell::RefCell;
use std::sync::Arc;

use crate::config::{Config, MachineState};
use crate::hash::fingerprint128_fast;

/// Code for "the machine being hashed" in refinement rounds, so a
/// machine that references itself is distinguished from one that
/// references a class sibling.
const SELF_CODE: u32 = u32::MAX;

/// Cache marker for final renamed-slot digests (which carry the live
/// tag byte, mirroring [`Config::digest`]'s per-slot hashing), distinct
/// from every refinement member marker (a slot index).
const FINAL_MARK: u32 = u32::MAX - 1;

/// Upper bound on candidate renumberings tried in step 3. Residual
/// ambiguity after refinement is rare and small; classes that would
/// blow this budget are frozen instead (fewer merges, same verdicts).
const MAX_CANDIDATES: usize = 1024;

/// Entries in the direct-mapped per-slot digest cache (~0.9 MiB per
/// exploration thread). Collisions overwrite; a miss only costs the
/// re-encode it would have saved.
const CACHE_ENTRIES: usize = 1 << 14;

/// One direct-mapped cache line: a per-slot renamed digest keyed by the
/// slot's concrete digest, the code map in force, and the self/final
/// marker. The stored value is a pure function of the key (up to the
/// global 128-bit-collision assumption), so hits, misses and evictions
/// can never change a result — only its cost.
#[derive(Clone, Copy)]
struct CacheEntry {
    slot_digest: u128,
    map_sig: u128,
    mark: u32,
    value: u128,
}

/// Reusable working set for [`canonical_digest`]. The function runs once
/// per fresh concrete state of a symmetry-reduced exploration — millions
/// of calls — so everything the common (unambiguous) path touches lives
/// here and is reused; only the rare residual-ambiguity path allocates.
#[derive(Default)]
struct Scratch {
    /// Per-slot encoding buffer for digest-cache misses.
    member: Vec<u8>,
    /// Byte view of a code map, for signing it.
    sig_buf: Vec<u8>,
    /// Refinement code map: slot → class code (fixed slots: own index).
    map: Vec<u32>,
    /// Candidate renumbering: slot → canonical position.
    rename: Vec<u32>,
    /// Inverse of `rename`: canonical position → slot.
    placed: Vec<u32>,
    /// Live (type, slot) pairs, sorted, for grouping.
    grouped: Vec<(u32, u32)>,
    /// Canonical position pool: the grouped slots in (type, slot) order —
    /// each group's members land on that group's own sorted indices.
    pools: Vec<u32>,
    /// Current member order, type-segregated; refinement permutes within
    /// class ranges only.
    order: Vec<u32>,
    /// Current classes as `[start, end)` ranges into `order`.
    bounds: Vec<(u32, u32)>,
    /// Next round's class ranges.
    next_bounds: Vec<(u32, u32)>,
    /// (digest, slot) pairs while splitting one class.
    keyed: Vec<(u128, u32)>,
    /// The direct-mapped per-slot digest cache (lazily sized).
    cache: Vec<Option<CacheEntry>>,
}

thread_local! {
    static CANON_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Digest of a code map, shared by every member hashed under it.
fn map_sig(map: &[u32], buf: &mut Vec<u8>) -> u128 {
    buf.clear();
    for &x in map {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    fingerprint128_fast(buf)
}

/// The digest of one machine encoded under code map `map`, through the
/// direct-mapped cache. `mark` is the hashed member's own slot index
/// during refinement (its map entry holds [`SELF_CODE`]) or
/// [`FINAL_MARK`] for a final renamed-slot digest, which additionally
/// carries the live tag byte so it matches the per-slot hashing of
/// [`Config::digest`] exactly.
#[allow(clippy::too_many_arguments)]
fn renamed_digest(
    cache: &mut Vec<Option<CacheEntry>>,
    buf: &mut Vec<u8>,
    state: &MachineState,
    slot_digest: u128,
    sig: u128,
    mark: u32,
    map: &[u32],
) -> u128 {
    if cache.is_empty() {
        cache.resize(CACHE_ENTRIES, None);
    }
    let idx = (slot_digest ^ (slot_digest >> 64) ^ sig ^ (sig >> 64) ^ mark as u128) as usize
        & (CACHE_ENTRIES - 1);
    if let Some(e) = &cache[idx] {
        if e.slot_digest == slot_digest && e.map_sig == sig && e.mark == mark {
            return e.value;
        }
    }
    buf.clear();
    if mark == FINAL_MARK {
        buf.push(1);
    }
    state.encode_renamed(buf, map);
    let value = fingerprint128_fast(buf);
    cache[idx] = Some(CacheEntry {
        slot_digest,
        map_sig: sig,
        mark,
        value,
    });
    value
}

/// All orderings of `items` (plain Heap's algorithm; class sizes here
/// are ≤ 6 by the candidate cap).
fn permutations(items: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    fn heap(k: usize, work: &mut [u32], out: &mut Vec<Vec<u32>>) {
        if k <= 1 {
            out.push(work.to_vec());
            return;
        }
        for i in 0..k {
            heap(k - 1, work, out);
            if k.is_multiple_of(2) {
                work.swap(i, k - 1);
            } else {
                work.swap(0, k - 1);
            }
        }
    }
    heap(work.len(), &mut work, &mut out);
    out
}

/// The symmetry-reduced 128-bit fingerprint of a configuration:
/// invariant under type-preserving machine-id permutations (see the
/// module docs for algorithm and soundness), equal only for
/// configurations some such permutation maps onto each other.
///
/// This is strictly coarser than [`Config::digest`] — which is what
/// the checker keys sleep sets and counterexample traces by — and
/// strictly sound for visited-set deduplication.
pub fn canonical_digest(config: &mut Config) -> u128 {
    CANON_SCRATCH.with(|scratch| canonical_digest_with(config, &mut scratch.borrow_mut()))
}

fn canonical_digest_with(config: &mut Config, scratch: &mut Scratch) -> u128 {
    let Scratch {
        member,
        sig_buf,
        map,
        rename,
        placed,
        grouped,
        pools,
        order,
        bounds,
        next_bounds,
        keyed,
        cache,
    } = scratch;
    let (slots, digests) = config.slots_and_digests();
    let n = slots.len();
    let slot_digest = |i: usize| digests[i].expect("digest cache filled").0;

    // 1. Group live slots by type; singleton types and tombstones are
    //    fixed points of every candidate renumbering. `order` holds the
    //    grouped slots type-segregated, one initial class per type.
    grouped.clear();
    for (i, slot) in slots.iter().enumerate() {
        if let Some(state) = slot {
            grouped.push((state.ty.0, i as u32));
        }
    }
    grouped.sort_unstable();
    order.clear();
    bounds.clear();
    let mut i = 0;
    while i < grouped.len() {
        let ty = grouped[i].0;
        let mut j = i + 1;
        while j < grouped.len() && grouped[j].0 == ty {
            j += 1;
        }
        if j - i >= 2 {
            let start = order.len() as u32;
            order.extend(grouped[i..j].iter().map(|&(_, slot)| slot));
            bounds.push((start, order.len() as u32));
        }
        i = j;
    }
    // The canonical position pool: refinement permutes `order` within
    // type segments only, so position `j` of the segment layout always
    // belongs to the same group — member `order[j]` is renamed to
    // `pools[j]`, keeping the renumbering type-preserving.
    pools.clear();
    pools.extend_from_slice(order);

    if bounds.is_empty() {
        // No symmetry to exploit: the orbit is a singleton, and its
        // canonical digest is the (incrementally cached) concrete one.
        return Config::combine_digests(
            slots
                .iter()
                .zip(digests)
                .map(|(m, d)| (m.is_some(), d.expect("digest cache filled").0)),
            n,
        );
    }

    rename.clear();
    rename.extend(0..n as u32);

    // 2. Partition refinement to a fixpoint. Classes are ordered
    //    invariantly: initial order by type id, subclasses by digest.
    loop {
        map.clear();
        map.extend(0..n as u32);
        for (c, &(start, end)) in bounds.iter().enumerate() {
            for &m in &order[start as usize..end as usize] {
                map[m as usize] = n as u32 + c as u32;
            }
        }
        let round_sig = map_sig(map, sig_buf);
        next_bounds.clear();
        let mut split = false;
        for &(start, end) in bounds.iter() {
            if end - start == 1 {
                next_bounds.push((start, end));
                continue;
            }
            keyed.clear();
            for &m in &order[start as usize..end as usize] {
                let saved = map[m as usize];
                map[m as usize] = SELF_CODE;
                let state = slots[m as usize]
                    .as_deref()
                    .expect("grouped slots are live");
                let digest = renamed_digest(
                    cache,
                    member,
                    state,
                    slot_digest(m as usize),
                    round_sig,
                    m,
                    map,
                );
                keyed.push((digest, m));
                map[m as usize] = saved;
            }
            keyed.sort_unstable();
            let mut sub_start = start;
            for (k, &(digest, m)) in keyed.iter().enumerate() {
                order[start as usize + k] = m;
                if k > 0 && digest != keyed[k - 1].0 {
                    next_bounds.push((sub_start, start + k as u32));
                    sub_start = start + k as u32;
                    split = true;
                }
            }
            next_bounds.push((sub_start, end));
        }
        std::mem::swap(bounds, next_bounds);
        if !split {
            break;
        }
    }

    // Base renumbering: member `order[j]` → position `pools[j]` (fixed
    // slots keep their identity entries from above).
    for (j, &m) in order.iter().enumerate() {
        rename[m as usize] = pools[j];
    }

    // 3. Enumerate orderings of the residually ambiguous classes,
    //    freezing the largest ones if the product exceeds the cap. The
    //    common case — refinement separated everything — needs exactly
    //    one candidate and allocates nothing.
    let class_len = |c: usize| (bounds[c].1 - bounds[c].0) as usize;
    let mut ambiguous: Vec<usize> = (0..bounds.len()).filter(|&c| class_len(c) >= 2).collect();
    if ambiguous.is_empty() {
        return candidate_digest(slots, digests, rename, placed, cache, member, sig_buf);
    }
    loop {
        let mut product: usize = 1;
        for &c in &ambiguous {
            product = product.saturating_mul((1..=class_len(c)).product());
        }
        if product <= MAX_CANDIDATES {
            break;
        }
        let largest = (0..ambiguous.len())
            .max_by_key(|&k| class_len(ambiguous[k]))
            .expect("nonempty while over cap");
        ambiguous.remove(largest);
    }
    let orderings: Vec<Vec<Vec<u32>>> = ambiguous
        .iter()
        .map(|&c| permutations(&order[bounds[c].0 as usize..bounds[c].1 as usize]))
        .collect();

    // 4. Try every candidate; the numerically smallest candidate digest
    //    wins. Each round rewrites exactly the ambiguous classes'
    //    entries of `rename` (a candidate permutes a class's members
    //    over the same position range), so the base entries stay valid
    //    throughout.
    let mut best: Option<u128> = None;
    let mut odometer = vec![0usize; ambiguous.len()];
    loop {
        for (k, &c) in ambiguous.iter().enumerate() {
            let start = bounds[c].0 as usize;
            for (t, &m) in orderings[k][odometer[k]].iter().enumerate() {
                rename[m as usize] = pools[start + t];
            }
        }
        let digest = candidate_digest(slots, digests, rename, placed, cache, member, sig_buf);
        best = Some(best.map_or(digest, |b| b.min(digest)));
        // Advance the odometer over candidate orderings.
        let mut k = 0;
        loop {
            if k == odometer.len() {
                return best.expect("at least one candidate");
            }
            odometer[k] += 1;
            if odometer[k] < orderings[k].len() {
                break;
            }
            odometer[k] = 0;
            k += 1;
        }
    }
}

/// One candidate's digest: the [`Config::digest`] polynomial fold over
/// per-slot digests taken in renamed (canonical) order, each slot
/// hashed with its id references rewritten through `rename`. Equal for
/// two candidates exactly when the renamed configurations are equal (up
/// to hash collisions), which is what makes the minimum over candidates
/// a sound orbit key.
fn candidate_digest(
    slots: &[Option<Arc<MachineState>>],
    digests: &[Option<(u128, u32)>],
    rename: &[u32],
    placed: &mut Vec<u32>,
    cache: &mut Vec<Option<CacheEntry>>,
    member: &mut Vec<u8>,
    sig_buf: &mut Vec<u8>,
) -> u128 {
    let n = slots.len();
    let sig = map_sig(rename, sig_buf);
    placed.clear();
    placed.extend(0..n as u32);
    for (i, &p) in rename.iter().enumerate() {
        placed[p as usize] = i as u32;
    }
    Config::combine_digests(
        (0..n).map(|p| {
            let src = placed[p] as usize;
            match &slots[src] {
                None => (false, 0),
                Some(state) => {
                    let slot_digest = digests[src].expect("digest cache filled").0;
                    (
                        true,
                        renamed_digest(cache, member, state, slot_digest, sig, FINAL_MARK, rename),
                    )
                }
            }
        }),
        n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, EventId};
    use crate::value::Value;
    use crate::MachineId;
    use p_ast::{ProgramBuilder, Ty};
    use std::collections::BTreeSet;

    /// One machine type with an id-typed local, an int local, and a
    /// deferrable event — enough structure to build symmetric twins.
    fn program() -> crate::lower::LoweredProgram {
        let mut b = ProgramBuilder::new();
        b.event_with("ping", Ty::Id);
        let mut m = b.machine("M");
        m.var("peer", Ty::Id);
        m.var("n", Ty::Int);
        m.state("A");
        m.finish();
        lower(&b.finish("M")).unwrap()
    }

    fn fresh(k: usize) -> (crate::lower::LoweredProgram, Config, Vec<MachineId>) {
        let p = program();
        let mut c = Config::default();
        let ids: Vec<MachineId> = (0..k).map(|_| c.allocate(&p, p.main)).collect();
        (p, c, ids)
    }

    #[test]
    fn singleton_orbit_fast_path_matches_concrete_digest() {
        // A lone machine admits no symmetry, so the canonical digest
        // short-circuits to the concrete incremental one.
        let (_, mut c, ids) = fresh(1);
        c.machine_mut(ids[0]).unwrap().locals[1] = Value::Int(7);
        let concrete = c.digest();
        assert_eq!(canonical_digest(&mut c), concrete);
    }

    #[test]
    fn digest_invariant_under_swap() {
        // Two machines of one type referencing each other, with equal
        // content up to the id swap.
        let (_, mut c, ids) = fresh(3);
        // Slot 0 is the "home": references both peers — fixed? No: all
        // three are the same type; make slot 0 differ by content so it
        // refines away from the pair.
        c.machine_mut(ids[0]).unwrap().locals[1] = Value::Int(99);
        c.machine_mut(ids[0]).unwrap().locals[0] = Value::Machine(ids[1]);
        c.machine_mut(ids[1]).unwrap().locals[0] = Value::Machine(ids[0]);
        c.machine_mut(ids[2]).unwrap().locals[0] = Value::Machine(ids[0]);
        // Swap ids[1] and ids[2]: a type-preserving permutation.
        let perm = vec![0, 2, 1];
        let mut sym = c.apply_permutation(&perm);
        assert_ne!(c.digest(), sym.digest(), "concrete digests differ");
        assert_eq!(canonical_digest(&mut c), canonical_digest(&mut sym));
    }

    #[test]
    fn digest_distinguishes_content() {
        let (_, mut c, ids) = fresh(2);
        let mut d = c.clone();
        c.machine_mut(ids[0]).unwrap().locals[1] = Value::Int(1);
        d.machine_mut(ids[0]).unwrap().locals[1] = Value::Int(2);
        assert_ne!(canonical_digest(&mut c), canonical_digest(&mut d));
    }

    #[test]
    fn digest_distinguishes_reference_structure() {
        // a→b, b→a  vs  a→a, b→b: same multiset of slot contents under
        // the class-collapsed view, different orbit.
        let (_, mut c, ids) = fresh(2);
        let mut d = c.clone();
        c.machine_mut(ids[0]).unwrap().locals[0] = Value::Machine(ids[1]);
        c.machine_mut(ids[1]).unwrap().locals[0] = Value::Machine(ids[0]);
        d.machine_mut(ids[0]).unwrap().locals[0] = Value::Machine(ids[0]);
        d.machine_mut(ids[1]).unwrap().locals[0] = Value::Machine(ids[1]);
        assert_ne!(canonical_digest(&mut c), canonical_digest(&mut d));
    }

    #[test]
    fn digest_invariant_across_all_permutations_of_four() {
        // Four same-type machines in a ring via queue payloads; every
        // rotation/reflection must canonicalize identically.
        let (_, mut c, ids) = fresh(4);
        for i in 0..4 {
            let next = ids[(i + 1) % 4];
            c.machine_mut(ids[i])
                .unwrap()
                .enqueue(EventId(0), Value::Machine(next));
        }
        let base = canonical_digest(&mut c);
        let mut distinct_concrete = BTreeSet::new();
        for perm in permutations(&[0, 1, 2, 3]) {
            let mut sym = c.apply_permutation(&perm);
            distinct_concrete.insert(sym.digest());
            assert_eq!(canonical_digest(&mut sym), base, "perm {perm:?}");
        }
        // The orbit is genuinely nontrivial: many concrete states, one
        // canonical digest.
        assert!(distinct_concrete.len() > 1);
    }

    #[test]
    fn tombstones_pin_their_slots() {
        let (p, mut c, ids) = fresh(3);
        c.delete(ids[1]);
        let _ = p;
        // Remaining pair {0, 2} still symmetric; swapping them (with the
        // tombstone fixed) preserves the digest.
        let mut sym = c.apply_permutation(&[2, 1, 0]);
        assert_eq!(canonical_digest(&mut c), canonical_digest(&mut sym));
        // But a tombstone is not a live machine.
        let mut live = Config::default();
        for _ in 0..3 {
            live.allocate(&p, p.main);
        }
        assert_ne!(canonical_digest(&mut c), canonical_digest(&mut live));
    }
}
