//! Runtime values and the ⊥-propagating operator semantics.
//!
//! §3 of the paper: "Binary and unary operators evaluate to ⊥ if any of the
//! operand expressions evaluate to ⊥. The value ⊥ arises either as a
//! constant, or if an expression reads a variable whose value is
//! uninitialized, and propagates through operators in an expression."

use std::fmt;

use p_ast::{BinOp, UnOp};

use crate::lower::EventId;
use crate::MachineId;

/// A P runtime value.
///
/// # Examples
///
/// ```
/// use p_semantics::Value;
/// use p_ast::BinOp;
///
/// let v = Value::binary(BinOp::Add, &Value::Int(2), &Value::Int(3));
/// assert_eq!(v, Value::Int(5));
/// // ⊥ propagates:
/// assert_eq!(Value::binary(BinOp::Add, &Value::Null, &Value::Int(3)), Value::Null);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// The undefined value ⊥.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An event name.
    Event(EventId),
    /// A machine identifier.
    Machine(MachineId),
}

impl Value {
    /// Whether this value is ⊥.
    pub fn is_null(self) -> bool {
        self == Value::Null
    }

    /// Extracts a boolean, or `None` for ⊥ and other types.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts an integer, or `None`.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Extracts a machine reference, or `None`.
    pub fn as_machine(self) -> Option<MachineId> {
        match self {
            Value::Machine(m) => Some(m),
            _ => None,
        }
    }

    /// Extracts an event value, or `None`.
    pub fn as_event(self) -> Option<EventId> {
        match self {
            Value::Event(e) => Some(e),
            _ => None,
        }
    }

    /// Applies a unary operator with ⊥ propagation.
    ///
    /// Type mismatches (e.g. `!3`) also yield ⊥; the static type checker
    /// rules them out for checked programs.
    pub fn unary(op: UnOp, v: &Value) -> Value {
        match (op, v) {
            (_, Value::Null) => Value::Null,
            (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
            (UnOp::Neg, Value::Int(i)) => Value::Int(i.wrapping_neg()),
            _ => Value::Null,
        }
    }

    /// Applies a binary operator with ⊥ propagation.
    ///
    /// Division by zero yields ⊥. Equality is defined across all value
    /// forms (events can be compared with `msg`, machine ids with each
    /// other); ordering is defined only on integers.
    pub fn binary(op: BinOp, a: &Value, b: &Value) -> Value {
        if a.is_null() || b.is_null() {
            return Value::Null;
        }
        match op {
            BinOp::Eq => Value::Bool(a == b),
            BinOp::Ne => Value::Bool(a != b),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => match op {
                    BinOp::Add => Value::Int(x.wrapping_add(y)),
                    BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                    BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                    BinOp::Div => {
                        if y == 0 {
                            Value::Null
                        } else {
                            Value::Int(x.wrapping_div(y))
                        }
                    }
                    _ => unreachable!(),
                },
                _ => Value::Null,
            },
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => Value::Bool(match op {
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    BinOp::Ge => x >= y,
                    _ => unreachable!(),
                }),
                _ => Value::Null,
            },
            BinOp::And | BinOp::Or => match (a.as_bool(), b.as_bool()) {
                (Some(x), Some(y)) => Value::Bool(match op {
                    BinOp::And => x && y,
                    BinOp::Or => x || y,
                    _ => unreachable!(),
                }),
                _ => Value::Null,
            },
        }
    }

    /// Serializes the value as [`Value::encode`] does, but with machine
    /// ids rewritten through `map` (ids beyond `map`'s length pass
    /// through unchanged). This is the primitive the canonicalization
    /// layer uses to hash a configuration under a candidate renumbering
    /// without materializing the renamed configuration.
    pub(crate) fn encode_renamed(&self, out: &mut Vec<u8>, map: &[u32]) {
        match self {
            Value::Machine(m) => {
                out.push(4);
                let renamed = map.get(m.0 as usize).copied().unwrap_or(m.0);
                out.extend_from_slice(&renamed.to_le_bytes());
            }
            other => other.encode(out),
        }
    }

    /// Serializes the value into `out` for configuration hashing.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Event(e) => {
                out.push(3);
                out.extend_from_slice(&e.0.to_le_bytes());
            }
            Value::Machine(m) => {
                out.push(4);
                out.extend_from_slice(&m.0.to_le_bytes());
            }
        }
    }

    /// Inverse of [`Value::encode`]: consumes one value from the front
    /// of `buf`, or returns `None` on a malformed prefix. Round-tripping
    /// is what lets checkpoints persist frontier configurations.
    pub(crate) fn decode(buf: &mut &[u8]) -> Option<Value> {
        use crate::wire::{read_u32, read_u8};
        Some(match read_u8(buf)? {
            0 => Value::Null,
            1 => Value::Bool(match read_u8(buf)? {
                0 => false,
                1 => true,
                _ => return None,
            }),
            2 => {
                let bytes = crate::wire::take(buf, 8)?;
                Value::Int(i64::from_le_bytes(bytes.try_into().ok()?))
            }
            3 => Value::Event(EventId(read_u32(buf)?)),
            4 => Value::Machine(MachineId(read_u32(buf)?)),
            _ => return None,
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Event(e) => write!(f, "event#{}", e.0),
            Value::Machine(m) => write!(f, "machine#{}", m.0),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_propagates_through_all_operators() {
        for op in [BinOp::Add, BinOp::Eq, BinOp::Lt, BinOp::And] {
            assert_eq!(Value::binary(op, &Value::Null, &Value::Int(1)), Value::Null);
            assert_eq!(Value::binary(op, &Value::Int(1), &Value::Null), Value::Null);
        }
        assert_eq!(Value::unary(UnOp::Not, &Value::Null), Value::Null);
        assert_eq!(Value::unary(UnOp::Neg, &Value::Null), Value::Null);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            Value::binary(BinOp::Sub, &Value::Int(5), &Value::Int(7)),
            Value::Int(-2)
        );
        assert_eq!(
            Value::binary(BinOp::Mul, &Value::Int(4), &Value::Int(3)),
            Value::Int(12)
        );
        assert_eq!(
            Value::binary(BinOp::Div, &Value::Int(9), &Value::Int(2)),
            Value::Int(4)
        );
    }

    #[test]
    fn division_by_zero_is_bottom() {
        assert_eq!(
            Value::binary(BinOp::Div, &Value::Int(1), &Value::Int(0)),
            Value::Null
        );
    }

    #[test]
    fn equality_across_kinds() {
        assert_eq!(
            Value::binary(
                BinOp::Eq,
                &Value::Event(EventId(2)),
                &Value::Event(EventId(2))
            ),
            Value::Bool(true)
        );
        assert_eq!(
            Value::binary(
                BinOp::Ne,
                &Value::Machine(MachineId(0)),
                &Value::Machine(MachineId(1))
            ),
            Value::Bool(true)
        );
        // Cross-kind equality is simply false (both defined).
        assert_eq!(
            Value::binary(BinOp::Eq, &Value::Int(1), &Value::Bool(true)),
            Value::Bool(false)
        );
    }

    #[test]
    fn type_mismatch_yields_bottom() {
        assert_eq!(
            Value::binary(BinOp::Add, &Value::Bool(true), &Value::Int(1)),
            Value::Null
        );
        assert_eq!(Value::unary(UnOp::Not, &Value::Int(3)), Value::Null);
    }

    #[test]
    fn comparison_and_logic() {
        assert_eq!(
            Value::binary(BinOp::Le, &Value::Int(2), &Value::Int(2)),
            Value::Bool(true)
        );
        assert_eq!(
            Value::binary(BinOp::And, &Value::Bool(true), &Value::Bool(false)),
            Value::Bool(false)
        );
        assert_eq!(
            Value::binary(BinOp::Or, &Value::Bool(false), &Value::Bool(true)),
            Value::Bool(true)
        );
    }

    #[test]
    fn encoding_is_injective_on_samples() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(1),
            Value::Event(EventId(0)),
            Value::Machine(MachineId(0)),
        ];
        let mut encodings = std::collections::HashSet::new();
        for v in &values {
            let mut bytes = Vec::new();
            v.encode(&mut bytes);
            assert!(encodings.insert(bytes), "duplicate encoding for {v}");
        }
    }

    #[test]
    fn wrapping_instead_of_panicking() {
        assert_eq!(
            Value::binary(BinOp::Add, &Value::Int(i64::MAX), &Value::Int(1)),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            Value::unary(UnOp::Neg, &Value::Int(i64::MIN)),
            Value::Int(i64::MIN)
        );
    }
}
