//! Runtime/verification errors — the error transitions of Figure 6, plus
//! the diagnostics this implementation adds (undefined conditions, fuel
//! exhaustion).

use std::error::Error;
use std::fmt;

use crate::lower::EventId;
use crate::MachineId;

/// Why an execution reached the `error` configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// `assert(e)` evaluated to `false` (rule ASSERT-FAIL).
    AssertionFailure,
    /// `assert(e)` evaluated to ⊥ or a non-boolean — no rule applies, so
    /// the configuration is erroneous.
    AssertionUndefined,
    /// `send(r, e, ..)` where `r` evaluated to ⊥ (rule SEND-FAIL1).
    SendToUndefined,
    /// `send(r, e, ..)` where `r` named a deleted machine (rule
    /// SEND-FAIL2).
    SendToDeleted {
        /// The deleted target.
        target: MachineId,
    },
    /// The call stack emptied while an event was unhandled (rule POP-FAIL)
    /// — the *unhandled event* violation at the core of P's
    /// responsiveness guarantee.
    UnhandledEvent {
        /// The event nobody handled.
        event: EventId,
    },
    /// An `if`/`while` condition evaluated to ⊥ or a non-boolean.
    UndefinedCondition,
    /// A `return` popped the last frame off the call stack, leaving the
    /// machine with no state (rule POP-FAIL applied after POP2).
    StackUnderflow,
    /// The machine executed more small steps than the configured fuel
    /// without reaching a scheduling point — it can run forever without
    /// being disabled, violating the first liveness property of §3.2.
    FuelExhausted,
}

impl ErrorKind {
    /// Short machine-readable tag, used in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ErrorKind::AssertionFailure => "assertion-failure",
            ErrorKind::AssertionUndefined => "assertion-undefined",
            ErrorKind::SendToUndefined => "send-to-undefined",
            ErrorKind::SendToDeleted { .. } => "send-to-deleted",
            ErrorKind::UnhandledEvent { .. } => "unhandled-event",
            ErrorKind::UndefinedCondition => "undefined-condition",
            ErrorKind::StackUnderflow => "stack-underflow",
            ErrorKind::FuelExhausted => "fuel-exhausted",
        }
    }
}

/// A fatal engine-level failure: the execution request itself was
/// malformed, as opposed to a [`PError`], which is a legal error
/// *transition* of the program under test.
///
/// These used to abort the process (`panic!`/`unreachable!` on the
/// exploration hot path); they now surface as typed errors so a malformed
/// lowering or an engine bug is reported through the checker's normal
/// error channel instead of killing a worker thread mid-search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// `run_machine` was asked to run a machine whose slot is dead
    /// (deleted or never allocated).
    DeadMachine {
        /// The requested machine id.
        machine: MachineId,
    },
    /// A machine's continuation or call stack violated an interpreter
    /// invariant (e.g. a `Seq` instruction pointing at a non-block
    /// statement) — the lowered program or a stored continuation is
    /// corrupt.
    CorruptContinuation {
        /// The machine being executed.
        machine: MachineId,
        /// Which invariant was violated.
        detail: &'static str,
    },
    /// A compiled execution backend was attached for a different program
    /// than the one the engine interprets (program digest mismatch).
    CompiledMismatch {
        /// Digest of the interpreter's lowered program.
        expected: u128,
        /// Digest baked into the compiled backend.
        found: u128,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DeadMachine { machine } => {
                write!(f, "run_machine called on dead machine {machine}")
            }
            ExecError::CorruptContinuation { machine, detail } => {
                write!(f, "machine {machine}: corrupt continuation: {detail}")
            }
            ExecError::CompiledMismatch { expected, found } => write!(
                f,
                "compiled backend was generated from a different program \
                 (expected digest {expected:032x}, found {found:032x})"
            ),
        }
    }
}

impl Error for ExecError {}

/// An error transition, attributed to the machine that took it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// The machine executing when the error occurred.
    pub machine: MachineId,
}

impl PError {
    /// Creates an error record.
    pub fn new(kind: ErrorKind, machine: MachineId) -> PError {
        PError { kind, machine }
    }
}

impl fmt::Display for PError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::AssertionFailure => {
                write!(f, "machine {}: assertion failed", self.machine)
            }
            ErrorKind::AssertionUndefined => {
                write!(f, "machine {}: assertion evaluated to null", self.machine)
            }
            ErrorKind::SendToUndefined => {
                write!(f, "machine {}: send target is null", self.machine)
            }
            ErrorKind::SendToDeleted { target } => write!(
                f,
                "machine {}: send to deleted machine {}",
                self.machine, target
            ),
            ErrorKind::UnhandledEvent { event } => {
                write!(f, "machine {}: unhandled event #{}", self.machine, event.0)
            }
            ErrorKind::UndefinedCondition => write!(
                f,
                "machine {}: branch condition evaluated to null",
                self.machine
            ),
            ErrorKind::StackUnderflow => write!(
                f,
                "machine {}: return popped the last call-stack frame",
                self.machine
            ),
            ErrorKind::FuelExhausted => write!(
                f,
                "machine {}: ran past its step budget without reaching a scheduling point",
                self.machine
            ),
        }
    }
}

impl Error for PError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_machine_and_kind() {
        let e = PError::new(ErrorKind::AssertionFailure, MachineId(3));
        assert!(e.to_string().contains("#3"));
        assert!(e.to_string().contains("assertion"));
        let e = PError::new(
            ErrorKind::UnhandledEvent { event: EventId(7) },
            MachineId(0),
        );
        assert!(e.to_string().contains("unhandled"));
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn tags_are_distinct() {
        let kinds = [
            ErrorKind::AssertionFailure,
            ErrorKind::AssertionUndefined,
            ErrorKind::SendToUndefined,
            ErrorKind::SendToDeleted {
                target: MachineId(0),
            },
            ErrorKind::UnhandledEvent { event: EventId(0) },
            ErrorKind::UndefinedCondition,
            ErrorKind::StackUnderflow,
            ErrorKind::FuelExhausted,
        ];
        let tags: std::collections::HashSet<_> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), kinds.len());
    }
}
