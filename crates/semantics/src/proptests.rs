//! Property-based tests over the execution engine.

use proptest::prelude::*;

use crate::{lower, Config, Engine, ExecOutcome, ForeignEnv, Granularity, MachineId, Script};

/// A small two-machine program whose ghost driver makes `rounds` nondet
/// choices, so runs are parameterized by a choice script.
fn choosy_program(rounds: i64) -> crate::LoweredProgram {
    let src = format!(
        r#"
        event a : int;
        machine Sink {{
            var total : int;
            state S {{ on a do add; }}
            action add {{ total := total + arg; }}
        }}
        ghost machine Env {{
            var s : id;
            var n : int;
            state D {{
                entry {{
                    s := new Sink(total = 0);
                    n := {rounds};
                    while (n > 0) {{
                        n := n - 1;
                        if (*) {{
                            send(s, a, n + 1);
                        }}
                    }}
                }}
            }}
        }}
        main Env();
        "#
    );
    lower(&p_parser::parse(&src).unwrap()).unwrap()
}

/// Runs every enabled machine in ascending id order with the given choice
/// bits until quiescence; returns the final canonical state.
fn run_schedule(program: &crate::LoweredProgram, bits: &[bool]) -> Option<Vec<u8>> {
    let engine = Engine::new(program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let mut script = Script::new(bits);
    for _ in 0..1000 {
        let enabled = engine.enabled_machines(&config);
        let Some(&id) = enabled.first() else {
            return Some(config.canonical_bytes());
        };
        let r = engine
            .run_machine(&mut config, id, &mut script, Granularity::Atomic)
            .unwrap();
        match r.outcome {
            ExecOutcome::NeedChoice => return None,
            ExecOutcome::Error(_) => return Some(config.canonical_bytes()),
            _ => {}
        }
    }
    Some(config.canonical_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine is deterministic: the same program, schedule policy and
    /// choice script always produce the identical canonical state.
    #[test]
    fn engine_is_deterministic(bits in proptest::collection::vec(any::<bool>(), 0..12)) {
        let program = choosy_program(4);
        let first = run_schedule(&program, &bits);
        let second = run_schedule(&program, &bits);
        prop_assert_eq!(first, second);
    }

    /// Extending a script beyond what a run consumes never changes the
    /// outcome (scripts are consumed strictly left to right).
    #[test]
    fn unused_script_suffix_is_inert(
        bits in proptest::collection::vec(any::<bool>(), 4..8),
        suffix in proptest::collection::vec(any::<bool>(), 0..6),
    ) {
        let program = choosy_program(2);
        let base = run_schedule(&program, &bits);
        prop_assume!(base.is_some());
        let mut extended = bits.clone();
        extended.extend(suffix);
        prop_assert_eq!(base, run_schedule(&program, &extended));
    }

    /// The sink's final total is exactly the sum selected by the true
    /// bits — the engine faithfully routes payloads.
    #[test]
    fn payload_routing_matches_choices(bits in proptest::collection::vec(any::<bool>(), 3..=3)) {
        let program = choosy_program(3);
        let engine = Engine::new(&program, ForeignEnv::empty());
        let mut config = engine.initial_config();
        let mut script = Script::new(&bits);
        for _ in 0..100 {
            let enabled = engine.enabled_machines(&config);
            let Some(&id) = enabled.first() else { break };
            let r = engine.run_machine(&mut config, id, &mut script, Granularity::Atomic).unwrap();
            prop_assert!(!matches!(r.outcome, ExecOutcome::Error(_) | ExecOutcome::NeedChoice));
        }
        // Env counts n = 2,1,0 sending n+1 ∈ {3,2,1} when the bit is true.
        let expected: i64 = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| 3 - i as i64)
            .sum();
        let sink = MachineId(1);
        let total = config.machine(sink).map(|m| m.locals[0]);
        prop_assert_eq!(total, Some(crate::Value::Int(expected)));
    }

    /// The incremental digest tracks the canonical encoding exactly:
    /// along a random mutation walk, two configurations digest equal iff
    /// their canonical byte encodings are equal, and the incremental
    /// (cached) digest always agrees with a from-scratch recomputation.
    #[test]
    fn digest_equal_iff_canonical_bytes_equal(
        bits_a in proptest::collection::vec(any::<bool>(), 0..10),
        bits_b in proptest::collection::vec(any::<bool>(), 0..10),
        steps_a in 0usize..6,
        steps_b in 0usize..6,
    ) {
        let program = choosy_program(4);
        let a = walk(&program, &bits_a, steps_a);
        let b = walk(&program, &bits_b, steps_b);
        let (mut a, mut b) = match (a, b) {
            (Some(a), Some(b)) => (a, b),
            _ => return Ok(()),
        };
        prop_assert_eq!(a.digest(), a.digest_uncached());
        prop_assert_eq!(b.digest(), b.digest_uncached());
        prop_assert_eq!(a.encoded_len(), a.canonical_bytes().len());
        let bytes_equal = a.canonical_bytes() == b.canonical_bytes();
        let digests_equal = a.digest() == b.digest();
        prop_assert_eq!(bytes_equal, digests_equal);
    }

    /// The per-slot digest cache survives arbitrary interleavings of
    /// mutation and digest queries: re-digesting after every single run
    /// matches digesting only at the end.
    #[test]
    fn incremental_digest_matches_uncached_along_walks(
        bits in proptest::collection::vec(any::<bool>(), 0..12),
        queries in proptest::collection::vec(any::<bool>(), 8..=8),
    ) {
        let program = choosy_program(4);
        let engine = Engine::new(&program, ForeignEnv::empty());
        let mut config = engine.initial_config();
        let mut script = Script::new(&bits);
        for &query in &queries {
            if query {
                prop_assert_eq!(config.digest(), config.digest_uncached());
            }
            let enabled = engine.enabled_machines(&config);
            let Some(&id) = enabled.first() else { break };
            let r = engine.run_machine(&mut config, id, &mut script, Granularity::Atomic).unwrap();
            if matches!(r.outcome, ExecOutcome::NeedChoice) {
                return Ok(());
            }
        }
        prop_assert_eq!(config.digest(), config.digest_uncached());
    }

    /// The canonical (symmetry-reduced) digest is invariant under every
    /// permutation of the interchangeable `Sink` machines, at every
    /// reachable configuration — the soundness contract of
    /// `canonical_digest`.
    #[test]
    fn canonical_digest_invariant_under_sink_permutation(
        bits in proptest::collection::vec(any::<bool>(), 0..12),
        steps in 0usize..8,
        perm_idx in 0usize..6,
    ) {
        let program = symmetric_sinks_program(4);
        let Some(config) = walk(&program, &bits, steps) else { return Ok(()) };
        // Env is slot 0; the three Sinks (when created) are slots 1–3.
        const PERMS: [[u32; 3]; 6] = [
            [1, 2, 3], [1, 3, 2], [2, 1, 3], [2, 3, 1], [3, 1, 2], [3, 2, 1],
        ];
        let n = config.created_count();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        if n >= 4 {
            perm[1..4].copy_from_slice(&PERMS[perm_idx]);
        }
        let mut sym = config.apply_permutation(&perm);
        let mut config = config;
        prop_assert_eq!(crate::canonical_digest(&mut config), crate::canonical_digest(&mut sym));
        // And the concrete digest of the permuted configuration still
        // matches its own canonical bytes (apply_permutation produces a
        // well-formed configuration).
        prop_assert_eq!(sym.digest_uncached(), sym.clone().digest());
    }

    /// The delta-maintained digest equals the from-scratch reference
    /// under *arbitrary* slot-level mutation sequences — mutate, delete
    /// (tombstones), allocate, take/restore (the self-send path), and
    /// interning — with digest queries interleaved at every prefix, so
    /// the subtract-old/add-new accumulator can never drift from
    /// `digest_uncached`.
    #[test]
    fn delta_digest_matches_reference_under_op_sequences(
        ops in proptest::collection::vec((0u8..6, any::<u16>(), any::<bool>()), 0..24),
    ) {
        let program = choosy_program(2);
        let engine = Engine::new(&program, ForeignEnv::empty());
        let mut config = engine.initial_config();
        let mut interner = crate::SlotInterner::new();
        for &(op, seed, query) in &ops {
            let n = config.created_count();
            let id = MachineId(seed as u32 % n.max(1) as u32);
            match op {
                // Mutate one live machine's locals in place.
                0 => {
                    if let Some(m) = config.machine_mut(id) {
                        m.locals[0] = crate::Value::Int(seed as i64);
                    }
                }
                // Enqueue into one live machine (queue dedups).
                1 => {
                    if let Some(m) = config.machine_mut(id) {
                        m.enqueue(crate::lower::EventId(0), crate::Value::Int(seed as i64 % 4));
                    }
                }
                // Delete: leaves a tombstone slot.
                2 => config.delete(id),
                // Allocate a fresh machine.
                3 => {
                    config.allocate(&program, program.main);
                }
                // Take + mutate + restore — the run_machine self-send
                // shape, exercising tombstone-cache invalidation.
                4 => {
                    if let Some(mut taken) = config.take_machine(id) {
                        if query {
                            // Digest the tombstoned view before restore.
                            prop_assert_eq!(config.digest(), config.digest_uncached());
                        }
                        std::sync::Arc::make_mut(&mut taken).locals[0] =
                            crate::Value::Int(-(seed as i64));
                        config.restore_machine(id, taken);
                    }
                }
                // Intern: must never change digests or equality.
                _ => {
                    config.intern_slots(&mut interner);
                }
            }
            if query {
                prop_assert_eq!(config.digest(), config.digest_uncached());
                prop_assert_eq!(config.encoded_len(), config.canonical_bytes().len());
            }
        }
        prop_assert_eq!(config.digest(), config.digest_uncached());
        prop_assert_eq!(config.encoded_len(), config.canonical_bytes().len());
        // And the digest round-trips through the canonical encoding.
        let mut back = Config::from_canonical_bytes(
            &config.canonical_bytes(),
            program.event_count(),
        ).expect("canonical bytes round trip");
        prop_assert_eq!(back.digest(), config.digest());
    }

    /// Queues never hold duplicate (event, payload) pairs in any reachable
    /// configuration.
    #[test]
    fn no_queue_duplicates_anywhere(bits in proptest::collection::vec(any::<bool>(), 0..10)) {
        let program = choosy_program(4);
        let engine = Engine::new(&program, ForeignEnv::empty());
        let mut config = engine.initial_config();
        let mut script = Script::new(&bits);
        for _ in 0..200 {
            check_no_dups(&config);
            let enabled = engine.enabled_machines(&config);
            let Some(&id) = enabled.first() else { break };
            let r = engine.run_machine(&mut config, id, &mut script, Granularity::Atomic).unwrap();
            if matches!(r.outcome, ExecOutcome::NeedChoice) {
                break;
            }
        }
    }
}

/// Like [`choosy_program`], but the driver spreads its sends over three
/// interchangeable `Sink` machines — the orbit structure the symmetry
/// proptest permutes.
fn symmetric_sinks_program(rounds: i64) -> crate::LoweredProgram {
    let src = format!(
        r#"
        event a : int;
        machine Sink {{
            var total : int;
            state S {{ on a do add; }}
            action add {{ total := total + arg; }}
        }}
        ghost machine Env {{
            var s1 : id;
            var s2 : id;
            var s3 : id;
            var n : int;
            state D {{
                entry {{
                    s1 := new Sink(total = 0);
                    s2 := new Sink(total = 0);
                    s3 := new Sink(total = 0);
                    n := {rounds};
                    while (n > 0) {{
                        n := n - 1;
                        if (*) {{
                            send(s1, a, n);
                        }} else {{
                            if (*) {{
                                send(s2, a, n);
                            }} else {{
                                send(s3, a, n);
                            }}
                        }}
                    }}
                }}
            }}
        }}
        main Env();
        "#
    );
    lower(&p_parser::parse(&src).unwrap()).unwrap()
}

/// Advances the initial configuration by up to `steps` atomic runs
/// (lowest enabled machine first) under `bits`; `None` if the script
/// runs dry.
fn walk(program: &crate::LoweredProgram, bits: &[bool], steps: usize) -> Option<Config> {
    let engine = Engine::new(program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let mut script = Script::new(bits);
    for _ in 0..steps {
        let enabled = engine.enabled_machines(&config);
        let Some(&id) = enabled.first() else { break };
        let r = engine
            .run_machine(&mut config, id, &mut script, Granularity::Atomic)
            .unwrap();
        if matches!(r.outcome, ExecOutcome::NeedChoice) {
            return None;
        }
    }
    Some(config)
}

fn check_no_dups(config: &Config) {
    for id in config.live_ids() {
        let m = config.machine(id).unwrap();
        for (i, a) in m.queue.iter().enumerate() {
            for b in &m.queue[i + 1..] {
                assert_ne!(a, b, "duplicate queue entry at {id}");
            }
        }
    }
}
