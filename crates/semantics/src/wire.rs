//! Minimal byte-reader helpers shared by the configuration decoders.
//!
//! The canonical encoding produced by `Config::canonical_bytes` doubles
//! as the checkpoint wire format for frontier configurations, so the
//! decoders in `config.rs` / `value.rs` need a common way to consume
//! little-endian scalars from a shrinking slice. Every reader returns
//! `None` on underflow; callers treat that as "malformed input", never
//! as a panic.

/// Splits `n` bytes off the front of `buf`, or `None` on underflow.
pub(crate) fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Some(head)
}

/// Reads one byte.
pub(crate) fn read_u8(buf: &mut &[u8]) -> Option<u8> {
    take(buf, 1).map(|b| b[0])
}

/// Reads a little-endian `u32`.
pub(crate) fn read_u32(buf: &mut &[u8]) -> Option<u32> {
    take(buf, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_consume_and_bound_check() {
        let bytes = [7u8, 1, 0, 0, 0, 9];
        let mut cur = &bytes[..];
        assert_eq!(read_u8(&mut cur), Some(7));
        assert_eq!(read_u32(&mut cur), Some(1));
        assert_eq!(cur, &[9]);
        assert_eq!(read_u32(&mut cur), None, "underflow must not consume");
        assert_eq!(read_u8(&mut cur), Some(9));
        assert_eq!(read_u8(&mut cur), None);
    }
}
