//! Behavioral tests for the execution engine: one test per operational
//! rule or rule interaction of Figures 4–6.

use p_ast::{BinOp, Expr, ProgramBuilder, Stmt, Ty};

use crate::{
    lower, Config, Engine, ErrorKind, ExecOutcome, ForeignEnv, ForeignRegistry, Granularity,
    MachineId, Script, Value, YieldKind,
};

fn no_choices() -> impl FnMut() -> bool {
    || panic!("unexpected nondeterministic choice in a real machine")
}

/// Runs machine 0 until it blocks, panicking on errors. Returns the config.
fn run_main_to_block(engine: &Engine<'_>) -> Config {
    let mut config = engine.initial_config();
    let id = MachineId(0);
    let mut choices = no_choices();
    loop {
        let r = engine
            .run_machine(&mut config, id, &mut choices, Granularity::Atomic)
            .unwrap();
        match r.outcome {
            ExecOutcome::Blocked => return config,
            ExecOutcome::Yield(_) => continue,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}

fn state_name(engine: &Engine<'_>, config: &Config, id: MachineId) -> String {
    let m = config.machine(id).unwrap();
    engine
        .program()
        .state_name(m.ty, m.current_state())
        .to_owned()
}

#[test]
fn entry_statement_runs_and_machine_blocks() {
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    m.state("Init").entry(Stmt::assign(x, Expr::int(41)));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(41)
    );
}

#[test]
fn raise_takes_step_transition_and_runs_exit_entry() {
    let mut b = ProgramBuilder::new();
    b.event("go");
    let mut m = b.machine("M");
    m.var("trace", Ty::Int);
    let trace = m.sym("trace");
    let go = m.sym("go");
    // trace records the order: entry A (+1), exit A (*10 then +2), entry B (*10+3)
    let bump = |mul: i64, add: i64| {
        Stmt::assign(
            trace,
            Expr::binary(
                BinOp::Add,
                Expr::binary(BinOp::Mul, Expr::name(trace), Expr::int(mul)),
                Expr::int(add),
            ),
        )
    };
    m.state("A")
        .entry(Stmt::block(vec![
            Stmt::assign(trace, Expr::int(1)),
            Stmt::raise(go),
        ]))
        .exit(bump(10, 2));
    m.state("B").entry(bump(10, 3));
    m.step("A", "go", "B");
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    // 1 → exit: 12 → entry B: 123.
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(123)
    );
    assert_eq!(state_name(&engine, &config, MachineId(0)), "B");
}

#[test]
fn raise_discards_rest_of_statement() {
    let mut b = ProgramBuilder::new();
    b.event("go");
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    let go = m.sym("go");
    m.state("A").entry(Stmt::block(vec![
        Stmt::raise(go),
        Stmt::assign(x, Expr::int(99)), // must never run
    ]));
    m.state("B");
    m.step("A", "go", "B");
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    assert_eq!(config.machine(MachineId(0)).unwrap().locals[0], Value::Null);
}

#[test]
fn unhandled_event_error_on_empty_stack() {
    let mut b = ProgramBuilder::new();
    b.event("boom");
    let mut m = b.machine("M");
    let boom = m.sym("boom");
    m.state("A").entry(Stmt::raise(boom));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let r = engine
        .run_machine(
            &mut config,
            MachineId(0),
            &mut no_choices(),
            Granularity::Atomic,
        )
        .unwrap();
    match r.outcome {
        ExecOutcome::Error(e) => {
            assert!(matches!(e.kind, ErrorKind::UnhandledEvent { .. }));
        }
        other => panic!("expected unhandled-event error, got {other:?}"),
    }
}

#[test]
fn call_transition_pushes_and_return_pops() {
    let mut b = ProgramBuilder::new();
    b.event("enterSub");
    b.event("done");
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    let enter = m.sym("enterSub");
    m.state("Main").entry(Stmt::raise(enter));
    m.state("Sub").entry(Stmt::block(vec![
        Stmt::assign(x, Expr::int(7)),
        Stmt::ret(),
    ]));
    m.call("Main", "enterSub", "Sub");
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    let machine = config.machine(MachineId(0)).unwrap();
    assert_eq!(machine.locals[0], Value::Int(7));
    // After return we are back in Main with a single frame.
    assert_eq!(machine.stack.len(), 1);
    assert_eq!(state_name(&engine, &config, MachineId(0)), "Main");
}

#[test]
fn callee_inherits_deferred_and_actions_from_caller() {
    // Caller defers `d` and binds `a` to an action; callee handles
    // neither, so both must be inherited: `d` stays deferred, `a` runs the
    // caller's action without leaving the callee state.
    let mut b = ProgramBuilder::new();
    b.event("enterSub");
    b.event("d");
    b.event("a");
    let mut m = b.machine("M");
    m.var("hits", Ty::Int);
    let hits = m.sym("hits");
    let enter = m.sym("enterSub");
    m.action(
        "count",
        Stmt::assign(
            hits,
            Expr::binary(BinOp::Add, Expr::name(hits), Expr::int(1)),
        ),
    );
    m.state("Main").defer(&["d"]).entry(Stmt::block(vec![
        Stmt::assign(hits, Expr::int(0)),
        Stmt::raise(enter),
    ]));
    m.bind("Main", "a", "count");
    m.state("Sub");
    m.call("Main", "enterSub", "Sub");
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = run_main_to_block(&engine);
    let d = program.event_id_named("d").unwrap();
    let a = program.event_id_named("a").unwrap();
    {
        let machine = config.machine_mut(MachineId(0)).unwrap();
        assert_eq!(machine.stack.len(), 2, "must be inside Sub");
        machine.enqueue(d, Value::Null);
        machine.enqueue(a, Value::Null);
    }
    // Run again: `d` is inherited-deferred and skipped; `a` runs the
    // inherited action.
    let mut choices = no_choices();
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Blocked);
    let machine = config.machine(MachineId(0)).unwrap();
    assert_eq!(
        machine.locals[0],
        Value::Int(1),
        "inherited action ran once"
    );
    assert_eq!(machine.stack.len(), 2, "action does not pop the callee");
    assert_eq!(machine.queue.len(), 1, "deferred event still queued");
}

#[test]
fn transition_in_callee_overrides_inherited_deferral() {
    // The DEQUEUE rule: d' = (d ∪ Deferred(m,n)) - t. An event deferred by
    // the caller but with a transition in the callee is dequeuable.
    let mut b = ProgramBuilder::new();
    b.event("enterSub");
    b.event("d");
    let mut m = b.machine("M");
    let enter = m.sym("enterSub");
    m.state("Main").defer(&["d"]).entry(Stmt::raise(enter));
    m.state("Sub");
    m.state("Handled");
    m.call("Main", "enterSub", "Sub");
    m.step("Sub", "d", "Handled");
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = run_main_to_block(&engine);
    let d = program.event_id_named("d").unwrap();
    config
        .machine_mut(MachineId(0))
        .unwrap()
        .enqueue(d, Value::Null);
    let mut choices = no_choices();
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Blocked);
    assert_eq!(state_name(&engine, &config, MachineId(0)), "Handled");
}

#[test]
fn pop_redispatches_unhandled_event_in_caller() {
    // Callee does not handle `u`; caller has a step for it. POP1 then STEP.
    let mut b = ProgramBuilder::new();
    b.event("enterSub");
    b.event("u");
    let mut m = b.machine("M");
    let enter = m.sym("enterSub");
    m.state("Main").entry(Stmt::raise(enter));
    m.state("Sub");
    m.state("After");
    m.call("Main", "enterSub", "Sub");
    m.step("Main", "u", "After");
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = run_main_to_block(&engine);
    let u = program.event_id_named("u").unwrap();
    config
        .machine_mut(MachineId(0))
        .unwrap()
        .enqueue(u, Value::Null);
    let mut choices = no_choices();
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Blocked);
    let machine = config.machine(MachineId(0)).unwrap();
    assert_eq!(machine.stack.len(), 1, "callee frame popped");
    assert_eq!(state_name(&engine, &config, MachineId(0)), "After");
}

#[test]
fn send_yields_and_enqueues_with_dedup() {
    let mut b = ProgramBuilder::new();
    b.event("ping");
    let mut m = b.machine("Sender");
    m.var("peer", Ty::Id);
    let peer = m.sym("peer");
    let ping = m.sym("ping");
    let receiver = m.sym("Receiver");
    m.state("Init").entry(Stmt::block(vec![
        Stmt::new_machine(peer, receiver, vec![]),
        Stmt::send(Expr::name(peer), ping),
        Stmt::send(Expr::name(peer), ping), // duplicate: ⊕ drops it
    ]));
    m.finish();
    let mut r = b.machine("Receiver");
    r.state("Idle").defer(&["ping"]);
    r.finish();
    let program = lower(&b.finish("Sender")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let mut choices = no_choices();

    let r1 = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    assert!(matches!(
        r1.outcome,
        ExecOutcome::Yield(YieldKind::Created { .. })
    ));
    let r2 = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    assert!(matches!(
        r2.outcome,
        ExecOutcome::Yield(YieldKind::Sent { enqueued: true, .. })
    ));
    let r3 = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    assert!(matches!(
        r3.outcome,
        ExecOutcome::Yield(YieldKind::Sent {
            enqueued: false,
            ..
        })
    ));
    assert_eq!(config.machine(MachineId(1)).unwrap().queue.len(), 1);
}

#[test]
fn send_to_null_is_an_error() {
    let mut b = ProgramBuilder::new();
    b.event("ping");
    let mut m = b.machine("M");
    m.var("peer", Ty::Id);
    let peer = m.sym("peer");
    let ping = m.sym("ping");
    m.state("Init").entry(Stmt::send(Expr::name(peer), ping));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let r = engine
        .run_machine(
            &mut config,
            MachineId(0),
            &mut no_choices(),
            Granularity::Atomic,
        )
        .unwrap();
    match r.outcome {
        ExecOutcome::Error(e) => assert_eq!(e.kind, ErrorKind::SendToUndefined),
        other => panic!("expected send-to-undefined, got {other:?}"),
    }
}

#[test]
fn send_to_deleted_machine_is_an_error() {
    let mut b = ProgramBuilder::new();
    b.event("ping");
    let mut victim = b.machine("Victim");
    victim.state("Init").entry(Stmt::delete());
    victim.finish();
    let mut m = b.machine("Main");
    m.var("peer", Ty::Id);
    let peer = m.sym("peer");
    let ping = m.sym("ping");
    let victim_sym = m.sym("Victim");
    m.state("Init").entry(Stmt::block(vec![
        Stmt::new_machine(peer, victim_sym, vec![]),
        Stmt::send(Expr::name(peer), ping),
    ]));
    m.finish();
    let program = lower(&b.finish("Main")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let mut choices = no_choices();
    // Main creates Victim.
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    assert!(matches!(
        r.outcome,
        ExecOutcome::Yield(YieldKind::Created { .. })
    ));
    // Victim deletes itself.
    let r = engine
        .run_machine(&mut config, MachineId(1), &mut choices, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Deleted);
    // Main's send now fails.
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    match r.outcome {
        ExecOutcome::Error(e) => assert_eq!(
            e.kind,
            ErrorKind::SendToDeleted {
                target: MachineId(1)
            }
        ),
        other => panic!("expected send-to-deleted, got {other:?}"),
    }
}

#[test]
fn assert_failure_and_undefined() {
    for (expr, kind) in [
        (Expr::bool(false), ErrorKind::AssertionFailure),
        (Expr::null(), ErrorKind::AssertionUndefined),
        (Expr::int(1), ErrorKind::AssertionUndefined),
    ] {
        let mut b = ProgramBuilder::new();
        let mut m = b.machine("M");
        m.state("Init").entry(Stmt::assert(expr.clone()));
        m.finish();
        let program = lower(&b.finish("M")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let mut config = engine.initial_config();
        let r = engine
            .run_machine(
                &mut config,
                MachineId(0),
                &mut no_choices(),
                Granularity::Atomic,
            )
            .unwrap();
        match r.outcome {
            ExecOutcome::Error(e) => assert_eq!(e.kind, kind),
            other => panic!("expected {kind:?}, got {other:?}"),
        }
    }
}

#[test]
fn call_statement_saves_and_resumes_continuation() {
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    let sub = m.sym("Sub");
    m.state("Main").entry(Stmt::block(vec![
        Stmt::assign(x, Expr::int(1)),
        Stmt::call_state(sub),
        // Must resume here after Sub returns:
        Stmt::assign(x, Expr::binary(BinOp::Add, Expr::name(x), Expr::int(100))),
    ]));
    m.state("Sub").entry(Stmt::block(vec![
        Stmt::assign(x, Expr::binary(BinOp::Mul, Expr::name(x), Expr::int(10))),
        Stmt::ret(),
    ]));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    // 1 → ×10 = 10 → +100 = 110.
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(110)
    );
    assert_eq!(config.machine(MachineId(0)).unwrap().stack.len(), 1);
}

#[test]
fn leave_jumps_to_event_loop() {
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    m.state("Init").entry(Stmt::block(vec![
        Stmt::assign(x, Expr::int(1)),
        Stmt::leave(),
        Stmt::assign(x, Expr::int(2)), // unreachable
    ]));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(1)
    );
}

#[test]
fn return_from_bottom_frame_underflows() {
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.state("Init").entry(Stmt::ret());
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let r = engine
        .run_machine(
            &mut config,
            MachineId(0),
            &mut no_choices(),
            Granularity::Atomic,
        )
        .unwrap();
    match r.outcome {
        ExecOutcome::Error(e) => assert_eq!(e.kind, ErrorKind::StackUnderflow),
        other => panic!("expected stack underflow, got {other:?}"),
    }
}

#[test]
fn infinite_private_loop_exhausts_fuel() {
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.state("Init")
        .entry(Stmt::while_loop(Expr::bool(true), Stmt::skip()));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty()).with_fuel(1000);
    let mut config = engine.initial_config();
    let r = engine
        .run_machine(
            &mut config,
            MachineId(0),
            &mut no_choices(),
            Granularity::Atomic,
        )
        .unwrap();
    match r.outcome {
        ExecOutcome::Error(e) => assert_eq!(e.kind, ErrorKind::FuelExhausted),
        other => panic!("expected fuel exhaustion, got {other:?}"),
    }
}

#[test]
fn nondet_consumes_script_and_requests_more() {
    let mut b = ProgramBuilder::new();
    let mut g = b.ghost_machine("G");
    g.var("x", Ty::Int);
    let x = g.sym("x");
    g.state("Init").entry(Stmt::if_else(
        Expr::nondet(),
        Stmt::assign(x, Expr::int(1)),
        Stmt::assign(x, Expr::int(2)),
    ));
    g.finish();
    let program = lower(&b.finish("G")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());

    // Empty script: the engine must ask for a choice.
    let mut config = engine.initial_config();
    let mut script = Script::new(&[]);
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut script, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::NeedChoice);

    // Script [true] → branch 1.
    let mut config = engine.initial_config();
    let mut script = Script::new(&[true]);
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut script, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Blocked);
    assert_eq!(r.choices_used, 1);
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(1)
    );

    // Script [false] → branch 2.
    let mut config = engine.initial_config();
    let mut script = Script::new(&[false]);
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut script, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Blocked);
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(2)
    );
}

#[test]
fn foreign_function_called_with_values() {
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    let f = m.foreign_fn("triple", vec![Ty::Int], Ty::Int);
    m.state("Init")
        .entry(Stmt::foreign_into(x, f, vec![Expr::int(14)]));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let mut reg = ForeignRegistry::new();
    reg.register("triple", |args| match args[0] {
        Value::Int(i) => Value::Int(i * 3),
        _ => Value::Null,
    });
    let env = reg.resolve(&program);
    let engine = Engine::new(&program, env);
    let config = run_main_to_block(&engine);
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(42)
    );
}

#[test]
fn msg_and_arg_visible_to_handler() {
    let mut b = ProgramBuilder::new();
    b.event_with("data", Ty::Int);
    let mut m = b.machine("M");
    m.var("got", Ty::Int);
    let got = m.sym("got");
    m.state("Wait");
    m.state("Got").entry(Stmt::assign(got, Expr::arg()));
    m.step("Wait", "data", "Got");
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let data = program.event_id_named("data").unwrap();
    config
        .machine_mut(MachineId(0))
        .unwrap()
        .enqueue(data, Value::Int(55));
    let mut choices = no_choices();
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Blocked);
    let machine = config.machine(MachineId(0)).unwrap();
    assert_eq!(machine.locals[0], Value::Int(55));
    assert_eq!(machine.msg, Value::Event(data));
}

#[test]
fn fine_granularity_yields_every_step() {
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    m.state("Init").entry(Stmt::block(vec![
        Stmt::assign(x, Expr::int(1)),
        Stmt::assign(x, Expr::int(2)),
    ]));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let mut choices = no_choices();
    let mut yields = 0;
    loop {
        let r = engine
            .run_machine(&mut config, MachineId(0), &mut choices, Granularity::Fine)
            .unwrap();
        match r.outcome {
            ExecOutcome::Yield(YieldKind::Internal) => {
                assert_eq!(r.steps, 1);
                yields += 1;
            }
            ExecOutcome::Blocked => break,
            other => panic!("unexpected {other:?}"),
        }
        assert!(yields < 100, "too many yields");
    }
    assert!(yields >= 3, "expected several fine-grained yields");
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(2)
    );
}

#[test]
fn deleted_machine_is_not_enabled() {
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.state("Init").entry(Stmt::delete());
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    assert_eq!(engine.enabled_machines(&config), vec![MachineId(0)]);
    let r = engine
        .run_machine(
            &mut config,
            MachineId(0),
            &mut no_choices(),
            Granularity::Atomic,
        )
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Deleted);
    assert!(engine.enabled_machines(&config).is_empty());
}

#[test]
fn canonical_bytes_stable_across_identical_runs() {
    let mut b = ProgramBuilder::new();
    b.event("tick");
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    m.state("Init").entry(Stmt::assign(x, Expr::int(5)));
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let c1 = run_main_to_block(&engine);
    let c2 = run_main_to_block(&engine);
    assert_eq!(c1.canonical_bytes(), c2.canonical_bytes());
}

#[test]
fn model_body_interpreted_when_no_native_impl() {
    // `foreign fn clamp(a : int) : int { result := a; if (a > 5) { result := 5; } }`
    let src = r#"
        machine M {
            var x : int;
            foreign fn clamp(a : int) : int {
                result := a;
                if (a > 5) { result := 5; }
            }
            state S { entry { x := clamp(9); } }
        }
        main M();
    "#;
    let parsed = p_parser::parse(src).unwrap();
    let program = lower(&parsed).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(5)
    );
}

#[test]
fn native_impl_overrides_model_body() {
    let src = r#"
        machine M {
            var x : int;
            foreign fn f(a : int) : int { result := 0; }
            state S { entry { x := f(3); } }
        }
        main M();
    "#;
    let parsed = p_parser::parse(src).unwrap();
    let program = lower(&parsed).unwrap();
    let mut reg = ForeignRegistry::new();
    reg.register("f", |args| match args[0] {
        Value::Int(i) => Value::Int(i * 100),
        _ => Value::Null,
    });
    let env = reg.resolve(&program);
    let engine = Engine::new(&program, env);
    let config = run_main_to_block(&engine);
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(300)
    );
}

#[test]
fn model_body_reads_machine_ghost_vars() {
    let src = r#"
        machine M {
            var x : int;
            ghost var g : int;
            foreign fn sense() : int { result := g + 1; }
            state S { entry { g := 41; x := sense(); } }
        }
        main M();
    "#;
    let parsed = p_parser::parse(src).unwrap();
    let program = lower(&parsed).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    // locals: x at 0, g at 1.
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(42)
    );
}

#[test]
fn model_body_nondet_requests_choices() {
    let src = r#"
        ghost machine G {
            var x : int;
            foreign fn flaky() : int {
                result := 0;
                if (*) { result := 1; }
            }
            state S { entry { x := flaky(); } }
        }
        main G();
    "#;
    let parsed = p_parser::parse(src).unwrap();
    let program = lower(&parsed).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());

    let mut config = engine.initial_config();
    let mut empty = Script::new(&[]);
    let r = engine
        .run_machine(&mut config, MachineId(0), &mut empty, Granularity::Atomic)
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::NeedChoice);

    for (bit, expected) in [(false, 0i64), (true, 1i64)] {
        let mut config = engine.initial_config();
        let script = [bit];
        let mut s = Script::new(&script);
        let r = engine
            .run_machine(&mut config, MachineId(0), &mut s, Granularity::Atomic)
            .unwrap();
        assert_eq!(r.outcome, ExecOutcome::Blocked);
        assert_eq!(
            config.machine(MachineId(0)).unwrap().locals[0],
            Value::Int(expected)
        );
    }
}

#[test]
fn model_body_while_loop_computes() {
    let src = r#"
        machine M {
            var x : int;
            foreign fn sum_to(n : int) : int {
                result := 0;
                while (n > 0) {
                    result := result + n;
                    n := n - 1;
                }
            }
            state S { entry { x := sum_to(4); } }
        }
        main M();
    "#;
    // `n` is a parameter — assignment to it inside the model is rejected
    // by the checker, so this variant writes through a shadow... instead
    // use result-only arithmetic:
    let src = src.replace(
        "result := 0;\n                while (n > 0) {\n                    result := result + n;\n                    n := n - 1;\n                }",
        "result := n * (n + 1) / 2;",
    );
    let parsed = p_parser::parse(&src).unwrap();
    let program = lower(&parsed).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let config = run_main_to_block(&engine);
    assert_eq!(
        config.machine(MachineId(0)).unwrap().locals[0],
        Value::Int(10)
    );
}

#[test]
fn dead_machine_step_is_a_typed_error_not_a_panic() {
    // Asking the engine to run a machine that was never allocated (or
    // was deleted) must surface as `ExecError::DeadMachine`, not abort
    // the process: the checker propagates it as a `CheckerError`.
    let mut b = ProgramBuilder::new();
    let mut m = b.machine("M");
    m.state("S").entry(Stmt::skip());
    m.finish();
    let program = lower(&b.finish("M")).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut config = engine.initial_config();
    let dead = MachineId(99);
    let err = engine
        .run_machine(&mut config, dead, &mut no_choices(), Granularity::Atomic)
        .unwrap_err();
    assert_eq!(err, crate::ExecError::DeadMachine { machine: dead });
    assert!(err.to_string().contains("dead machine"), "{err}");
    // The configuration is untouched: the live machine still runs fine.
    let r = engine
        .run_machine(
            &mut config,
            MachineId(0),
            &mut no_choices(),
            Granularity::Atomic,
        )
        .unwrap();
    assert_eq!(r.outcome, ExecOutcome::Blocked);
}
