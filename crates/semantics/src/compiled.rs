//! The compiled execution backend interface.
//!
//! The interpreter in [`crate::exec`] walks the lowered statement tables
//! one [`Instr`] at a time. This module defines the seam through which a
//! *compiled* program — straight-line Rust generated ahead of time by
//! `p-codegen`'s Rust emitter — plugs into the very same engine:
//! [`Engine::with_compiled`](crate::Engine::with_compiled) attaches a
//! [`CompiledProgram`] table, and `run_machine` then executes statements
//! by calling generated functions instead of interpreting instruction by
//! instruction.
//!
//! The design invariant is **bit identity** with the interpreter: for
//! every run, the compiled path must produce the same outcome, consume
//! the same number of nondeterministic choices, charge the same number of
//! small steps (so `FuelExhausted` verdicts agree), and leave the same
//! machine state behind at every scheduling point (so state fingerprints
//! agree). Three mechanisms enforce this:
//!
//! * **In-band fuel accounting.** Every point where the interpreter would
//!   pop an instruction charges exactly one step in generated code, via
//!   [`Ctx::step`], *before* doing the work — the same check-then-increment
//!   order as the interpreter loop. Fuel exhaustion surfaces as the same
//!   in-band [`ErrorKind::FuelExhausted`] error transition.
//! * **Residual materialization.** The interpreter pushes explicit
//!   continuation instructions (`Seq`, `Loop`) before running a child
//!   statement; generated code instead runs children as direct calls and
//!   only materializes the equivalent instructions — via [`Ctx::resid`] —
//!   when a run actually stops inside the child (a `send`/`new` yield or
//!   a `call`). At every observable stopping point the continuation is
//!   therefore byte-for-byte what the interpreter would have built, and a
//!   stored continuation from either backend resumes identically on the
//!   other (the generated `seq` dispatchers re-enter block bodies at any
//!   index).
//! * **A program digest.** A compiled table embeds the
//!   [`program_digest`] of the lowered program it was generated from;
//!   attaching it to an engine over any other program is a typed error
//!   ([`ExecError::CompiledMismatch`](crate::ExecError::CompiledMismatch)),
//!   never silent divergence.
//!
//! Statements whose effects involve the configuration or the machine's
//! control stack (send, new, raise, return, call) go through [`Ctx`]
//! effect methods shared with the interpreter's implementation, so the
//! subtle parts — ⊕ duplicate suppression, self-send through the taken
//! slot, inherited-action recomputation — exist exactly once.

use std::fmt;

use crate::config::{Config, Instr, MachineState};
use crate::error::ErrorKind;
use crate::exec::{ChoiceSource, Engine, ModelAbort, RunLog, YieldKind};
use crate::hash;
use crate::lower::{EventId, FnId, LoweredProgram, MachineTypeId, StateId, StmtId};
use crate::value::Value;
use crate::MachineId;

/// How a generated statement function finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Flow {
    /// The statement ran to completion; execution continues with the
    /// enclosing construct (or the machine's continuation stack).
    Done,
    /// The statement replaced the continuation wholesale (`raise`,
    /// `leave`, `return`). Enclosing constructs must *not* materialize
    /// residual instructions — the old continuation is gone.
    Transfer,
    /// A `call` statement: the engine completes the state push (inherited
    /// table, resume continuation, callee frame). Enclosing constructs
    /// materialize their residuals first — they become the resume point.
    Call(StateId),
    /// The atomic run ends here.
    End(RunEnd),
}

/// Terminal result of a generated statement function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunEnd {
    /// A scheduling point (`send`/`new`). Enclosing constructs
    /// materialize residuals — the machine resumes after them later.
    Yield(YieldKind),
    /// The machine executed `delete`.
    Deleted,
    /// An error transition of the program under test (in-band, exactly
    /// like the interpreter's).
    Error(ErrorKind),
    /// The choice source ran dry at a `*`; the caller discards the
    /// configuration and retries with a longer script.
    NeedChoice,
    /// The compiled table and the engine's program disagree (unknown
    /// statement id, `seq` over a non-block). Becomes
    /// [`ExecError::CorruptContinuation`](crate::ExecError::CorruptContinuation).
    Fatal(&'static str),
}

/// A program compiled ahead of time by `p-codegen`'s Rust emitter.
///
/// The two dispatch methods mirror the interpreter's instruction forms:
/// `stmt` executes one statement to completion (charging its own steps),
/// `seq` re-enters a block at child index `idx` — the compiled analog of
/// resuming a stored [`Instr::Seq`] continuation.
pub trait CompiledProgram: Sync + fmt::Debug {
    /// [`program_digest`] of the lowered program this table was generated
    /// from. Checked at [`Engine::with_compiled`](crate::Engine::with_compiled)
    /// time.
    fn digest(&self) -> u128;
    /// Executes statement `sid`. Unknown ids return
    /// [`RunEnd::Fatal`].
    fn stmt(&self, cx: &mut Ctx<'_, '_>, sid: StmtId) -> Flow;
    /// Resumes block `block` at child index `idx`. Non-block ids return
    /// [`RunEnd::Fatal`].
    fn seq(&self, cx: &mut Ctx<'_, '_>, block: StmtId, idx: u32) -> Flow;
}

/// Execution context handed to generated code: the running machine, the
/// configuration, fuel/choice accounting, and the effect methods shared
/// with the interpreter.
pub struct Ctx<'r, 'p> {
    pub(crate) engine: &'r Engine<'p>,
    pub(crate) config: &'r mut Config,
    pub(crate) m: &'r mut MachineState,
    pub(crate) id: MachineId,
    pub(crate) choices: &'r mut dyn ChoiceSource,
    pub(crate) log: &'r mut RunLog,
    pub(crate) steps: &'r mut usize,
    pub(crate) fuel: usize,
    /// Continuation length right after the driver popped the instruction
    /// being executed; residual instructions are inserted here so that
    /// enclosing constructs (which bubble out later) end up *below*
    /// inner ones, exactly as the interpreter's eager pushes would have
    /// ordered them.
    pub(crate) cont_base: usize,
}

impl fmt::Debug for Ctx<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("id", &self.id)
            .field("steps", &self.steps)
            .field("fuel", &self.fuel)
            .field("cont_base", &self.cont_base)
            .finish_non_exhaustive()
    }
}

impl Ctx<'_, '_> {
    /// Charges one small step. Returns `true` when the fuel budget is
    /// already spent — the caller must end the run with
    /// [`ErrorKind::FuelExhausted`] (the generated `step!` macro does).
    ///
    /// The check-before-increment order matches the interpreter loop, so
    /// both backends exhaust fuel after the same number of charges.
    #[must_use]
    pub fn step(&mut self) -> bool {
        if *self.steps >= self.fuel {
            return true;
        }
        *self.steps += 1;
        false
    }

    /// Reads local variable `var`.
    #[inline]
    pub fn local(&self, var: u32) -> Value {
        self.m.locals[var as usize]
    }

    /// Writes local variable `var`.
    #[inline]
    pub fn set_local(&mut self, var: u32, v: Value) {
        self.m.locals[var as usize] = v;
    }

    /// The running machine's own id (`this`).
    #[inline]
    pub fn this(&self) -> Value {
        Value::Machine(self.id)
    }

    /// The event currently being handled (`msg`).
    #[inline]
    pub fn msg(&self) -> Value {
        self.m.msg
    }

    /// The payload of the event currently being handled (`arg`).
    #[inline]
    pub fn arg(&self) -> Value {
        self.m.arg
    }

    /// Resolves one nondeterministic `*`; `None` means the choice source
    /// is exhausted and the run must end with [`RunEnd::NeedChoice`].
    #[inline]
    pub fn choose(&mut self) -> Option<bool> {
        self.choices.next_choice()
    }

    /// Materializes the residual continuation `instr` if (and only if)
    /// `flow` stops execution at a resumable point — a yield or a state
    /// call. Returns `flow` unchanged, for tail-position use:
    ///
    /// ```ignore
    /// match self.s17(cx) {
    ///     Flow::Done => {}
    ///     f => return cx.resid(f, Instr::Seq(StmtId(12), 3)),
    /// }
    /// ```
    pub fn resid(&mut self, flow: Flow, instr: Instr) -> Flow {
        if matches!(flow, Flow::Call(_) | Flow::End(RunEnd::Yield(_))) {
            self.m.cont.insert(self.cont_base, instr);
        }
        flow
    }

    /// The `send` statement: ⊕-deduplicated enqueue, self-send through
    /// the taken slot, dangling-target errors. Always ends the run.
    pub fn send(&mut self, target: Value, event: EventId, payload: Value) -> Flow {
        let Some(target_id) = target.as_machine() else {
            return Flow::End(RunEnd::Error(ErrorKind::SendToUndefined));
        };
        // The running machine's slot is a tombstone while it runs; a
        // self-send must not read it.
        let receiver = if target_id == self.id {
            &mut *self.m
        } else {
            match self.config.machine_mut(target_id) {
                Some(r) => r,
                None => {
                    return Flow::End(RunEnd::Error(ErrorKind::SendToDeleted {
                        target: target_id,
                    }))
                }
            }
        };
        let enqueued = receiver.enqueue(event, payload);
        Flow::End(RunEnd::Yield(YieldKind::Sent {
            to: target_id,
            event,
            enqueued,
        }))
    }

    /// The `new` statement: allocates a machine of type `ty`, applies the
    /// pre-evaluated initializers, stores the id in `dst`. Always ends
    /// the run (creation is a scheduling point).
    pub fn new_machine(&mut self, dst: u32, ty: MachineTypeId, inits: &[(u32, Value)]) -> Flow {
        let new_id = self.config.allocate(self.engine.program(), ty);
        {
            let created = self.config.machine_mut(new_id).expect("just allocated");
            for &(var, v) in inits {
                created.locals[var as usize] = v;
            }
        }
        self.m.locals[dst as usize] = Value::Machine(new_id);
        Flow::End(RunEnd::Yield(YieldKind::Created { id: new_id, ty }))
    }

    /// The `raise` statement: discards the continuation and leaves the
    /// event pending for dispatch.
    pub fn raise(&mut self, event: EventId, payload: Value) -> Flow {
        if self.log.extended {
            self.log.raised.push(event);
        }
        self.m.msg = Value::Event(event);
        self.m.arg = payload;
        self.m.cont.clear();
        self.m.pending = Some((event, payload));
        Flow::Transfer
    }

    /// The `leave` statement: discards the continuation; the machine
    /// falls through to dequeueing.
    pub fn leave(&mut self) -> Flow {
        self.m.cont.clear();
        Flow::Transfer
    }

    /// The `return` statement: replaces the continuation with the current
    /// state's exit statement followed by the frame pop.
    pub fn ret(&mut self) -> Flow {
        let mt = self.engine.program().machine(self.m.ty);
        let exit = mt.states[self.m.current_state().0 as usize].exit;
        self.m.cont.clear();
        self.m.cont.push(Instr::PopViaReturn);
        self.m.cont.push(Instr::Stmt(exit));
        Flow::Transfer
    }

    /// A foreign call in statement position: native implementations win,
    /// then interpreted model bodies, then ⊥. Errors end the run in-band.
    pub fn foreign_call(&mut self, func: FnId, args: &[Value]) -> Result<Value, Flow> {
        match self
            .engine
            .call_foreign(self.m, self.id, func, args, &mut *self.choices)
        {
            Ok(v) => Ok(v),
            Err(ModelAbort::NeedChoice) => Err(Flow::End(RunEnd::NeedChoice)),
            Err(ModelAbort::Error(kind)) => Err(Flow::End(RunEnd::Error(kind))),
        }
    }

    /// A foreign call in expression position: like [`Ctx::foreign_call`],
    /// but a failing model body surfaces as ⊥ (the enclosing statement's
    /// dynamic checks report the error), matching the interpreter's
    /// ⊥-propagating expression layer.
    pub fn foreign_expr(&mut self, func: FnId, args: &[Value]) -> Result<Value, Flow> {
        match self
            .engine
            .call_foreign(self.m, self.id, func, args, &mut *self.choices)
        {
            Ok(v) => Ok(v),
            Err(ModelAbort::NeedChoice) => Err(Flow::End(RunEnd::NeedChoice)),
            Err(ModelAbort::Error(_)) => Ok(Value::Null),
        }
    }
}

/// A stable, cross-process digest of a lowered program, used to pair
/// compiled tables with the exact program they were generated from.
///
/// Hashes the program field by field — not `{:?}` of the whole struct —
/// because the interner's lookup map is a `HashMap` whose `Debug` order
/// differs between processes; its strings are appended in id order
/// instead (the same discipline as the checker's checkpoint digest).
pub fn program_digest(program: &LoweredProgram) -> u128 {
    use std::fmt::Write as _;
    let mut desc = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        program.events, program.machines, program.code, program.main, program.main_inits
    );
    for (_, name) in program.interner.iter() {
        let _ = write!(desc, "|{name}");
    }
    hash::fingerprint128(desc.as_bytes())
}
