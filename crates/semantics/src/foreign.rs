//! Foreign functions.
//!
//! In the paper, foreign functions are C code linked with the generated
//! driver; they "are assumed to terminate and to limit any side effect to
//! the provided memory" (§4). In this reproduction they are Rust closures
//! registered by name. For verification the closures must additionally be
//! *deterministic pure functions of their arguments* — the model checker
//! calls them while exploring, and impure functions would make state
//! hashing unsound. The runtime relaxes this: runtime foreign functions may
//! also access a per-machine external context (see `p-runtime`).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::lower::{FnId, LoweredProgram, MachineTypeId};
use crate::value::Value;
use crate::MachineId;

/// The signature of a pure foreign function used during verification and
/// plain interpretation.
pub type ForeignFn = dyn Fn(&[Value]) -> Value + Send + Sync;

/// A foreign function that also receives the identity of the calling
/// machine instance — the analog of the `void*` external-memory argument
/// the paper's runtime passes to every foreign function (§4). Used by
/// `p-runtime` to give each machine its own external context.
pub type InstanceForeignFn = dyn Fn(MachineId, &[Value]) -> Value + Send + Sync;

#[derive(Clone)]
enum ForeignImpl {
    Pure(Arc<ForeignFn>),
    Instance(Arc<InstanceForeignFn>),
}

impl ForeignImpl {
    fn call(&self, caller: MachineId, args: &[Value]) -> Value {
        match self {
            ForeignImpl::Pure(f) => f(args),
            ForeignImpl::Instance(f) => f(caller, args),
        }
    }
}

/// A registry of foreign-function implementations, keyed by name.
///
/// # Examples
///
/// ```
/// use p_semantics::{ForeignRegistry, Value};
///
/// let mut reg = ForeignRegistry::new();
/// reg.register("double", |args| match args[0] {
///     Value::Int(i) => Value::Int(i * 2),
///     _ => Value::Null,
/// });
/// assert!(reg.contains("double"));
/// assert!(!reg.contains("missing"));
/// ```
#[derive(Clone, Default)]
pub struct ForeignRegistry {
    fns: HashMap<String, ForeignImpl>,
}

impl ForeignRegistry {
    /// Creates an empty registry.
    pub fn new() -> ForeignRegistry {
        ForeignRegistry::default()
    }

    /// Registers `f` under `name`, replacing any previous registration.
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        self.fns
            .insert(name.to_owned(), ForeignImpl::Pure(Arc::new(f)));
    }

    /// Registers an instance-aware function that receives the calling
    /// machine's id (for per-machine external contexts, §4).
    pub fn register_with_self<F>(&mut self, name: &str, f: F)
    where
        F: Fn(MachineId, &[Value]) -> Value + Send + Sync + 'static,
    {
        self.fns
            .insert(name.to_owned(), ForeignImpl::Instance(Arc::new(f)));
    }

    /// Whether an implementation is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// Pre-resolves this registry against a lowered program, producing the
    /// dense per-(machine type, fn id) table the execution engine uses.
    ///
    /// Declared functions with no registered implementation resolve to a
    /// conservative default that returns ⊥ — the paper's stance that the
    /// verifier treats unmodeled foreign code as havoc on its result.
    pub fn resolve(&self, program: &LoweredProgram) -> ForeignEnv {
        let tables = program
            .machines
            .iter()
            .map(|m| {
                m.foreign
                    .iter()
                    .map(|f| {
                        let name = program.interner.resolve(f.name);
                        self.fns.get(name).cloned()
                    })
                    .collect()
            })
            .collect();
        ForeignEnv { tables }
    }
}

impl fmt::Debug for ForeignRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<_> = self.fns.keys().collect();
        names.sort();
        f.debug_struct("ForeignRegistry")
            .field("functions", &names)
            .finish()
    }
}

/// Foreign implementations resolved against one program; consulted by the
/// execution engine on every foreign call.
#[derive(Clone, Default)]
pub struct ForeignEnv {
    tables: Vec<Vec<Option<ForeignImpl>>>,
}

impl ForeignEnv {
    /// An environment in which every foreign call returns ⊥.
    pub fn empty() -> ForeignEnv {
        ForeignEnv::default()
    }

    /// Whether a native implementation is registered for `func` of
    /// machine type `ty`.
    pub fn has_impl(&self, ty: MachineTypeId, func: FnId) -> bool {
        self.tables
            .get(ty.0 as usize)
            .and_then(|t| t.get(func.0 as usize))
            .is_some_and(Option::is_some)
    }

    /// Calls foreign function `func` of machine type `ty` on behalf of
    /// machine instance `caller`.
    ///
    /// Unresolved functions return ⊥.
    pub fn call(&self, caller: MachineId, ty: MachineTypeId, func: FnId, args: &[Value]) -> Value {
        self.tables
            .get(ty.0 as usize)
            .and_then(|t| t.get(func.0 as usize))
            .and_then(|f| f.as_ref())
            .map_or(Value::Null, |f| f.call(caller, args))
    }
}

impl fmt::Debug for ForeignEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForeignEnv")
            .field("machine_types", &self.tables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_ast::{ProgramBuilder, Ty};

    #[test]
    fn register_and_call_through_env() {
        let mut b = ProgramBuilder::new();
        let mut m = b.machine("M");
        m.foreign_fn("inc", vec![Ty::Int], Ty::Int);
        m.foreign_fn("unimpl", vec![], Ty::Int);
        m.state("S");
        m.finish();
        let program = crate::lower::lower(&b.finish("M")).unwrap();

        let mut reg = ForeignRegistry::new();
        reg.register("inc", |args| match args[0] {
            Value::Int(i) => Value::Int(i + 1),
            _ => Value::Null,
        });
        let env = reg.resolve(&program);
        let caller = MachineId(0);
        assert_eq!(
            env.call(caller, MachineTypeId(0), FnId(0), &[Value::Int(41)]),
            Value::Int(42)
        );
        // Unregistered function conservatively returns ⊥.
        assert_eq!(
            env.call(caller, MachineTypeId(0), FnId(1), &[]),
            Value::Null
        );
    }

    #[test]
    fn empty_env_returns_bottom() {
        let env = ForeignEnv::empty();
        assert_eq!(
            env.call(MachineId(0), MachineTypeId(0), FnId(0), &[]),
            Value::Null
        );
    }

    #[test]
    fn registration_replaces() {
        let mut reg = ForeignRegistry::new();
        reg.register("f", |_| Value::Int(1));
        reg.register("f", |_| Value::Int(2));
        assert_eq!(reg.len(), 1);
        assert!(reg.contains("f"));
    }

    #[test]
    fn instance_functions_see_caller_id() {
        let mut b = p_ast::ProgramBuilder::new();
        let mut m = b.machine("M");
        m.foreign_fn("whoami", vec![], Ty::Id);
        m.state("S");
        m.finish();
        let program = crate::lower::lower(&b.finish("M")).unwrap();
        let mut reg = ForeignRegistry::new();
        reg.register_with_self("whoami", |caller, _| Value::Machine(caller));
        let env = reg.resolve(&program);
        assert_eq!(
            env.call(MachineId(7), MachineTypeId(0), FnId(0), &[]),
            Value::Machine(MachineId(7))
        );
    }
}
