//! Operational semantics of the P language.
//!
//! This crate is the executable heart of the reproduction: an interpreter
//! for the small-step operational semantics of §3.1 of the paper (Figures
//! 4, 5 and 6), shared by the model checker (`p-checker`) and the runtime
//! (`p-runtime`) so that what is verified is what runs.
//!
//! The pipeline is:
//!
//! 1. [`lower`] a `p_ast::Program` into a dense, table-driven
//!    [`LoweredProgram`] — the analog of the C tables the paper's compiler
//!    generates (§4);
//! 2. build an [`Engine`] over the lowered program (optionally with
//!    [`ForeignRegistry`] implementations of foreign functions);
//! 3. create the initial [`Config`] and repeatedly pick an enabled machine
//!    and [`Engine::run_machine`] it.
//!
//! Machines run atomically up to scheduling points (`send`/`new`, §5's
//! atomicity reduction); who runs next is the caller's decision — that is
//! exactly the seam where the model checker enumerates schedules and the
//! runtime follows the OS's threads.
//!
//! # Examples
//!
//! ```
//! use p_ast::ProgramBuilder;
//! use p_semantics::{lower, Engine, ForeignEnv, ExecOutcome};
//!
//! let mut b = ProgramBuilder::new();
//! b.event("done");
//! let mut m = b.machine("Counter");
//! m.var("n", p_ast::Ty::Int);
//! let n = m.sym("n");
//! m.state("Init").entry(p_ast::Stmt::block(vec![
//!     p_ast::Stmt::assign(n, p_ast::Expr::int(0)),
//!     p_ast::Stmt::while_loop(
//!         p_ast::Expr::binary(p_ast::BinOp::Lt, p_ast::Expr::name(n), p_ast::Expr::int(10)),
//!         p_ast::Stmt::assign(n, p_ast::Expr::binary(
//!             p_ast::BinOp::Add, p_ast::Expr::name(n), p_ast::Expr::int(1))),
//!     ),
//! ]));
//! m.finish();
//! let program = lower(&b.finish("Counter")).unwrap();
//! let engine = Engine::new(&program, ForeignEnv::empty());
//! let mut config = engine.initial_config();
//! let id = config.live_ids().next().unwrap();
//! let result = engine
//!     .run_machine(&mut config, id, &mut || false, Default::default())
//!     .unwrap();
//! assert_eq!(result.outcome, ExecOutcome::Blocked);
//! assert_eq!(config.machine(id).unwrap().locals[0], p_semantics::Value::Int(10));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod canon;
pub mod compiled;
mod config;
mod error;
mod exec;
mod foreign;
pub mod hash;
pub mod lower;
mod value;
mod wire;

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod tests;

pub use canon::canonical_digest;
pub use config::{
    Config, ConfigDecodeError, Cont, Frame, Inherited, Instr, MachineId, MachineState, SlotInterner,
};
pub use error::{ErrorKind, ExecError, PError};
pub use exec::{ChoiceSource, Engine, ExecOutcome, Granularity, RunResult, Script, YieldKind};
pub use foreign::{ForeignEnv, ForeignFn, ForeignRegistry};
pub use lower::{
    lower, ActionId, EventId, LowerError, LoweredProgram, MachineTypeId, StateId, VarId,
};
pub use value::Value;
