//! String interning.
//!
//! Every identifier in a P program (event names, machine names, state names,
//! variable names, action names, foreign-function names) is interned into a
//! compact [`Symbol`]. Symbols are cheap to copy, compare and hash, which
//! matters because the model checker hashes millions of configurations that
//! embed symbols.

use std::collections::HashMap;
use std::fmt;

/// An interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them. All symbols of a single [`crate::Program`] come from the program's
/// own interner.
///
/// # Examples
///
/// ```
/// use p_ast::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("Elevator");
/// let b = interner.intern("Elevator");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "Elevator");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index.
    ///
    /// Only indices previously obtained from [`Symbol::index`] on the same
    /// interner are meaningful.
    pub fn from_index(index: usize) -> Symbol {
        Symbol(u32::try_from(index).expect("symbol index overflow"))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A deduplicating store of strings.
///
/// # Examples
///
/// ```
/// use p_ast::Interner;
///
/// let mut interner = Interner::new();
/// let unit = interner.intern("unit");
/// assert_eq!(interner.resolve(unit), "unit");
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning the existing symbol if `s` was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol::from_index(self.strings.len());
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol::from_index(i), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let names = ["Elevator", "unit", "DoorOpened", "", "a b c"];
        let syms: Vec<_> = names.iter().map(|n| i.intern(n)).collect();
        for (sym, name) in syms.iter().zip(names.iter()) {
            assert_eq!(i.resolve(*sym), *name);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
