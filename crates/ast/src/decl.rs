//! Top-level declarations: events, machines, states, transitions, and
//! whole programs.
//!
//! A core-P program (Figure 3) is `evdecl machine+ m(init*)`: global event
//! declarations, one or more machine declarations, and one machine-creation
//! (`main`) statement naming the initial machine.

use crate::{Initializer, Interner, Span, Stmt, Symbol, Ty};

/// A global event declaration `event e : type;`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EventDecl {
    /// The event's name.
    pub name: Symbol,
    /// Payload type; [`Ty::Void`] when the event carries no data.
    pub payload: Ty,
    /// Source location.
    pub span: Span,
}

/// A machine-local variable declaration `var x : type;` (optionally
/// `ghost var x : type;`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarDecl {
    /// The variable's name.
    pub name: Symbol,
    /// Declared type.
    pub ty: Ty,
    /// Whether the variable exists only during verification (§3.3).
    pub ghost: bool,
    /// Source location.
    pub span: Span,
}

/// A named action `action a { stmt }` — a piece of code bound to
/// (state, event) pairs without leaving the state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActionDecl {
    /// The action's name.
    pub name: Symbol,
    /// Code run when the action fires.
    pub body: Stmt,
    /// Source location.
    pub span: Span,
}

/// A state declaration.
///
/// In the core calculus a state is `(n, d, s_entry, s_exit)`; we also carry
/// the *postponed* set from §3.2's refined liveness specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateDecl {
    /// The state's name (unique within the machine).
    pub name: Symbol,
    /// Deferred events: not dequeued while control is in this state.
    pub deferred: Vec<Symbol>,
    /// Postponed events: exempt from the second liveness check (§3.2).
    pub postponed: Vec<Symbol>,
    /// Entry statement, run when control enters the state.
    pub entry: Stmt,
    /// Exit statement, run when control leaves the state.
    pub exit: Stmt,
    /// Source location.
    pub span: Span,
}

impl StateDecl {
    /// A state with empty deferred/postponed sets and `skip` entry/exit.
    pub fn empty(name: Symbol) -> StateDecl {
        StateDecl {
            name,
            deferred: Vec::new(),
            postponed: Vec::new(),
            entry: Stmt::skip(),
            exit: Stmt::skip(),
            span: Span::SYNTHETIC,
        }
    }
}

/// The two transition flavors of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// `step (n, e, n')` — exit `n`, enter `n'`.
    Step,
    /// `call (n, e, n')` — push `n'` on the call stack (subroutine-like).
    Call,
}

/// A transition `(from, event, to)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransitionDecl {
    /// Step or call.
    pub kind: TransitionKind,
    /// Source state.
    pub from: Symbol,
    /// Triggering event.
    pub event: Symbol,
    /// Target state.
    pub to: Symbol,
    /// Source location.
    pub span: Span,
}

/// An action binding `act (n, e, a)` — in state `n`, event `e` runs
/// action `a` without changing state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActionBinding {
    /// The state the binding applies to.
    pub state: Symbol,
    /// The bound event.
    pub event: Symbol,
    /// The action to run.
    pub action: Symbol,
    /// Source location.
    pub span: Span,
}

/// A parameter of a foreign function: a type, optionally named so that an
/// erasable model body can refer to it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ForeignParam {
    /// The parameter's name, if the declaration gives one.
    pub name: Option<Symbol>,
    /// The parameter's type.
    pub ty: Ty,
}

impl ForeignParam {
    /// An unnamed parameter.
    pub fn unnamed(ty: Ty) -> ForeignParam {
        ForeignParam { name: None, ty }
    }

    /// A named parameter.
    pub fn named(name: Symbol, ty: Ty) -> ForeignParam {
        ForeignParam {
            name: Some(name),
            ty,
        }
    }
}

/// A foreign-function declaration (§3, "Other features").
///
/// Foreign functions are implemented outside P (in this reproduction, as
/// Rust closures registered with the runtime). For verification the
/// declaration may carry an erasable P body that reads the (named)
/// parameters and the machine's ghost variables and assigns the special
/// variable `result`; the model body is interpreted by the checker when
/// no native implementation is registered, and erased for execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ForeignFnDecl {
    /// The function's name.
    pub name: Symbol,
    /// Parameters.
    pub params: Vec<ForeignParam>,
    /// Return type ([`Ty::Void`] for effect-only functions).
    pub ret: Ty,
    /// Optional model body used during verification; must be erasable.
    pub model_body: Option<Stmt>,
    /// Source location.
    pub span: Span,
}

impl ForeignFnDecl {
    /// The parameter types, ignoring names.
    pub fn param_types(&self) -> Vec<Ty> {
        self.params.iter().map(|p| p.ty).collect()
    }
}

/// A machine declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineDecl {
    /// The machine's name.
    pub name: Symbol,
    /// Whether the machine is a verification-only ghost machine (§3.3).
    pub ghost: bool,
    /// Local variables.
    pub vars: Vec<VarDecl>,
    /// Named actions.
    pub actions: Vec<ActionDecl>,
    /// States; the first is the initial state `Init(m)`.
    pub states: Vec<StateDecl>,
    /// Step and call transitions.
    pub transitions: Vec<TransitionDecl>,
    /// Action bindings.
    pub bindings: Vec<ActionBinding>,
    /// Foreign-function declarations in scope for this machine.
    pub foreign: Vec<ForeignFnDecl>,
    /// Source location.
    pub span: Span,
}

impl MachineDecl {
    /// The machine's initial state (`Init(m)`), i.e. the first declared
    /// state.
    pub fn init_state(&self) -> Option<&StateDecl> {
        self.states.first()
    }

    /// Finds a state by name.
    pub fn state(&self, name: Symbol) -> Option<&StateDecl> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Finds a variable by name.
    pub fn var(&self, name: Symbol) -> Option<&VarDecl> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Finds an action by name.
    pub fn action(&self, name: Symbol) -> Option<&ActionDecl> {
        self.actions.iter().find(|a| a.name == name)
    }

    /// Finds a foreign function by name.
    pub fn foreign_fn(&self, name: Symbol) -> Option<&ForeignFnDecl> {
        self.foreign.iter().find(|f| f.name == name)
    }

    /// `Step(m, n, e)`: the target of the step transition out of `n` on
    /// `e`, if one is declared.
    pub fn step_target(&self, from: Symbol, event: Symbol) -> Option<Symbol> {
        self.transitions
            .iter()
            .find(|t| t.kind == TransitionKind::Step && t.from == from && t.event == event)
            .map(|t| t.to)
    }

    /// `Call(m, n, e)`: the target of the call transition out of `n` on
    /// `e`, if one is declared.
    pub fn call_target(&self, from: Symbol, event: Symbol) -> Option<Symbol> {
        self.transitions
            .iter()
            .find(|t| t.kind == TransitionKind::Call && t.from == from && t.event == event)
            .map(|t| t.to)
    }

    /// `Action(m, n, e)`: the action bound to `(n, e)`, if any.
    pub fn bound_action(&self, state: Symbol, event: Symbol) -> Option<Symbol> {
        self.bindings
            .iter()
            .find(|b| b.state == state && b.event == event)
            .map(|b| b.action)
    }

    /// Total number of declared transitions plus action bindings — the
    /// "P transitions" count reported in Figure 8.
    pub fn transition_count(&self) -> usize {
        self.transitions.len() + self.bindings.len()
    }
}

/// The `main m(init*)` declaration closing a program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MainDecl {
    /// The machine instantiated at program start.
    pub machine: Symbol,
    /// Initializers for its variables.
    pub inits: Vec<Initializer>,
    /// Source location.
    pub span: Span,
}

/// A complete P program: events, machines, a `main` declaration, and the
/// interner holding every identifier.
///
/// # Examples
///
/// Programs are normally produced by `p_parser::parse` or
/// [`crate::ProgramBuilder`]:
///
/// ```
/// use p_ast::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.event("ping");
/// let mut m = b.machine("Main");
/// m.state("Init").entry_raise("ping");
/// m.state("Done");
/// m.step("Init", "ping", "Done");
/// m.finish();
/// let program = b.finish("Main");
/// assert_eq!(program.machines.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    /// Global event declarations.
    pub events: Vec<EventDecl>,
    /// Machine declarations (at least one).
    pub machines: Vec<MachineDecl>,
    /// The initial-machine declaration.
    pub main: MainDecl,
    /// Identifier table.
    pub interner: Interner,
}

impl Program {
    /// Finds an event declaration by name.
    pub fn event(&self, name: Symbol) -> Option<&EventDecl> {
        self.events.iter().find(|e| e.name == name)
    }

    /// Finds a machine declaration by name.
    pub fn machine(&self, name: Symbol) -> Option<&MachineDecl> {
        self.machines.iter().find(|m| m.name == name)
    }

    /// Finds a machine declaration by its string name.
    pub fn machine_named(&self, name: &str) -> Option<&MachineDecl> {
        let sym = self.interner.get(name)?;
        self.machine(sym)
    }

    /// Finds an event declaration by its string name.
    pub fn event_named(&self, name: &str) -> Option<&EventDecl> {
        let sym = self.interner.get(name)?;
        self.event(sym)
    }

    /// Resolves a symbol to its string.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Iterates over only the real (non-ghost) machines.
    pub fn real_machines(&self) -> impl Iterator<Item = &MachineDecl> {
        self.machines.iter().filter(|m| !m.ghost)
    }

    /// Iterates over only the ghost machines.
    pub fn ghost_machines(&self) -> impl Iterator<Item = &MachineDecl> {
        self.machines.iter().filter(|m| m.ghost)
    }

    /// Total states across all machines — the "P states" count of Figure 8.
    pub fn total_states(&self) -> usize {
        self.machines.iter().map(|m| m.states.len()).sum()
    }

    /// Total transitions + bindings across all machines.
    pub fn total_transitions(&self) -> usize {
        self.machines
            .iter()
            .map(MachineDecl::transition_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn two_machine_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.event("go");
        b.event_with("data", Ty::Int);
        let mut m = b.machine("Real");
        m.state("Init");
        m.state("Next");
        m.step("Init", "go", "Next");
        m.finish();
        let mut g = b.ghost_machine("Env");
        g.state("Idle");
        g.finish();
        b.finish("Real")
    }

    #[test]
    fn lookups_by_name() {
        let p = two_machine_program();
        assert!(p.machine_named("Real").is_some());
        assert!(p.machine_named("Env").unwrap().ghost);
        assert!(p.machine_named("Missing").is_none());
        assert_eq!(p.event_named("data").unwrap().payload, Ty::Int);
    }

    #[test]
    fn real_and_ghost_partition() {
        let p = two_machine_program();
        assert_eq!(p.real_machines().count(), 1);
        assert_eq!(p.ghost_machines().count(), 1);
        assert_eq!(p.machines.len(), 2);
    }

    #[test]
    fn step_lookup() {
        let p = two_machine_program();
        let m = p.machine_named("Real").unwrap();
        let init = p.interner.get("Init").unwrap();
        let go = p.interner.get("go").unwrap();
        let next = p.interner.get("Next").unwrap();
        assert_eq!(m.step_target(init, go), Some(next));
        assert_eq!(m.call_target(init, go), None);
        assert_eq!(m.step_target(next, go), None);
    }

    #[test]
    fn counts_match_figure8_definition() {
        let p = two_machine_program();
        assert_eq!(p.total_states(), 3);
        assert_eq!(p.total_transitions(), 1);
    }

    #[test]
    fn init_state_is_first() {
        let p = two_machine_program();
        let m = p.machine_named("Real").unwrap();
        assert_eq!(p.name(m.init_state().unwrap().name), "Init");
    }
}
