//! Pretty-printing of P programs back to concrete syntax.
//!
//! The printer emits exactly the textual syntax accepted by `p-parser`, so
//! `parse(print(program))` reproduces the program (a property test in the
//! parser crate checks this for the whole corpus).

use std::fmt::Write as _;

use crate::{
    BinOp, EventDecl, Expr, ExprKind, ForeignFnDecl, Interner, MachineDecl, Program, StateDecl,
    Stmt, StmtKind, Symbol, TransitionKind, Ty,
};

/// Pretty-prints a whole program.
///
/// # Examples
///
/// ```
/// use p_ast::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.event("tick");
/// let mut m = b.machine("Clock");
/// m.state("Run").entry_raise("tick");
/// m.step("Run", "tick", "Run");
/// m.finish();
/// let p = b.finish("Clock");
/// let text = p_ast::print_program(&p);
/// assert!(text.contains("machine Clock"));
/// assert!(text.contains("on tick goto Run;"));
/// ```
pub fn print_program(program: &Program) -> String {
    Printer::new(&program.interner).program(program)
}

/// Pretty-prints a single statement (used in diagnostics and codegen
/// comments).
pub fn print_stmt(stmt: &Stmt, interner: &Interner) -> String {
    let mut p = Printer::new(interner);
    p.stmt(stmt);
    p.out
}

/// Pretty-prints a single expression.
pub fn print_expr(expr: &Expr, interner: &Interner) -> String {
    let mut p = Printer::new(interner);
    p.expr(expr, 0);
    p.out
}

struct Printer<'a> {
    interner: &'a Interner,
    out: String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn new(interner: &'a Interner) -> Printer<'a> {
        Printer {
            interner,
            out: String::new(),
            indent: 0,
        }
    }

    fn name(&self, sym: Symbol) -> &'a str {
        self.interner.resolve(sym)
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn program(mut self, p: &Program) -> String {
        for ev in &p.events {
            self.event(ev);
        }
        if !p.events.is_empty() {
            self.out.push('\n');
        }
        for m in &p.machines {
            self.machine(m);
            self.out.push('\n');
        }
        let mut main = format!("main {}(", self.name(p.main.machine));
        for (i, init) in p.main.inits.iter().enumerate() {
            if i > 0 {
                main.push_str(", ");
            }
            let _ = write!(main, "{} = {}", self.name(init.var), {
                let mut q = Printer::new(self.interner);
                q.expr(&init.value, 0);
                q.out
            });
        }
        main.push_str(");");
        self.line(&main);
        self.out
    }

    fn event(&mut self, ev: &EventDecl) {
        let text = if ev.payload == Ty::Void {
            format!("event {};", self.name(ev.name))
        } else {
            format!("event {} : {};", self.name(ev.name), ev.payload)
        };
        self.line(&text);
    }

    fn machine(&mut self, m: &MachineDecl) {
        let header = format!(
            "{}machine {} {{",
            if m.ghost { "ghost " } else { "" },
            self.name(m.name)
        );
        self.line(&header);
        self.indent += 1;

        for v in &m.vars {
            let text = format!(
                "{}var {} : {};",
                if v.ghost { "ghost " } else { "" },
                self.name(v.name),
                v.ty
            );
            self.line(&text);
        }
        for f in &m.foreign {
            self.foreign_fn(f);
        }
        for a in &m.actions {
            let name = self.name(a.name).to_owned();
            self.line(&format!("action {} {{", name));
            self.indent += 1;
            self.stmt_lines(&a.body);
            self.indent -= 1;
            self.line("}");
        }
        for s in &m.states {
            self.state(m, s);
        }

        self.indent -= 1;
        self.line("}");
    }

    fn foreign_fn(&mut self, f: &ForeignFnDecl) {
        let mut text = format!("foreign fn {}(", self.name(f.name));
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                text.push_str(", ");
            }
            match p.name {
                Some(n) => {
                    let _ = write!(text, "{} : {}", self.name(n), p.ty);
                }
                None => {
                    let _ = write!(text, "{}", p.ty);
                }
            }
        }
        let _ = write!(text, ") : {}", f.ret);
        match &f.model_body {
            None => {
                text.push(';');
                self.line(&text);
            }
            Some(body) => {
                text.push_str(" {");
                self.line(&text);
                self.indent += 1;
                self.stmt_lines(body);
                self.indent -= 1;
                self.line("}");
            }
        }
    }

    fn state(&mut self, m: &MachineDecl, s: &StateDecl) {
        self.line(&format!("state {} {{", self.name(s.name)));
        self.indent += 1;

        if !s.deferred.is_empty() {
            let list: Vec<&str> = s.deferred.iter().map(|&e| self.name(e)).collect();
            self.line(&format!("defer {};", list.join(", ")));
        }
        if !s.postponed.is_empty() {
            let list: Vec<&str> = s.postponed.iter().map(|&e| self.name(e)).collect();
            self.line(&format!("postpone {};", list.join(", ")));
        }
        if s.entry.kind != StmtKind::Skip {
            self.line("entry {");
            self.indent += 1;
            self.stmt_lines(&s.entry);
            self.indent -= 1;
            self.line("}");
        }
        if s.exit.kind != StmtKind::Skip {
            self.line("exit {");
            self.indent += 1;
            self.stmt_lines(&s.exit);
            self.indent -= 1;
            self.line("}");
        }
        // Transitions and bindings are stored on the machine; print the ones
        // whose source is this state, in declaration order.
        for t in m.transitions.iter().filter(|t| t.from == s.name) {
            let verb = match t.kind {
                TransitionKind::Step => "goto",
                TransitionKind::Call => "push",
            };
            self.line(&format!(
                "on {} {} {};",
                self.name(t.event),
                verb,
                self.name(t.to)
            ));
        }
        for b in m.bindings.iter().filter(|b| b.state == s.name) {
            self.line(&format!(
                "on {} do {};",
                self.name(b.event),
                self.name(b.action)
            ));
        }

        self.indent -= 1;
        self.line("}");
    }

    /// Prints a statement as a sequence of lines (flattening one block
    /// level).
    fn stmt_lines(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.stmt_lines(st);
                }
            }
            _ => {
                let mut q = Printer::new(self.interner);
                q.indent = self.indent;
                q.stmt(s);
                self.out.push_str(&q.out);
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Skip => self.line("skip;"),
            StmtKind::Assign { dst, value } => {
                let text = format!("{} := {};", self.name(*dst), self.expr_str(value));
                self.line(&text);
            }
            StmtKind::New {
                dst,
                machine,
                inits,
            } => {
                let mut text = format!("{} := new {}(", self.name(*dst), self.name(*machine));
                for (i, init) in inits.iter().enumerate() {
                    if i > 0 {
                        text.push_str(", ");
                    }
                    let _ = write!(
                        text,
                        "{} = {}",
                        self.name(init.var),
                        self.expr_str(&init.value)
                    );
                }
                text.push_str(");");
                self.line(&text);
            }
            StmtKind::Delete => self.line("delete;"),
            StmtKind::Send {
                target,
                event,
                payload,
            } => {
                let text = match payload {
                    None => format!("send({}, {});", self.expr_str(target), self.name(*event)),
                    Some(p) => format!(
                        "send({}, {}, {});",
                        self.expr_str(target),
                        self.name(*event),
                        self.expr_str(p)
                    ),
                };
                self.line(&text);
            }
            StmtKind::Raise { event, payload } => {
                let text = match payload {
                    None => format!("raise({});", self.name(*event)),
                    Some(p) => format!("raise({}, {});", self.name(*event), self.expr_str(p)),
                };
                self.line(&text);
            }
            StmtKind::Leave => self.line("leave;"),
            StmtKind::Return => self.line("return;"),
            StmtKind::Assert(e) => {
                let text = format!("assert({});", self.expr_str(e));
                self.line(&text);
            }
            StmtKind::Block(stmts) => {
                self.line("{");
                self.indent += 1;
                for st in stmts {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::If { cond, then, els } => {
                let head = format!("if ({}) {{", self.expr_str(cond));
                self.line(&head);
                self.indent += 1;
                self.stmt_lines(then);
                self.indent -= 1;
                let empty_else = matches!(&els.kind, StmtKind::Block(b) if b.is_empty())
                    || els.kind == StmtKind::Skip;
                if empty_else {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    self.stmt_lines(els);
                    self.indent -= 1;
                    self.line("}");
                }
            }
            StmtKind::While { cond, body } => {
                let head = format!("while ({}) {{", self.expr_str(cond));
                self.line(&head);
                self.indent += 1;
                self.stmt_lines(body);
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::CallState(state) => {
                let text = format!("call {};", self.name(*state));
                self.line(&text);
            }
            StmtKind::ForeignCall { dst, func, args } => {
                let mut text = String::new();
                if let Some(d) = dst {
                    let _ = write!(text, "{} := ", self.name(*d));
                }
                let _ = write!(text, "{}(", self.name(*func));
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        text.push_str(", ");
                    }
                    text.push_str(&self.expr_str(a));
                }
                text.push_str(");");
                self.line(&text);
            }
        }
    }

    fn expr_str(&self, e: &Expr) -> String {
        let mut q = Printer::new(self.interner);
        q.expr(e, 0);
        q.out
    }

    /// Prints `e`, parenthesizing when the surrounding precedence
    /// `min_prec` requires it.
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        match &e.kind {
            ExprKind::This => self.out.push_str("this"),
            ExprKind::Msg => self.out.push_str("msg"),
            ExprKind::Arg => self.out.push_str("arg"),
            ExprKind::Null => self.out.push_str("null"),
            ExprKind::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::Int(v) => {
                if *v < 0 {
                    // Negative literals print as a subtraction (the parser
                    // has no negative literals), parenthesized exactly when
                    // a binary subtraction would be.
                    let prec = BinOp::Sub.precedence();
                    let need_parens = prec < min_prec;
                    if need_parens {
                        self.out.push('(');
                    }
                    let _ = write!(self.out, "0 - {}", v.unsigned_abs());
                    if need_parens {
                        self.out.push(')');
                    }
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::Name(s) => self.out.push_str(self.name(*s)),
            ExprKind::Nondet => self.out.push('*'),
            ExprKind::Unary(op, inner) => {
                self.out.push_str(op.symbol());
                self.out.push('(');
                self.expr(inner, 0);
                self.out.push(')');
            }
            ExprKind::Binary(op, a, b) => {
                let prec = op.precedence();
                let need_parens = prec < min_prec;
                if need_parens {
                    self.out.push('(');
                }
                self.expr(a, prec);
                let _ = write!(self.out, " {} ", op.symbol());
                // Right operand at prec+1: all our binary operators print
                // left-associatively.
                self.expr(b, prec + 1);
                if need_parens {
                    self.out.push(')');
                }
            }
            ExprKind::ForeignCall(f, args) => {
                self.out.push_str(self.name(*f));
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 0);
                }
                self.out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn prints_operators_with_precedence() {
        let mut b = ProgramBuilder::new();
        let x = b.sym("x");
        // (x + 1) * 2 needs parens; x + 1 * 2 does not.
        let e1 = Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::name(x), Expr::int(1)),
            Expr::int(2),
        );
        assert_eq!(print_expr(&e1, b.interner()), "(x + 1) * 2");
        let e2 = Expr::binary(
            BinOp::Add,
            Expr::name(x),
            Expr::binary(BinOp::Mul, Expr::int(1), Expr::int(2)),
        );
        assert_eq!(print_expr(&e2, b.interner()), "x + 1 * 2");
    }

    #[test]
    fn prints_statements() {
        let mut b = ProgramBuilder::new();
        let e = b.sym("E");
        let x = b.sym("x");
        let s = Stmt::block(vec![
            Stmt::assign(x, Expr::int(3)),
            Stmt::send_with(Expr::this(), e, Expr::name(x)),
            Stmt::raise(e),
        ]);
        let text = print_stmt(&s, b.interner());
        assert!(text.contains("x := 3;"));
        assert!(text.contains("send(this, E, x);"));
        assert!(text.contains("raise(E);"));
    }

    #[test]
    fn program_includes_all_sections() {
        let mut b = ProgramBuilder::new();
        b.event_with("evt", Ty::Int);
        let mut m = b.ghost_machine("G");
        m.ghost_var("t", Ty::Id);
        m.action("drop", Stmt::skip());
        m.state("S")
            .defer(&["evt"])
            .postpone(&["evt"])
            .entry(Stmt::leave())
            .exit(Stmt::skip());
        m.bind("S", "evt", "drop");
        m.finish();
        let p = b.finish("G");
        let text = print_program(&p);
        assert!(text.contains("event evt : int;"));
        assert!(text.contains("ghost machine G {"));
        assert!(text.contains("ghost var t : id;"));
        assert!(text.contains("defer evt;"));
        assert!(text.contains("postpone evt;"));
        assert!(text.contains("on evt do drop;"));
        assert!(text.contains("main G();"));
    }
}
