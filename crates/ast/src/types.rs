//! The P type language.
//!
//! Figure 3 of the paper gives `type ::= void | bool | int | event | id`.
//! `void` is only used as the payload type of events that carry no data and
//! as the return type of foreign functions called for effect.

use std::fmt;

/// A P type.
///
/// # Examples
///
/// ```
/// use p_ast::Ty;
///
/// assert_eq!(Ty::Int.to_string(), "int");
/// assert!(Ty::Id.is_machine_ref());
/// assert!(Ty::Void.accepts(Ty::Void));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ty {
    /// No value; payload of bare events, return type of effect-only
    /// foreign functions.
    #[default]
    Void,
    /// Booleans.
    Bool,
    /// Machine integers (the paper also mentions `byte`; we model both as
    /// signed 64-bit integers).
    Int,
    /// Event names as first-class values (`msg` has this type).
    Event,
    /// A reference to a dynamically created machine (`this` has this type).
    Id,
}

impl Ty {
    /// All types, in declaration order of the grammar.
    pub const ALL: [Ty; 5] = [Ty::Void, Ty::Bool, Ty::Int, Ty::Event, Ty::Id];

    /// Whether this is the machine-identifier type `id`.
    pub fn is_machine_ref(self) -> bool {
        self == Ty::Id
    }

    /// Whether a value of type `other` may be stored where `self` is
    /// expected.
    ///
    /// P's type system is nominal and flat: a type accepts only itself.
    /// The undefined value ⊥ inhabits every type and is checked
    /// dynamically, not here.
    pub fn accepts(self, other: Ty) -> bool {
        self == other
    }

    /// Parses a type keyword.
    pub fn from_keyword(kw: &str) -> Option<Ty> {
        match kw {
            "void" => Some(Ty::Void),
            "bool" => Some(Ty::Bool),
            "int" | "byte" => Some(Ty::Int),
            "event" => Some(Ty::Event),
            "id" => Some(Ty::Id),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Void => "void",
            Ty::Bool => "bool",
            Ty::Int => "int",
            Ty::Event => "event",
            Ty::Id => "id",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for ty in Ty::ALL {
            assert_eq!(Ty::from_keyword(&ty.to_string()), Some(ty));
        }
        assert_eq!(Ty::from_keyword("byte"), Some(Ty::Int));
        assert_eq!(Ty::from_keyword("machine"), None);
    }

    #[test]
    fn accepts_is_reflexive_only() {
        for a in Ty::ALL {
            for b in Ty::ALL {
                assert_eq!(a.accepts(b), a == b);
            }
        }
    }

    #[test]
    fn default_is_void() {
        assert_eq!(Ty::default(), Ty::Void);
    }
}
