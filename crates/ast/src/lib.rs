//! Abstract syntax for the P language.
//!
//! P ("P: Safe Asynchronous Event-Driven Programming", PLDI 2013) is a
//! domain-specific language in which a program is a collection of state
//! machines communicating through events. This crate defines the abstract
//! syntax of the core calculus of Figure 3, extended with the features the
//! paper describes informally: the `call n` statement, foreign functions,
//! ghost machines/variables, and postponed-event annotations.
//!
//! The crate provides three ways of working with programs:
//!
//! * construct them with [`ProgramBuilder`] (used by the benchmark corpus),
//! * parse them from text with the `p-parser` crate,
//! * print them back to text with [`print_program`].
//!
//! # Examples
//!
//! ```
//! use p_ast::{Expr, ProgramBuilder, Stmt};
//!
//! let mut b = ProgramBuilder::new();
//! b.event("tick");
//! let mut clock = b.machine("Clock");
//! let tick = clock.sym("tick");
//! clock
//!     .state("Run")
//!     .entry(Stmt::block(vec![
//!         Stmt::assert(Expr::bool(true)),
//!         Stmt::raise(tick),
//!     ]));
//! clock.step("Run", "tick", "Run");
//! clock.finish();
//! let program = b.finish("Clock");
//!
//! let text = p_ast::print_program(&program);
//! assert!(text.contains("state Run"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod decl;
mod expr;
mod intern;
mod print;
mod span;
mod stmt;
mod types;

pub use builder::{MachineBuilder, ProgramBuilder, StateBuilder};
pub use decl::{
    ActionBinding, ActionDecl, EventDecl, ForeignFnDecl, ForeignParam, MachineDecl, MainDecl,
    Program, StateDecl, TransitionDecl, TransitionKind, VarDecl,
};
pub use expr::{BinOp, Expr, ExprKind, UnOp};
pub use intern::{Interner, Symbol};
pub use print::{print_expr, print_program, print_stmt};
pub use span::Span;
pub use stmt::{Initializer, Stmt, StmtKind};
pub use types::Ty;
