//! P expressions.
//!
//! Figure 3: `expr ::= this | msg | arg | b | c | ⊥ | x | * | uop expr |
//! expr bop expr`. Identifiers in expression position may name either a
//! local variable or an event; the resolver in `p-typecheck` decides which.

use crate::{Span, Symbol};

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

impl UnOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Not => "!",
            UnOp::Neg => "-",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields ⊥ at run time)
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding power for the pretty-printer and parser (higher binds
    /// tighter). Mirrors C precedence for the shared operators.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
        }
    }

    /// Whether the operator compares values (result type `bool`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is arithmetic (`int × int → int`).
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// Whether the operator is boolean (`bool × bool → bool`).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// The body of an expression node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// The identifier of the executing machine (`this`).
    This,
    /// The most recently received event (`msg`).
    Msg,
    /// The payload of the most recently received event (`arg`).
    Arg,
    /// The undefined value ⊥ (surface syntax `null`).
    Null,
    /// A boolean literal.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// An identifier — a local variable or an event name; resolved during
    /// type checking.
    Name(Symbol),
    /// Nondeterministic boolean choice `*` (ghost machines only).
    Nondet,
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A call to a foreign function used as an expression,
    /// e.g. `x := f(a, b)`.
    ForeignCall(Symbol, Vec<Expr>),
}

/// An expression with its source span.
///
/// # Examples
///
/// ```
/// use p_ast::{Expr, ExprKind, BinOp};
///
/// let two = Expr::int(2);
/// let sum = Expr::binary(BinOp::Add, two.clone(), two);
/// assert!(matches!(sum.kind, ExprKind::Binary(BinOp::Add, _, _)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Where it came from.
    pub span: Span,
}

impl Expr {
    /// Creates an expression with a synthetic span.
    pub fn new(kind: ExprKind) -> Expr {
        Expr {
            kind,
            span: Span::SYNTHETIC,
        }
    }

    /// Creates an expression with a source span.
    pub fn spanned(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// `this`
    pub fn this() -> Expr {
        Expr::new(ExprKind::This)
    }

    /// `msg`
    pub fn msg() -> Expr {
        Expr::new(ExprKind::Msg)
    }

    /// `arg`
    pub fn arg() -> Expr {
        Expr::new(ExprKind::Arg)
    }

    /// `null` (⊥)
    pub fn null() -> Expr {
        Expr::new(ExprKind::Null)
    }

    /// A boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::new(ExprKind::Bool(b))
    }

    /// An integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::new(ExprKind::Int(v))
    }

    /// A variable or event reference.
    pub fn name(sym: Symbol) -> Expr {
        Expr::new(ExprKind::Name(sym))
    }

    /// The nondeterministic choice `*`.
    pub fn nondet() -> Expr {
        Expr::new(ExprKind::Nondet)
    }

    /// A unary operation.
    pub fn unary(op: UnOp, operand: Expr) -> Expr {
        Expr::new(ExprKind::Unary(op, Box::new(operand)))
    }

    /// A binary operation.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    /// A foreign-function call expression.
    pub fn foreign_call(name: Symbol, args: Vec<Expr>) -> Expr {
        Expr::new(ExprKind::ForeignCall(name, args))
    }

    /// Whether any subexpression is the nondeterministic choice `*`.
    ///
    /// Used by the type checker: `*` is legal only inside ghost machines.
    pub fn contains_nondet(&self) -> bool {
        match &self.kind {
            ExprKind::Nondet => true,
            ExprKind::Unary(_, e) => e.contains_nondet(),
            ExprKind::Binary(_, a, b) => a.contains_nondet() || b.contains_nondet(),
            ExprKind::ForeignCall(_, args) => args.iter().any(Expr::contains_nondet),
            _ => false,
        }
    }

    /// All `Name` symbols mentioned in the expression, in evaluation order.
    pub fn names(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names(&self, out: &mut Vec<Symbol>) {
        match &self.kind {
            ExprKind::Name(s) => out.push(*s),
            ExprKind::Unary(_, e) => e.collect_names(out),
            ExprKind::Binary(_, a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            ExprKind::ForeignCall(_, args) => {
                for a in args {
                    a.collect_names(out);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interner;

    #[test]
    fn precedence_orders_operators() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn operator_classes_partition() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ] {
            let classes = [op.is_comparison(), op.is_arithmetic(), op.is_logical()];
            assert_eq!(classes.iter().filter(|&&c| c).count(), 1, "{op:?}");
        }
    }

    #[test]
    fn contains_nondet_descends() {
        let e = Expr::binary(
            BinOp::And,
            Expr::bool(true),
            Expr::unary(UnOp::Not, Expr::nondet()),
        );
        assert!(e.contains_nondet());
        assert!(!Expr::bool(true).contains_nondet());
    }

    #[test]
    fn names_in_order() {
        let mut i = Interner::new();
        let (a, b) = (i.intern("a"), i.intern("b"));
        let e = Expr::binary(BinOp::Add, Expr::name(a), Expr::name(b));
        assert_eq!(e.names(), vec![a, b]);
    }
}
