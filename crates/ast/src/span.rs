//! Source locations.
//!
//! Spans are byte ranges into the original source text. AST nodes built
//! programmatically (through [`crate::ProgramBuilder`]) carry
//! [`Span::SYNTHETIC`].

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
///
/// # Examples
///
/// ```
/// use p_ast::Span;
///
/// let span = Span::new(4, 10);
/// assert_eq!(span.len(), 6);
/// assert!(!span.is_synthetic());
/// assert!(Span::SYNTHETIC.is_synthetic());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// The span used for nodes that have no source text (builder-made ASTs).
    pub const SYNTHETIC: Span = Span {
        start: u32::MAX,
        end: u32::MAX,
    };

    /// Creates a span covering bytes `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start: start as u32,
            end: end as u32,
        }
    }

    /// Length in bytes; zero for synthetic spans.
    pub fn len(self) -> usize {
        if self.is_synthetic() {
            0
        } else {
            (self.end - self.start) as usize
        }
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Whether this node was constructed without source text.
    pub fn is_synthetic(self) -> bool {
        self.start == u32::MAX
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// Synthetic spans are absorbing on either side only if both are
    /// synthetic; otherwise the real span wins.
    pub fn merge(self, other: Span) -> Span {
        match (self.is_synthetic(), other.is_synthetic()) {
            (true, true) => Span::SYNTHETIC,
            (true, false) => other,
            (false, true) => self,
            (false, false) => Span {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            },
        }
    }

    /// Converts this span to a 1-based `(line, column)` pair within `source`.
    ///
    /// Returns `None` for synthetic spans or spans out of range.
    pub fn line_col(self, source: &str) -> Option<(usize, usize)> {
        if self.is_synthetic() || self.start as usize > source.len() {
            return None;
        }
        let upto = &source[..self.start as usize];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto
            .rfind('\n')
            .map_or(self.start as usize + 1, |nl| self.start as usize - nl);
        Some((line, col))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}..{}", self.start, self.end)
        }
    }
}

impl Default for Span {
    fn default() -> Span {
        Span::SYNTHETIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_real_spans() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn merge_with_synthetic() {
        let a = Span::new(2, 5);
        assert_eq!(a.merge(Span::SYNTHETIC), a);
        assert_eq!(Span::SYNTHETIC.merge(a), a);
        assert!(Span::SYNTHETIC.merge(Span::SYNTHETIC).is_synthetic());
    }

    #[test]
    fn line_col_reports_position() {
        let src = "event a;\nevent b;\n";
        // `event b` starts at byte 9, line 2 col 1.
        assert_eq!(Span::new(9, 16).line_col(src), Some((2, 1)));
        assert_eq!(Span::new(0, 5).line_col(src), Some((1, 1)));
        assert_eq!(Span::new(6, 7).line_col(src), Some((1, 7)));
        assert_eq!(Span::SYNTHETIC.line_col(src), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
        assert_eq!(Span::SYNTHETIC.to_string(), "<synthetic>");
    }
}
