//! Programmatic construction of P programs.
//!
//! The builder is the second front end next to the parser: the benchmark
//! corpus and many tests construct machines directly, which keeps them
//! independent of the concrete syntax.
//!
//! # Examples
//!
//! A two-machine ping-pong program:
//!
//! ```
//! use p_ast::{Expr, ProgramBuilder, Stmt, Ty};
//!
//! let mut b = ProgramBuilder::new();
//! b.event("ping");
//! b.event("pong");
//!
//! let mut client = b.machine("Client");
//! client.var("server", Ty::Id);
//! let ping = client.sym("ping");
//! let server_var = client.sym("server");
//! client
//!     .state("Send")
//!     .entry(Stmt::send(Expr::name(server_var), ping));
//! client.state("Wait");
//! client.step("Send", "pong", "Send");
//! client.finish();
//!
//! let mut server = b.machine("Server");
//! server.state("Idle");
//! server.finish();
//!
//! let program = b.finish("Client");
//! assert_eq!(program.machines.len(), 2);
//! ```

use crate::{
    ActionBinding, ActionDecl, EventDecl, Expr, ForeignFnDecl, ForeignParam, Initializer, Interner,
    MachineDecl, MainDecl, Program, Span, StateDecl, Stmt, Symbol, TransitionDecl, TransitionKind,
    Ty, VarDecl,
};

/// Incrementally builds a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    interner: Interner,
    events: Vec<EventDecl>,
    machines: Vec<MachineDecl>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Interns a name for use in expressions and statements.
    pub fn sym(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// The interner accumulated so far (useful for printing fragments
    /// before the program is finished).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Declares an event with no payload.
    pub fn event(&mut self, name: &str) -> Symbol {
        self.event_with(name, Ty::Void)
    }

    /// Declares an event carrying a payload of type `ty`.
    pub fn event_with(&mut self, name: &str, ty: Ty) -> Symbol {
        let sym = self.interner.intern(name);
        self.events.push(EventDecl {
            name: sym,
            payload: ty,
            span: Span::SYNTHETIC,
        });
        sym
    }

    /// Starts a real machine declaration.
    pub fn machine(&mut self, name: &str) -> MachineBuilder<'_> {
        self.machine_impl(name, false)
    }

    /// Starts a ghost machine declaration (§3.3).
    pub fn ghost_machine(&mut self, name: &str) -> MachineBuilder<'_> {
        self.machine_impl(name, true)
    }

    fn machine_impl(&mut self, name: &str, ghost: bool) -> MachineBuilder<'_> {
        let sym = self.interner.intern(name);
        MachineBuilder {
            decl: MachineDecl {
                name: sym,
                ghost,
                vars: Vec::new(),
                actions: Vec::new(),
                states: Vec::new(),
                transitions: Vec::new(),
                bindings: Vec::new(),
                foreign: Vec::new(),
                span: Span::SYNTHETIC,
            },
            builder: self,
        }
    }

    /// Closes the program with `main machine();`.
    ///
    /// # Panics
    ///
    /// Panics if `main_machine` names no declared machine (this indicates a
    /// bug in the calling test or corpus code; parser-produced programs are
    /// validated by the type checker instead).
    pub fn finish(self, main_machine: &str) -> Program {
        self.finish_with(main_machine, Vec::new())
    }

    /// Closes the program with `main machine(inits);`.
    ///
    /// # Panics
    ///
    /// Panics if `main_machine` names no declared machine.
    pub fn finish_with(mut self, main_machine: &str, inits: Vec<Initializer>) -> Program {
        let sym = self.interner.intern(main_machine);
        assert!(
            self.machines.iter().any(|m| m.name == sym),
            "main machine `{main_machine}` was never declared"
        );
        Program {
            events: self.events,
            machines: self.machines,
            main: MainDecl {
                machine: sym,
                inits,
                span: Span::SYNTHETIC,
            },
            interner: self.interner,
        }
    }
}

/// Builds one [`MachineDecl`]; created by [`ProgramBuilder::machine`].
///
/// Call [`MachineBuilder::finish`] to commit the machine to the program.
#[derive(Debug)]
pub struct MachineBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    decl: MachineDecl,
}

impl<'a> MachineBuilder<'a> {
    /// Interns a name (for use with [`Stmt`]/[`Expr`] constructors).
    pub fn sym(&mut self, name: &str) -> Symbol {
        self.builder.interner.intern(name)
    }

    /// Declares a real variable.
    pub fn var(&mut self, name: &str, ty: Ty) -> Symbol {
        self.var_impl(name, ty, false)
    }

    /// Declares a ghost variable.
    pub fn ghost_var(&mut self, name: &str, ty: Ty) -> Symbol {
        self.var_impl(name, ty, true)
    }

    fn var_impl(&mut self, name: &str, ty: Ty, ghost: bool) -> Symbol {
        let sym = self.builder.interner.intern(name);
        self.decl.vars.push(VarDecl {
            name: sym,
            ty,
            ghost,
            span: Span::SYNTHETIC,
        });
        sym
    }

    /// Declares a named action.
    pub fn action(&mut self, name: &str, body: Stmt) -> Symbol {
        let sym = self.builder.interner.intern(name);
        self.decl.actions.push(ActionDecl {
            name: sym,
            body,
            span: Span::SYNTHETIC,
        });
        sym
    }

    /// Declares a state; the first declared state is the initial state.
    ///
    /// Returns a [`StateBuilder`] for attaching deferred sets and
    /// entry/exit statements.
    pub fn state<'m>(&'m mut self, name: &str) -> StateBuilder<'m, 'a> {
        let sym = self.builder.interner.intern(name);
        self.decl.states.push(StateDecl::empty(sym));
        let idx = self.decl.states.len() - 1;
        StateBuilder { machine: self, idx }
    }

    /// Declares a step transition `(from, event, to)`.
    pub fn step(&mut self, from: &str, event: &str, to: &str) -> &mut Self {
        self.transition(TransitionKind::Step, from, event, to)
    }

    /// Declares a call transition `(from, event, to)`.
    pub fn call(&mut self, from: &str, event: &str, to: &str) -> &mut Self {
        self.transition(TransitionKind::Call, from, event, to)
    }

    fn transition(&mut self, kind: TransitionKind, from: &str, event: &str, to: &str) -> &mut Self {
        let from = self.builder.interner.intern(from);
        let event = self.builder.interner.intern(event);
        let to = self.builder.interner.intern(to);
        self.decl.transitions.push(TransitionDecl {
            kind,
            from,
            event,
            to,
            span: Span::SYNTHETIC,
        });
        self
    }

    /// Binds `action` to `(state, event)`.
    pub fn bind(&mut self, state: &str, event: &str, action: &str) -> &mut Self {
        let state = self.builder.interner.intern(state);
        let event = self.builder.interner.intern(event);
        let action = self.builder.interner.intern(action);
        self.decl.bindings.push(ActionBinding {
            state,
            event,
            action,
            span: Span::SYNTHETIC,
        });
        self
    }

    /// Declares a foreign function signature with unnamed parameters.
    pub fn foreign_fn(&mut self, name: &str, params: Vec<Ty>, ret: Ty) -> Symbol {
        let params = params.into_iter().map(ForeignParam::unnamed).collect();
        self.foreign_fn_decl(name, params, ret, None)
    }

    /// Declares a foreign function with named parameters and an erasable
    /// model body for verification (§3's "P body" for foreign code).
    pub fn foreign_fn_modeled(
        &mut self,
        name: &str,
        params: &[(&str, Ty)],
        ret: Ty,
        model_body: Stmt,
    ) -> Symbol {
        let params = params
            .iter()
            .map(|(n, ty)| ForeignParam::named(self.builder.interner.intern(n), *ty))
            .collect();
        self.foreign_fn_decl(name, params, ret, Some(model_body))
    }

    /// Declares a foreign function from already-built parameters.
    pub fn foreign_fn_decl(
        &mut self,
        name: &str,
        params: Vec<ForeignParam>,
        ret: Ty,
        model_body: Option<Stmt>,
    ) -> Symbol {
        let sym = self.builder.interner.intern(name);
        self.decl.foreign.push(ForeignFnDecl {
            name: sym,
            params,
            ret,
            model_body,
            span: Span::SYNTHETIC,
        });
        sym
    }

    /// Commits the machine to the program.
    pub fn finish(self) {
        self.builder.machines.push(self.decl);
    }
}

/// Configures the most recently declared state; created by
/// [`MachineBuilder::state`].
#[derive(Debug)]
pub struct StateBuilder<'m, 'a> {
    machine: &'m mut MachineBuilder<'a>,
    idx: usize,
}

impl StateBuilder<'_, '_> {
    fn state_mut(&mut self) -> &mut StateDecl {
        &mut self.machine.decl.states[self.idx]
    }

    /// Adds events to the state's deferred set.
    pub fn defer(mut self, events: &[&str]) -> Self {
        let syms: Vec<Symbol> = events
            .iter()
            .map(|e| self.machine.builder.interner.intern(e))
            .collect();
        self.state_mut().deferred.extend(syms);
        self
    }

    /// Adds events to the state's postponed set (liveness annotation).
    pub fn postpone(mut self, events: &[&str]) -> Self {
        let syms: Vec<Symbol> = events
            .iter()
            .map(|e| self.machine.builder.interner.intern(e))
            .collect();
        self.state_mut().postponed.extend(syms);
        self
    }

    /// Sets the entry statement.
    pub fn entry(mut self, stmt: Stmt) -> Self {
        self.state_mut().entry = stmt;
        self
    }

    /// Sets the exit statement.
    pub fn exit(mut self, stmt: Stmt) -> Self {
        self.state_mut().exit = stmt;
        self
    }

    /// Shortcut: entry statement `raise(event);`.
    pub fn entry_raise(mut self, event: &str) -> Self {
        let s = self.machine.builder.interner.intern(event);
        self.state_mut().entry = Stmt::raise(s);
        self
    }

    /// Shortcut: entry statement `send(target, event);`.
    pub fn entry_send(mut self, target: Expr, event: &str) -> Self {
        let s = self.machine.builder.interner.intern(event);
        self.state_mut().entry = Stmt::send(target, s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_complete_program() {
        let mut b = ProgramBuilder::new();
        b.event("e1");
        b.event_with("e2", Ty::Int);

        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        m.ghost_var("g", Ty::Id);
        m.action("noop", Stmt::skip());
        m.state("A").defer(&["e2"]).entry(Stmt::skip());
        m.state("B").postpone(&["e1"]);
        m.step("A", "e1", "B");
        m.call("B", "e2", "A");
        m.bind("A", "e2", "noop");
        m.foreign_fn("f", vec![Ty::Int], Ty::Int);
        m.finish();

        let p = b.finish("M");
        let m = p.machine_named("M").unwrap();
        assert_eq!(m.vars.len(), 2);
        assert!(m.vars[1].ghost);
        assert_eq!(m.states.len(), 2);
        assert_eq!(m.transitions.len(), 2);
        assert_eq!(m.bindings.len(), 1);
        assert_eq!(m.foreign.len(), 1);
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.name(p.main.machine), "M");
    }

    #[test]
    #[should_panic(expected = "never declared")]
    fn finish_rejects_unknown_main() {
        let mut b = ProgramBuilder::new();
        let mut m = b.machine("M");
        m.state("A");
        m.finish();
        let _ = b.finish("Nope");
    }

    #[test]
    fn state_builder_accumulates_deferred() {
        let mut b = ProgramBuilder::new();
        b.event("x");
        b.event("y");
        let mut m = b.machine("M");
        m.state("S").defer(&["x"]).defer(&["y"]);
        m.finish();
        let p = b.finish("M");
        let m = p.machine_named("M").unwrap();
        assert_eq!(m.states[0].deferred.len(), 2);
    }

    #[test]
    fn entry_raise_shortcut() {
        let mut b = ProgramBuilder::new();
        b.event("go");
        let mut m = b.machine("M");
        m.state("S").entry_raise("go");
        m.finish();
        let p = b.finish("M");
        let m = p.machine_named("M").unwrap();
        match &m.states[0].entry.kind {
            crate::StmtKind::Raise { event, payload } => {
                assert_eq!(p.name(*event), "go");
                assert!(payload.is_none());
            }
            other => panic!("expected raise, got {other:?}"),
        }
    }
}
