//! P statements.
//!
//! Figure 3: `stmt ::= skip | x := expr | x := new m(init*) | delete |
//! send(expr, e, expr) | raise(e, expr) | leave | return | assert(expr) |
//! stmt; stmt | if expr then stmt else stmt | while expr stmt`.
//!
//! Two additional statement forms from §3 ("Other features") are included:
//! the `call n'` statement that pushes a state with a saved continuation,
//! and calls to foreign functions.

use crate::{Expr, Span, Symbol};

/// A named initializer `x = expr` in `new m(...)` or the program's `main`
/// declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Initializer {
    /// The variable of the created machine being initialized.
    pub var: Symbol,
    /// The value, evaluated in the *creating* machine's context.
    pub value: Expr,
}

/// The body of a statement node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StmtKind {
    /// `skip;`
    Skip,
    /// `x := expr;`
    Assign {
        /// Destination variable.
        dst: Symbol,
        /// Source expression.
        value: Expr,
    },
    /// `x := new m(a = 1, b = this);`
    New {
        /// Variable receiving the new machine's identifier.
        dst: Symbol,
        /// Machine type to instantiate.
        machine: Symbol,
        /// Initial values for the created machine's variables.
        inits: Vec<Initializer>,
    },
    /// `delete;` — terminates the executing machine and frees it.
    Delete,
    /// `send(target, e, payload);` — payload `None` is sugar for `null`.
    Send {
        /// Expression evaluating to the target machine id.
        target: Expr,
        /// Event to send.
        event: Symbol,
        /// Optional payload.
        payload: Option<Expr>,
    },
    /// `raise(e, payload);` — aborts the current statement, raising `e`
    /// locally.
    Raise {
        /// The locally raised event.
        event: Symbol,
        /// Optional payload.
        payload: Option<Expr>,
    },
    /// `leave;` — jump to the end of the entry statement and wait for the
    /// next event.
    Leave,
    /// `return;` — pop the current state off the call stack.
    Return,
    /// `assert(expr);`
    Assert(Expr),
    /// `{ s1 s2 ... }`
    Block(Vec<Stmt>),
    /// `if (e) { .. } else { .. }` — `els` may be an empty block.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Else branch.
        els: Box<Stmt>,
    },
    /// `while (e) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `call n;` — push state `n` with a saved continuation; execution
    /// resumes after this statement when `n` is popped.
    CallState(Symbol),
    /// `f(a, b);` or `x := f(a, b);` — a foreign-function call for effect
    /// or value.
    ForeignCall {
        /// Variable receiving the result, if any.
        dst: Option<Symbol>,
        /// Foreign function name.
        func: Symbol,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// A statement with its source span.
///
/// # Examples
///
/// ```
/// use p_ast::{Stmt, Expr};
///
/// let s = Stmt::block(vec![Stmt::skip(), Stmt::assert(Expr::bool(true))]);
/// assert_eq!(s.flatten().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Where it came from.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement with a synthetic span.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt {
            kind,
            span: Span::SYNTHETIC,
        }
    }

    /// Creates a statement with a source span.
    pub fn spanned(kind: StmtKind, span: Span) -> Stmt {
        Stmt { kind, span }
    }

    /// `skip;`
    pub fn skip() -> Stmt {
        Stmt::new(StmtKind::Skip)
    }

    /// `dst := value;`
    pub fn assign(dst: Symbol, value: Expr) -> Stmt {
        Stmt::new(StmtKind::Assign { dst, value })
    }

    /// `dst := new machine(inits);`
    pub fn new_machine(dst: Symbol, machine: Symbol, inits: Vec<Initializer>) -> Stmt {
        Stmt::new(StmtKind::New {
            dst,
            machine,
            inits,
        })
    }

    /// `delete;`
    pub fn delete() -> Stmt {
        Stmt::new(StmtKind::Delete)
    }

    /// `send(target, event);`
    pub fn send(target: Expr, event: Symbol) -> Stmt {
        Stmt::new(StmtKind::Send {
            target,
            event,
            payload: None,
        })
    }

    /// `send(target, event, payload);`
    pub fn send_with(target: Expr, event: Symbol, payload: Expr) -> Stmt {
        Stmt::new(StmtKind::Send {
            target,
            event,
            payload: Some(payload),
        })
    }

    /// `raise(event);`
    pub fn raise(event: Symbol) -> Stmt {
        Stmt::new(StmtKind::Raise {
            event,
            payload: None,
        })
    }

    /// `raise(event, payload);`
    pub fn raise_with(event: Symbol, payload: Expr) -> Stmt {
        Stmt::new(StmtKind::Raise {
            event,
            payload: Some(payload),
        })
    }

    /// `leave;`
    pub fn leave() -> Stmt {
        Stmt::new(StmtKind::Leave)
    }

    /// `return;`
    pub fn ret() -> Stmt {
        Stmt::new(StmtKind::Return)
    }

    /// `assert(cond);`
    pub fn assert(cond: Expr) -> Stmt {
        Stmt::new(StmtKind::Assert(cond))
    }

    /// A block of statements.
    pub fn block(stmts: Vec<Stmt>) -> Stmt {
        Stmt::new(StmtKind::Block(stmts))
    }

    /// `if (cond) { then } else { els }`
    pub fn if_else(cond: Expr, then: Stmt, els: Stmt) -> Stmt {
        Stmt::new(StmtKind::If {
            cond,
            then: Box::new(then),
            els: Box::new(els),
        })
    }

    /// `if (cond) { then }`
    pub fn if_then(cond: Expr, then: Stmt) -> Stmt {
        Stmt::if_else(cond, then, Stmt::block(Vec::new()))
    }

    /// `while (cond) { body }`
    pub fn while_loop(cond: Expr, body: Stmt) -> Stmt {
        Stmt::new(StmtKind::While {
            cond,
            body: Box::new(body),
        })
    }

    /// `call state;`
    pub fn call_state(state: Symbol) -> Stmt {
        Stmt::new(StmtKind::CallState(state))
    }

    /// `func(args);`
    pub fn foreign(func: Symbol, args: Vec<Expr>) -> Stmt {
        Stmt::new(StmtKind::ForeignCall {
            dst: None,
            func,
            args,
        })
    }

    /// `dst := func(args);`
    pub fn foreign_into(dst: Symbol, func: Symbol, args: Vec<Expr>) -> Stmt {
        Stmt::new(StmtKind::ForeignCall {
            dst: Some(dst),
            func,
            args,
        })
    }

    /// Returns the statements of a block, or a one-element slice view of
    /// any other statement.
    pub fn flatten(&self) -> Vec<&Stmt> {
        match &self.kind {
            StmtKind::Block(stmts) => stmts.iter().collect(),
            _ => vec![self],
        }
    }

    /// Whether the statement (or any sub-statement/expression) uses the
    /// nondeterministic choice `*`.
    pub fn contains_nondet(&self) -> bool {
        let mut found = false;
        self.for_each_expr(&mut |e| found |= e.contains_nondet());
        if found {
            return true;
        }
        self.for_each_child(&mut |s| found |= s.contains_nondet());
        found
    }

    /// Calls `f` on every direct child statement.
    pub fn for_each_child<F: FnMut(&Stmt)>(&self, f: &mut F) {
        match &self.kind {
            StmtKind::Block(stmts) => stmts.iter().for_each(&mut *f),
            StmtKind::If { then, els, .. } => {
                f(then);
                f(els);
            }
            StmtKind::While { body, .. } => f(body),
            _ => {}
        }
    }

    /// Calls `f` on every expression appearing directly in this statement
    /// (not descending into child statements).
    pub fn for_each_expr<F: FnMut(&Expr)>(&self, f: &mut F) {
        match &self.kind {
            StmtKind::Assign { value, .. } => f(value),
            StmtKind::New { inits, .. } => inits.iter().for_each(|i| f(&i.value)),
            StmtKind::Send {
                target, payload, ..
            } => {
                f(target);
                if let Some(p) = payload {
                    f(p);
                }
            }
            StmtKind::Raise { payload, .. } => {
                if let Some(p) = payload {
                    f(p);
                }
            }
            StmtKind::Assert(e) => f(e),
            StmtKind::If { cond, .. } => f(cond),
            StmtKind::While { cond, .. } => f(cond),
            StmtKind::ForeignCall { args, .. } => args.iter().for_each(&mut *f),
            StmtKind::Skip
            | StmtKind::Delete
            | StmtKind::Leave
            | StmtKind::Return
            | StmtKind::Block(_)
            | StmtKind::CallState(_) => {}
        }
    }
}

impl Default for Stmt {
    /// The default statement is `skip`.
    fn default() -> Stmt {
        Stmt::skip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Interner};

    #[test]
    fn flatten_block_vs_single() {
        let s = Stmt::block(vec![Stmt::skip(), Stmt::leave(), Stmt::ret()]);
        assert_eq!(s.flatten().len(), 3);
        assert_eq!(Stmt::delete().flatten().len(), 1);
    }

    #[test]
    fn contains_nondet_in_nested_statement() {
        let inner = Stmt::if_then(Expr::nondet(), Stmt::skip());
        let outer = Stmt::while_loop(Expr::bool(true), Stmt::block(vec![inner]));
        assert!(outer.contains_nondet());
        assert!(!Stmt::skip().contains_nondet());
    }

    #[test]
    fn for_each_expr_visits_all_direct_exprs() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let e = i.intern("E");
        let s = Stmt::send_with(
            Expr::this(),
            e,
            Expr::binary(BinOp::Add, Expr::int(1), Expr::name(x)),
        );
        let mut count = 0;
        s.for_each_expr(&mut |_| count += 1);
        assert_eq!(count, 2); // target + payload
    }

    #[test]
    fn default_is_skip() {
        assert_eq!(Stmt::default().kind, StmtKind::Skip);
    }

    #[test]
    fn if_then_synthesizes_empty_else() {
        let s = Stmt::if_then(Expr::bool(true), Stmt::skip());
        match s.kind {
            StmtKind::If { els, .. } => match els.kind {
                StmtKind::Block(b) => assert!(b.is_empty()),
                other => panic!("expected empty block, got {other:?}"),
            },
            other => panic!("expected if, got {other:?}"),
        }
    }
}
