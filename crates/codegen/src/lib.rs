//! C code generation — the compilation half of §4 of the paper.
//!
//! The paper's compiler emits "a collection of indexed and
//! statically-allocated data structures that are examined by the runtime":
//! event names become a C enumeration, machine types / variables / states
//! become enumerations, each state carries tables of outgoing transitions,
//! deferred events and installed actions plus entry/exit function
//! pointers, and a top-level driver structure indexes everything. Entry,
//! exit and action bodies are generated as C functions.
//!
//! [`generate_c`] reproduces that layout: it checks the program, erases
//! its ghost parts (ghost machines never reach generated code, §3.3),
//! lowers it to the dense table form, and prints one self-contained `.c`
//! translation unit containing the runtime ABI declarations, the tables
//! and the function bodies. The output is structured, compilable C; it
//! links against a `p_runtime.h` ABI whose declarations are included in
//! the prelude.
//!
//! [`generate_rust`] is the second backend, with the opposite audience:
//! it compiles the *unerased* program — ghosts and `*`-choices included
//! — into a Rust statement-level jump table implementing
//! `p_semantics::compiled::CompiledProgram`, for the model checker's
//! `--compiled` fast path. Where the C backend serves deployment and
//! must never see a ghost, the Rust backend serves verification and
//! must reproduce the interpreter bit for bit.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dot;
mod emit;
mod rust;

pub use dot::{machine_to_dot, program_to_dot};
pub use emit::{generate_c, generate_c_from_lowered, COutput, CodegenError, CodegenStats};
pub use rust::{generate_rust, RustOutput};

#[cfg(test)]
mod tests {
    use super::*;

    const ELEVATOR: &str = r#"
        event unit;
        event OpenDoor;
        event CloseDoor : int;

        machine Elevator {
            var floor : int;
            ghost var env : id;
            action Ignore { skip; }
            state Init {
                entry { floor := 0; raise(unit); }
                on unit goto Closed;
            }
            state Closed {
                defer CloseDoor;
                exit { floor := floor + 1; }
                on OpenDoor goto Opening;
                on unit push Init;
            }
            state Opening {
                on OpenDoor do Ignore;
            }
        }

        ghost machine Env {
            var e : id;
            state S { entry { e := new Elevator(); send(e, OpenDoor); } }
        }

        main Env();
    "#;

    fn output() -> COutput {
        let program = p_parser::parse(ELEVATOR).unwrap();
        generate_c(&program).unwrap()
    }

    #[test]
    fn emits_event_and_machine_enums() {
        let out = output();
        assert!(out.code.contains("typedef enum PEventId"));
        assert!(out.code.contains("P_EVENT_unit = 0"));
        assert!(out.code.contains("P_EVENT_OpenDoor = 1"));
        assert!(out.code.contains("P_EVENT_COUNT = 3"));
        assert!(out.code.contains("P_MACHINE_Elevator = 0"));
    }

    #[test]
    fn ghost_machines_are_not_generated() {
        let out = output();
        assert!(!out.code.contains("P_MACHINE_Env"));
        assert!(!out.code.contains("env"), "ghost var must be erased");
        assert_eq!(out.stats.machines, 1);
    }

    #[test]
    fn emits_state_tables() {
        let out = output();
        // Transition table entries: event, target state, kind.
        assert!(out
            .code
            .contains("{ P_EVENT_unit, P_STATE_Elevator_Closed, P_TRANS_STEP }"));
        assert!(out
            .code
            .contains("{ P_EVENT_unit, P_STATE_Elevator_Init, P_TRANS_CALL }"));
        // Deferred set of Closed.
        assert!(out.code.contains("Elevator_Closed_deferred"));
        assert!(out.code.contains("P_EVENT_CloseDoor"));
        // Action binding table.
        assert!(out
            .code
            .contains("{ P_EVENT_OpenDoor, P_ACTION_Elevator_Ignore }"));
    }

    #[test]
    fn emits_entry_exit_and_action_functions() {
        let out = output();
        assert!(out
            .code
            .contains("static void Elevator_Init_entry(StateMachineContext *ctx)"));
        assert!(out
            .code
            .contains("static void Elevator_Closed_exit(StateMachineContext *ctx)"));
        assert!(out
            .code
            .contains("static void Elevator_action_Ignore(StateMachineContext *ctx)"));
        // Statement translation.
        assert!(out
            .code
            .contains("p_assign(ctx, ELEVATOR_VAR_floor, p_int(0));"));
        assert!(out.code.contains("p_raise(ctx, P_EVENT_unit, p_null());"));
        assert!(
            out.code.contains("return;"),
            "raise must terminate the function"
        );
    }

    #[test]
    fn emits_driver_struct() {
        let out = output();
        assert!(out.code.contains("const PDriverDecl p_driver"));
        assert!(out.code.contains("Elevator_states"));
        assert_eq!(out.stats.events, 3);
        assert_eq!(out.stats.states, 3);
        assert!(out.stats.lines > 50);
    }

    #[test]
    fn braces_are_balanced() {
        let out = output();
        let opens = out.code.matches('{').count();
        let closes = out.code.matches('}').count();
        assert_eq!(opens, closes);
        let parens_open = out.code.matches('(').count();
        let parens_close = out.code.matches(')').count();
        assert_eq!(parens_open, parens_close);
    }

    #[test]
    fn unerased_ghosts_are_rejected_not_emitted() {
        // Lowering WITHOUT erasure keeps the ghost Env machine; the C
        // emitter must refuse it (it used to silently emit ghosts).
        let program = p_parser::parse(ELEVATOR).unwrap();
        let lowered = p_semantics::lower(&program).unwrap();
        let err = generate_c_from_lowered(&lowered).unwrap_err();
        assert!(matches!(err, CodegenError::Ghost { ref machine } if machine == "Env"));
        assert!(err.to_string().contains("ghost machine `Env`"));
    }

    #[test]
    fn rust_emitter_compiles_the_full_program() {
        // The Rust emitter targets the checker: ghosts and `*` included.
        let program = p_parser::parse(ELEVATOR).unwrap();
        let lowered = p_semantics::lower(&program).unwrap();
        let out = generate_rust(&lowered, "elevator_like");
        assert!(out.code.contains("pub struct Compiled"));
        assert!(out.code.contains("impl CompiledProgram for Compiled"));
        assert!(out
            .code
            .contains(&format!("pub const DIGEST: u128 = 0x{:032x};", out.digest)));
        assert_eq!(
            out.digest,
            p_semantics::compiled::program_digest(&lowered),
            "embedded digest must match the lowered program"
        );
        // One statement function per arena entry, all dispatched.
        assert!(out.code.matches("fn s").count() >= lowered.code.stmt_count());
        assert_eq!(out.code.matches('{').count(), out.code.matches('}').count());
        assert!(out.stats.machines == 2, "ghost Env is compiled too");
    }

    #[test]
    fn rust_emitter_is_deterministic() {
        let program = p_parser::parse(ELEVATOR).unwrap();
        let lowered = p_semantics::lower(&program).unwrap();
        let a = generate_rust(&lowered, "x");
        let b = generate_rust(&lowered, "x");
        assert_eq!(a.code, b.code);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn rejects_invalid_programs() {
        let bad = p_parser::parse(
            "machine M { var x : int; state S { entry { x := true; } } } main M();",
        )
        .unwrap();
        assert!(generate_c(&bad).is_err());
    }

    #[test]
    fn control_flow_statements_translate() {
        let src = r#"
            event e : int;
            machine M {
                var x : int;
                var peer : id;
                foreign fn f(int) : int;
                state S {
                    entry {
                        while (x < 10) { x := x + 1; }
                        if (x == 10) { send(peer, e, x); } else { leave; }
                        x := f(x);
                        call T;
                        return;
                    }
                }
                state T { entry { delete; } }
            }
            main M();
        "#;
        let program = p_parser::parse(src).unwrap();
        let out = generate_c(&program).unwrap();
        assert!(out.code.contains("while (p_truthy(ctx,"));
        assert!(out.code.contains("if (p_truthy(ctx,"));
        assert!(out.code.contains("p_send(ctx,"));
        assert!(out.code.contains("p_call_state(ctx, P_STATE_M_T)"));
        assert!(out.code.contains("p_return(ctx); return;"));
        assert!(out.code.contains("p_delete(ctx); return;"));
        assert!(out.code.contains("p_foreign_M_f"));
        assert!(out.code.contains("extern PValue p_foreign_M_f"));
    }

    #[test]
    fn assert_translates_with_source_text() {
        let src = r#"
            machine M {
                var x : int;
                state S { entry { x := 1; assert(x == 1); } }
            }
            main M();
        "#;
        let program = p_parser::parse(src).unwrap();
        let out = generate_c(&program).unwrap();
        assert!(out.code.contains("p_assert(ctx,"));
    }
}
