//! Graphviz DOT export of machine state diagrams.
//!
//! P began life with a visual programming interface — Figures 1 and 2 of
//! the paper are machine diagrams. This module renders any machine (real
//! or ghost) in the same visual vocabulary: simple edges for step
//! transitions, double (dashed, here) edges for call transitions, action
//! bindings as self-annotations, and the deferred set inside the state
//! node.

use std::fmt::Write as _;

use p_ast::{MachineDecl, Program, TransitionKind};

use crate::emit::CodegenError;

/// Renders machine `name` of `program` as a DOT digraph.
///
/// # Errors
///
/// Returns [`CodegenError::UnknownMachine`] when no such machine exists.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event go;
///     machine M {
///         state A { on go goto B; }
///         state B { }
///     }
///     main M();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let dot = p_codegen::machine_to_dot(&program, "M").unwrap();
/// assert!(dot.contains("digraph M"));
/// assert!(dot.contains("A -> B"));
/// assert!(p_codegen::machine_to_dot(&program, "Nope").is_err());
/// ```
pub fn machine_to_dot(program: &Program, name: &str) -> Result<String, CodegenError> {
    let machine = program
        .machine_named(name)
        .ok_or_else(|| CodegenError::UnknownMachine(name.to_owned()))?;
    Ok(render(program, machine))
}

/// Renders every machine of the program, concatenated (one digraph per
/// machine, loadable as a multi-graph DOT file).
pub fn program_to_dot(program: &Program) -> String {
    program
        .machines
        .iter()
        .map(|m| render(program, m))
        .collect::<Vec<_>>()
        .join("\n")
}

fn render(program: &Program, machine: &MachineDecl) -> String {
    let name = |s| program.interner.resolve(s);
    let mut out = String::new();
    let title = name(machine.name);
    let _ = writeln!(out, "digraph {title} {{");
    let _ = writeln!(out, "    rankdir=TB;");
    let _ = writeln!(
        out,
        "    label=\"{}{title}\";",
        if machine.ghost {
            "ghost machine "
        } else {
            "machine "
        }
    );
    let _ = writeln!(out, "    node [shape=box, style=rounded];");

    // An invisible entry arrow into the initial state, as in Figure 1.
    if let Some(init) = machine.init_state() {
        let _ = writeln!(out, "    __init [shape=point, label=\"\"];");
        let _ = writeln!(out, "    __init -> {};", name(init.name));
    }

    for state in &machine.states {
        let sname = name(state.name);
        let mut label = sname.to_owned();
        if !state.deferred.is_empty() {
            let deferred: Vec<&str> = state.deferred.iter().map(|&e| name(e)).collect();
            let _ = write!(label, "\\ndefer {{{}}}", deferred.join(", "));
        }
        if !state.postponed.is_empty() {
            let postponed: Vec<&str> = state.postponed.iter().map(|&e| name(e)).collect();
            let _ = write!(label, "\\npostpone {{{}}}", postponed.join(", "));
        }
        let _ = writeln!(out, "    {sname} [label=\"{label}\"];");
    }

    for t in &machine.transitions {
        let style = match t.kind {
            TransitionKind::Step => "solid",
            // The paper draws call transitions as double edges; dashed +
            // open arrowhead is the conventional DOT rendering.
            TransitionKind::Call => "dashed",
        };
        let extra = match t.kind {
            TransitionKind::Step => "",
            TransitionKind::Call => ", arrowhead=empty, color=gray30",
        };
        let _ = writeln!(
            out,
            "    {} -> {} [label=\"{}\", style={style}{extra}];",
            name(t.from),
            name(t.to),
            name(t.event)
        );
    }

    for b in &machine.bindings {
        let _ = writeln!(
            out,
            "    {0} -> {0} [label=\"{1} / {2}\", style=dotted];",
            name(b.state),
            name(b.event),
            name(b.action)
        );
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elevator_like() -> Program {
        p_parser::parse(
            r#"
            event OpenDoor;
            event DoorOpened;
            machine Elevator {
                action Ignore { skip; }
                state Closed {
                    defer OpenDoor;
                    postpone OpenDoor;
                    on DoorOpened goto Opened;
                }
                state Opened {
                    on OpenDoor push Closed;
                    on DoorOpened do Ignore;
                }
            }
            ghost machine Env { state S { } }
            main Env();
            "#,
        )
        .unwrap()
    }

    #[test]
    fn renders_states_and_edge_kinds() {
        let p = elevator_like();
        let dot = machine_to_dot(&p, "Elevator").unwrap();
        assert!(dot.contains("digraph Elevator {"));
        assert!(dot.contains("Closed -> Opened [label=\"DoorOpened\", style=solid];"));
        assert!(dot.contains("Opened -> Closed [label=\"OpenDoor\", style=dashed"));
        assert!(dot.contains("Opened -> Opened [label=\"DoorOpened / Ignore\", style=dotted];"));
        assert!(dot.contains("defer {OpenDoor}"));
        assert!(dot.contains("postpone {OpenDoor}"));
        assert!(dot.contains("__init -> Closed;"));
    }

    #[test]
    fn ghost_machines_are_labeled() {
        let p = elevator_like();
        let dot = machine_to_dot(&p, "Env").unwrap();
        assert!(dot.contains("label=\"ghost machine Env\""));
    }

    #[test]
    fn unknown_machine_is_a_typed_error() {
        let p = elevator_like();
        let err = machine_to_dot(&p, "Nope").unwrap_err();
        assert!(matches!(err, CodegenError::UnknownMachine(ref n) if n == "Nope"));
        assert_eq!(err.to_string(), "no machine named `Nope`");
    }

    #[test]
    fn program_export_contains_every_machine() {
        let p = elevator_like();
        let dot = program_to_dot(&p);
        assert!(dot.contains("digraph Elevator"));
        assert!(dot.contains("digraph Env"));
    }

    #[test]
    fn braces_balance() {
        let p = elevator_like();
        let dot = program_to_dot(&p);
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
