//! Criterion bench comparing the sequential and parallel exhaustive
//! engines (jobs = 1 vs jobs = 4) on the speedup benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p_bench::figures::jobs_programs;

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for (name, compiled) in jobs_programs() {
        for jobs in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new(name, jobs), &jobs, |b, &jobs| {
                b.iter(|| {
                    let r = compiled.verify_parallel(jobs);
                    assert!(r.passed());
                    r.stats.unique_states
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
