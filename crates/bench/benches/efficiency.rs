//! Criterion bench for the §4.1 efficiency comparison: per-event cost of
//! the P-runtime driver vs. the hand-written driver on the same script.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p_bench::baseline::{efficiency_script, HandwrittenDriver};
use p_bench::figures::{p_driver_feed, p_driver_runtime};

fn bench_efficiency(c: &mut Criterion) {
    let script = efficiency_script(200);
    let mut group = c.benchmark_group("efficiency");
    group.throughput(Throughput::Elements(script.len() as u64));

    group.bench_function("p_runtime_driver", |b| {
        b.iter(|| {
            let (runtime, id) = p_driver_runtime();
            for e in &script {
                p_driver_feed(&runtime, id, *e);
            }
            runtime.events_processed()
        })
    });

    group.bench_function("handwritten_driver", |b| {
        b.iter(|| {
            let mut driver = HandwrittenDriver::new();
            for e in &script {
                driver.handle(*e);
            }
            driver.completions.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_efficiency);
criterion_main!(benches);
