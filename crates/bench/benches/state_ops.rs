//! Criterion micro-benchmarks for the allocation-light state
//! representation: copy-on-write config cloning and the incremental
//! digest against its from-scratch and hash-the-canonical-bytes
//! baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use p_core::corpus;
use p_semantics::hash::fingerprint128;
use p_semantics::{lower, Config, Engine, ForeignEnv, Granularity};

/// A mid-exploration german3 configuration: the initial state advanced
/// by a few atomic runs so queues and frames are populated.
fn warm_config(engine: &Engine<'_>) -> Config {
    let mut config = engine.initial_config();
    for _ in 0..6 {
        let Some(id) = engine.enabled_machines(&config).into_iter().next() else {
            break;
        };
        let _ = engine.run_machine(&mut config, id, &mut || false, Granularity::Atomic);
    }
    config
}

fn bench_state_ops(c: &mut Criterion) {
    let program = lower(&corpus::german3()).unwrap();
    let engine = Engine::new(&program, ForeignEnv::empty());
    let mut group = c.benchmark_group("state_ops");

    // O(#machines) refcount bumps — what every successor branch pays.
    group.bench_function("config-clone", |b| {
        let config = warm_config(&engine);
        b.iter(|| config.clone())
    });

    // The checker's hot path: clone, mutate one machine, re-digest. Only
    // the mutated machine's slot is re-encoded and re-hashed.
    group.bench_function("digest-incremental", |b| {
        let mut base = warm_config(&engine);
        base.digest(); // warm the per-slot cache
        let id = engine
            .enabled_machines(&base)
            .into_iter()
            .next()
            .expect("german3 never quiesces this early");
        b.iter(|| {
            let mut next = base.clone();
            engine
                .run_machine(&mut next, id, &mut || false, Granularity::Atomic)
                .unwrap();
            next.digest()
        })
    });

    // The per-run cost the explorers pay with the dequeue log on (the
    // default, for replay-grade traces) vs off (what the exhaustive
    // engines request): off must not allocate the per-run `dequeued`
    // vector at all.
    group.bench_function("run-machine-dequeue-log-on", |b| {
        let base = warm_config(&engine);
        let id = engine
            .enabled_machines(&base)
            .into_iter()
            .next()
            .expect("german3 never quiesces this early");
        b.iter(|| {
            let mut next = base.clone();
            engine
                .run_machine(&mut next, id, &mut || false, Granularity::Atomic)
                .unwrap()
        })
    });
    group.bench_function("run-machine-dequeue-log-off", |b| {
        let quiet = Engine::new(&program, ForeignEnv::empty()).with_dequeue_log(false);
        let base = warm_config(&quiet);
        let id = quiet
            .enabled_machines(&base)
            .into_iter()
            .next()
            .expect("german3 never quiesces this early");
        b.iter(|| {
            let mut next = base.clone();
            quiet
                .run_machine(&mut next, id, &mut || false, Granularity::Atomic)
                .unwrap()
        })
    });

    // The symmetry layer's cost per fresh state: canonical renumbering
    // of a mid-exploration german3 configuration (three interchangeable
    // clients), against the concrete incremental digest it replaces.
    group.bench_function("canonical-digest", |b| {
        let mut base = warm_config(&engine);
        base.digest(); // warm the per-slot cache
        b.iter(|| p_semantics::canonical_digest(&mut base))
    });

    // Baseline 1: every slot re-encoded and re-hashed from scratch.
    group.bench_function("digest-uncached", |b| {
        let config = warm_config(&engine);
        b.iter(|| config.digest_uncached())
    });

    // Baseline 2: the pre-CoW scheme — materialize the full canonical
    // encoding and hash it in one pass.
    group.bench_function("canonical-bytes-hash", |b| {
        let config = warm_config(&engine);
        b.iter(|| fingerprint128(&config.canonical_bytes()))
    });

    group.finish();
}

criterion_group!(benches, bench_state_ops);
criterion_main!(benches);
