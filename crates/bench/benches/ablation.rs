//! Criterion bench for the atomicity-reduction ablation (E5): exhaustive
//! exploration with scheduling at send/create (the §5 reduction) vs.
//! after every small step.

use criterion::{criterion_group, criterion_main, Criterion};
use p_core::semantics::Granularity;
use p_core::{corpus, CheckerOptions, Verifier};

fn bench_ablation(c: &mut Criterion) {
    let program = corpus::elevator_with_budget(1);
    let lowered = p_core::semantics::lower(&program).unwrap();
    let mut group = c.benchmark_group("ablation/elevator");
    group.sample_size(10);

    group.bench_function("atomic", |b| {
        b.iter(|| {
            let r = Verifier::new(&lowered).check_exhaustive();
            assert!(r.passed());
            r.stats.unique_states
        })
    });

    group.bench_function("fine_grained", |b| {
        b.iter(|| {
            let r = Verifier::new(&lowered)
                .with_options(CheckerOptions {
                    granularity: Granularity::Fine,
                    ..CheckerOptions::default()
                })
                .check_exhaustive();
            assert!(r.passed());
            r.stats.unique_states
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
