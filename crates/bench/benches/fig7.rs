//! Criterion bench for Figure 7: delay-bounded exploration cost per delay
//! budget, one group per benchmark program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p_bench::figures::fig7_programs;

fn bench_fig7(c: &mut Criterion) {
    for (name, compiled) in fig7_programs() {
        let mut group = c.benchmark_group(format!("fig7/{name}"));
        group.sample_size(10);
        for d in [0usize, 1, 2, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
                b.iter(|| {
                    let r = compiled.verify_delay_bounded(d);
                    assert!(r.report.passed());
                    r.report.stats.unique_states
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
