//! Criterion bench for Figure 8: exhaustive exploration of each USB
//! machine analog.

use criterion::{criterion_group, criterion_main, Criterion};
use p_core::{corpus, Compiled};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for (name, program) in corpus::figure8_machines() {
        let compiled = Compiled::from_program(program).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = compiled.verify();
                assert!(r.passed());
                r.stats.unique_states
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
