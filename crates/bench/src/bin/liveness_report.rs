//! E6: the liveness checks of §3.2 (future work in the paper, implemented
//! here) across the corpus and the dedicated liveness examples.
//!
//! ```sh
//! cargo run -p p-bench --bin liveness_report
//! ```

use p_core::{corpus, Compiled};

fn main() {
    println!("Liveness checking (§3.2) — bounded fair-cycle analysis\n");

    let programs: Vec<(&str, p_core::Program)> = vec![
        ("ping_pong", corpus::ping_pong()),
        ("elevator (budget 1)", corpus::elevator_with_budget(1)),
        ("usb_dsm (budget 3)", {
            let src = corpus::USB_DSM_SRC.replace("budget = 7", "budget = 3");
            p_core::parser::parse(&src).unwrap()
        }),
    ];

    for (name, program) in programs {
        let compiled = Compiled::from_program(program).unwrap();
        let report = compiled.verify_liveness();
        println!(
            "{name}: {} ({} states, complete = {})",
            if report.passed() {
                "no violations"
            } else {
                "VIOLATIONS"
            },
            report.stats.unique_states,
            report.complete
        );
        for v in &report.violations {
            println!("    - {v}");
        }
    }

    // Programs designed to violate each property.
    println!("\nseeded liveness defects:");
    let spinner = r#"
        event tick;
        machine Spinner {
            state S { entry { send(this, tick); } on tick goto S; }
        }
        main Spinner();
    "#;
    let starved = r#"
        event job;
        event tick;
        machine Busy {
            state S { defer job; entry { send(this, tick); } on tick goto S; }
        }
        ghost machine Env {
            var b : id;
            state D { entry { b := new Busy(); send(b, job); } }
        }
        main Env();
    "#;
    for (name, src) in [
        ("machine-runs-forever", spinner),
        ("event-starved", starved),
    ] {
        let compiled = Compiled::from_source(src).unwrap();
        let report = compiled.verify_liveness();
        println!("{name}: {} violation(s)", report.violations.len());
        for v in &report.violations {
            println!("    - {v}");
        }
    }
}
