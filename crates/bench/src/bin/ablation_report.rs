//! The atomicity-reduction ablation (E5): §5 argues that context switches
//! are only needed after `send`/`new`. This report explores the same
//! programs with the reduction on (atomic runs) and off (a context switch
//! after every small step) and shows that verdicts agree while the
//! reduced state space is much smaller.
//!
//! ```sh
//! cargo run -p p-bench --release --bin ablation_report
//! ```

use p_bench::figures::ablation_rows;

fn main() {
    println!("Atomicity-reduction ablation (§5)\n");
    println!(
        "{:<10} {:>14} {:>12} {:>14} {:>12} {:>10} {:>9}",
        "benchmark", "atomic states", "time", "fine states", "time", "reduction", "verdicts"
    );
    for r in ablation_rows() {
        println!(
            "{:<10} {:>14} {:>11.1?} {:>14} {:>11.1?} {:>9.1}x {:>9}",
            r.name,
            r.atomic_states,
            r.atomic_time,
            r.fine_states,
            r.fine_time,
            r.fine_states as f64 / r.atomic_states as f64,
            if r.same_verdict { "agree" } else { "DIFFER" }
        );
    }
    println!(
        "\nclaim: scheduling only at send/create preserves all errors while\n\
         shrinking the explored space — the reduction column is the saving."
    );
}
