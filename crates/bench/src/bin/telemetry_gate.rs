//! CI overhead gate: compares a fresh `perf_report` run against the
//! committed `BENCH_checker.json` and fails (exit 1) if median checker
//! throughput regressed by more than the threshold.
//!
//! ```sh
//! telemetry_gate FRESH.json BASELINE.json [--threshold 0.10] [--mode exhaustive] [--only a,b,c]
//! ```
//!
//! `--only` restricts *both* reports to the named programs before taking
//! medians, so a fresh run of the fast corpus subset (perf_report
//! `--only`) compares against the same subset of the committed
//! baseline — the `bench-regression` job's apples-to-apples guard.
//!
//! Both files are [`BenchReport`] JSON. The comparison is on the median
//! `states_per_sec` across rows of the given mode (median, not mean, so
//! one slow CI outlier program cannot flip the verdict). The CI job runs
//! `perf_report` twice — with the `telemetry` feature (default) and with
//! `--no-default-features` — and gates both against the committed
//! baseline, which is what enforces the "hooks compiled in but disabled
//! cost < 10%" budget.
//!
//! Absolute wall-clock on shared CI runners is noisy; the threshold is a
//! guard against order-of-magnitude mistakes (accidentally enabled
//! sinks, hooks in the hot loop), not a microbenchmark.

use std::process::ExitCode;

use p_core::telemetry::json::JsonValue;
use p_core::telemetry::BenchReport;

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::from_json(&value).ok_or_else(|| format!("{path}: not a bench report"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 0.10_f64;
    let mut mode = "exhaustive".to_owned();
    let mut only: Option<Vec<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                let value = args.get(i + 1).ok_or("--threshold needs a value")?;
                threshold = value
                    .parse()
                    .map_err(|_| format!("--threshold: `{value}` is not a number"))?;
                i += 2;
            }
            "--mode" => {
                mode = args.get(i + 1).ok_or("--mode needs a value")?.clone();
                i += 2;
            }
            "--only" => {
                let list = args
                    .get(i + 1)
                    .ok_or("--only needs a comma-separated list")?;
                only = Some(list.split(',').map(str::to_owned).collect::<Vec<_>>());
                i += 2;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            _ => {
                paths.push(&args[i]);
                i += 1;
            }
        }
    }
    let [fresh_path, baseline_path] = paths.as_slice() else {
        return Err(
            "usage: telemetry_gate FRESH.json BASELINE.json [--threshold F] [--mode M] [--only a,b,c]"
                .to_owned(),
        );
    };

    let mut fresh = load(fresh_path)?;
    let mut baseline = load(baseline_path)?;
    if let Some(names) = &only {
        for report in [&mut fresh, &mut baseline] {
            report.programs.retain(|r| names.contains(&r.name));
        }
        if fresh.programs.is_empty() || baseline.programs.is_empty() {
            return Err("--only filtered out every row of one report".to_owned());
        }
    }
    let fresh_median = fresh
        .median_states_per_sec(Some(&mode))
        .ok_or_else(|| format!("{fresh_path}: no `{mode}` rows"))?;
    let baseline_median = baseline
        .median_states_per_sec(Some(&mode))
        .ok_or_else(|| format!("{baseline_path}: no `{mode}` rows"))?;

    let ratio = fresh_median / baseline_median;
    println!(
        "mode {mode}: fresh median {fresh_median:.0} states/s, baseline {baseline_median:.0} states/s, ratio {ratio:.3} (floor {:.3})",
        1.0 - threshold
    );
    if ratio < 1.0 - threshold {
        return Err(format!(
            "throughput regression: median {mode} states/sec dropped {:.1}% (> {:.0}% allowed)",
            (1.0 - ratio) * 100.0,
            threshold * 100.0
        ));
    }
    println!("OK: within the {:.0}% budget", threshold * 100.0);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("telemetry_gate: {message}");
            ExitCode::FAILURE
        }
    }
}
