//! Parallel-exploration report: exhaustive verification of the three
//! largest corpus benchmarks at increasing worker counts, with the
//! jobs=1 sequential engine as the baseline.
//!
//! The state counts and verdicts are asserted identical across worker
//! counts (by `jobs_rows`); the table shows what parallelism buys in
//! wall-clock time on this machine.
//!
//! ```sh
//! cargo run --release -p p-bench --bin jobs_report [JOBS...]
//! ```
//!
//! With no arguments the report runs jobs = 1, 2, 4 and the detected
//! core count.

use p_bench::figures::{jobs_programs, jobs_rows};

fn main() {
    let mut job_counts: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    if job_counts.is_empty() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        job_counts = vec![1, 2, 4];
        if !job_counts.contains(&cores) {
            job_counts.push(cores);
        }
        job_counts.sort_unstable();
        job_counts.dedup();
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Parallel exhaustive exploration — jobs = {job_counts:?} ({cores} core(s) available)\n"
    );
    println!(
        "{:<12} {:>5} {:>10} {:>12} {:>12} {:>9}",
        "benchmark", "jobs", "states", "transitions", "time", "speedup"
    );

    let rows = jobs_rows(&job_counts);
    let mut baseline = std::collections::HashMap::new();
    for row in &rows {
        if row.jobs == job_counts[0] {
            baseline.insert(row.name, row.duration);
        }
        let speedup = baseline
            .get(row.name)
            .map(|base| base.as_secs_f64() / row.duration.as_secs_f64().max(1e-9))
            .unwrap_or(1.0);
        println!(
            "{:<12} {:>5} {:>10} {:>12} {:>11.1?} {:>8.2}x",
            row.name, row.jobs, row.states, row.transitions, row.duration, speedup
        );
    }

    println!(
        "\nAll {} benchmark(s) agree on states and verdict at every worker count.",
        jobs_programs().len()
    );
    if cores == 1 {
        println!("NOTE: single-core machine — parallel runs only add coordination overhead here.");
    }
}
