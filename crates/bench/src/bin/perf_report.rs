//! Checker-throughput report: exhaustive verification of every corpus
//! program, printed as a table and written to `BENCH_checker.json`
//! (states/sec, unique states, peak stored bytes, and the sleep-set POR
//! and symmetry-reduction comparisons per program).
//!
//! Each program is explored five times — plain interpreter, the
//! `--compiled` ahead-of-time backend, `--por`, `--symmetry`, and
//! `--por --symmetry` — and the runs are asserted to agree on the
//! verdict, with the compiled backend bit-identical on states and
//! transitions, POR preserving unique states exactly and symmetry never
//! increasing them, so the JSON doubles as a soundness witness for the
//! numbers it reports. The `exhaustive`/`compiled` row pairs give the
//! compiled backend's speedup program by program.
//!
//! The rows are [`p_core::telemetry::ExplorationMetrics`] — the same
//! schema `p verify --profile` embeds in profile JSON — wrapped in a
//! [`p_core::telemetry::BenchReport`], which is what the CI
//! `telemetry_gate` parses back to compare throughput.
//!
//! ```sh
//! cargo run --release -p p-bench --bin perf_report [OUT.json]
//! ```
//!
//! With no argument the JSON goes to `BENCH_checker.json` in the current
//! directory.

use p_bench::figures::perf_rows;
use p_core::telemetry::BenchReport;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_checker.json".to_owned());

    println!("Checker throughput — exhaustive exploration, sequential engine\n");
    println!(
        "{:<12} {:<14} {:>8} {:>12} {:>10} {:>12} {:>11} {:>10} {:>12} {:>9}",
        "program",
        "mode",
        "states",
        "transitions",
        "time",
        "states/sec",
        "bytes/st",
        "dedup",
        "sleep-pruned",
        "merges"
    );

    let report = BenchReport {
        programs: perf_rows(),
    };
    for row in &report.programs {
        println!(
            "{:<12} {:<14} {:>8} {:>12} {:>9.1}ms {:>12.0} {:>11.1} {:>10} {:>12} {:>9}",
            row.name,
            row.mode,
            row.states,
            row.transitions,
            row.seconds * 1e3,
            row.states_per_sec(),
            row.bytes_per_state(),
            row.dedup_hits,
            row.sleep_pruned,
            row.symmetry_merges,
        );
    }

    let json = report.to_json().render_pretty();
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "\nWrote {out_path}; compiled backend, POR and symmetry agreed with full \
         exploration on the verdict for all {} program(s).",
        report.programs.len() / 5
    );
}
