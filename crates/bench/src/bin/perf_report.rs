//! Checker-throughput report: exhaustive verification of every corpus
//! program, printed as a table and written to `BENCH_checker.json`
//! (states/sec, unique states, peak stored bytes, and the sleep-set POR
//! and symmetry-reduction comparisons per program).
//!
//! Each program is explored five times — plain interpreter, the
//! `--compiled` ahead-of-time backend, `--por`, `--symmetry`, and
//! `--por --symmetry` — and the runs are asserted to agree on the
//! verdict, with the compiled backend bit-identical on states and
//! transitions, POR preserving unique states exactly and symmetry never
//! increasing them, so the JSON doubles as a soundness witness for the
//! numbers it reports. The `exhaustive`/`compiled` row pairs give the
//! compiled backend's speedup program by program.
//!
//! The rows are [`p_core::telemetry::ExplorationMetrics`] — the same
//! schema `p verify --profile` embeds in profile JSON — wrapped in a
//! [`p_core::telemetry::BenchReport`], which is what the CI
//! `telemetry_gate` parses back to compare throughput.
//!
//! ```sh
//! cargo run --release -p p-bench --bin perf_report [OUT.json] [--only a,b,c]
//! ```
//!
//! With no argument the JSON goes to `BENCH_checker.json` in the current
//! directory. `--only` restricts the run to a comma-separated list of
//! corpus program names — the fast-subset mode the `bench-regression`
//! CI job uses to guard the throughput trajectory on every PR.

use p_bench::figures::perf_rows_for;
use p_core::telemetry::BenchReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_checker.json".to_owned();
    let mut only: Option<Vec<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--only" => {
                let list = args
                    .get(i + 1)
                    .expect("--only needs a comma-separated list");
                only = Some(list.split(',').map(str::to_owned).collect());
                i += 2;
            }
            other if other.starts_with("--") => panic!("unknown flag `{other}`"),
            _ => {
                out_path = args[i].clone();
                i += 1;
            }
        }
    }

    println!("Checker throughput — exhaustive exploration, sequential engine\n");
    println!(
        "{:<12} {:<14} {:>8} {:>12} {:>10} {:>12} {:>11} {:>10} {:>12} {:>9}  \
         phase ms (exec/digest/clone/canon/table)",
        "program",
        "mode",
        "states",
        "transitions",
        "time",
        "states/sec",
        "bytes/st",
        "dedup",
        "sleep-pruned",
        "merges",
    );

    let report = BenchReport {
        programs: perf_rows_for(only.as_deref()),
    };
    for row in &report.programs {
        println!(
            "{:<12} {:<14} {:>8} {:>12} {:>9.1}ms {:>12.0} {:>11.1} {:>10} {:>12} {:>9}  \
             {:.0}/{:.0}/{:.0}/{:.0}/{:.0}",
            row.name,
            row.mode,
            row.states,
            row.transitions,
            row.seconds * 1e3,
            row.states_per_sec(),
            row.bytes_per_state(),
            row.dedup_hits,
            row.sleep_pruned,
            row.symmetry_merges,
            row.exec_seconds * 1e3,
            row.digest_seconds * 1e3,
            row.clone_seconds * 1e3,
            row.canon_seconds * 1e3,
            row.table_seconds * 1e3,
        );
    }

    let json = report.to_json().render_pretty();
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "\nWrote {out_path}; compiled backend, POR and symmetry agreed with full \
         exploration on the verdict for all {} program(s).",
        report.programs.len() / 5
    );
    if only.is_some() {
        println!("(--only subset — do not commit this file as the benchmark baseline)");
    }
}
