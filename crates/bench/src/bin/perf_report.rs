//! Checker-throughput report: exhaustive verification of every corpus
//! program, printed as a table and written to `BENCH_checker.json`
//! (states/sec, unique states, peak stored bytes, and the sleep-set POR
//! comparison per program).
//!
//! Each program is explored twice — plain and with `--por` — and the two
//! runs are asserted to agree on verdict and unique states, so the JSON
//! doubles as a POR-soundness witness for the numbers it reports.
//!
//! ```sh
//! cargo run --release -p p-bench --bin perf_report [OUT.json]
//! ```
//!
//! With no argument the JSON goes to `BENCH_checker.json` in the current
//! directory.

use std::fmt::Write as _;

use p_bench::figures::perf_rows;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_checker.json".to_owned());

    println!("Checker throughput — exhaustive exploration, sequential engine\n");
    println!(
        "{:<12} {:>8} {:>12} {:>11} {:>12} {:>11} {:>12} {:>10}",
        "program",
        "states",
        "transitions",
        "time",
        "states/sec",
        "bytes/st",
        "por-trans",
        "por-time"
    );

    let rows = perf_rows();
    let mut json = String::from("{\n  \"programs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        println!(
            "{:<12} {:>8} {:>12} {:>10.1?} {:>12.0} {:>11.1} {:>12} {:>9.1?}",
            row.name,
            row.states,
            row.transitions,
            row.duration,
            row.states_per_sec(),
            row.bytes_per_state(),
            row.por_transitions,
            row.por_duration,
        );
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"states\": {}, \"transitions\": {}, \
             \"seconds\": {:.6}, \"states_per_sec\": {:.1}, \
             \"stored_bytes\": {}, \"bytes_per_state\": {:.1}, \
             \"passed\": {}, \"por\": {{\"transitions\": {}, \"seconds\": {:.6}}}}}{}",
            row.name,
            row.states,
            row.transitions,
            row.duration.as_secs_f64(),
            row.states_per_sec(),
            row.stored_bytes,
            row.bytes_per_state(),
            row.passed,
            row.por_transitions,
            row.por_duration.as_secs_f64(),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "\nWrote {out_path}; POR agreed with full exploration on verdict and states for all {} program(s).",
        rows.len()
    );
}
