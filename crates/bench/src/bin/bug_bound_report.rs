//! Regenerates the §5 empirical claim: "bugs are found within a delay
//! bound of 2" — for each seeded-bug variant of the Figure 7 benchmarks,
//! the smallest delay bound that exposes the bug.
//!
//! ```sh
//! cargo run -p p-bench --bin bug_bound_report
//! ```

use p_bench::figures::bug_bounds;

fn main() {
    println!("Minimum delay bound needed to find each seeded bug (§5)\n");
    println!(
        "{:<12} {:>12} {:>14}",
        "benchmark", "found at d", "trace length"
    );
    let mut worst = 0;
    for (name, found, trace_len) in bug_bounds(4) {
        match found {
            Some(d) => {
                worst = worst.max(d);
                println!("{name:<12} {d:>12} {trace_len:>14}");
            }
            None => println!("{name:<12} {:>12} {:>14}", "not found", "-"),
        }
    }
    println!(
        "\npaper claim: bugs found within delay bound 2 — {}",
        if worst <= 2 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
