//! Runtime-executor throughput report: the sharded executor driven by
//! two synthetic workloads across machine counts and shard counts,
//! printed as a table and written to `BENCH_runtime.json`.
//!
//! Workloads:
//!
//! * **fan_out** — independent `Counter` machines, events injected
//!   round-robin from four producer threads. Every delivery is one
//!   machine run; scaling is limited only by scheduling overhead, so
//!   this is the workload the CI gate watches.
//! * **ping_ring** — closed rings of eight `Relay` machines wired
//!   through id-typed variables (each ring co-located on one shard, as
//!   the cross-shard boundary requires). One `go` injection per ring
//!   cascades around the ring inside a single run-to-completion
//!   delivery, so the ratio of machine runs to injections measures the
//!   in-program send path, not the mailbox path.
//!
//! Rows are [`p_core::telemetry::RuntimeBenchRow`] wrapped in a
//! [`p_core::telemetry::RuntimeBenchReport`] (`p-runtime-bench-v1`),
//! the runtime analog of `BENCH_checker.json`.
//!
//! ```sh
//! cargo run --release -p p-bench --bin runtime_report [OUT.json] [--quick] [--xl] [--gate]
//! ```
//!
//! `--quick` restricts to 1k machines on 1 and 4 shards (the CI subset);
//! `--xl` adds the million-machine cells (minutes of wall clock — run
//! locally, not in CI); `--gate` exits nonzero unless fan-out throughput
//! on 4 shards clears a generous floor relative to 1 shard (see the gate
//! constant below for why the floor is below 1.0).

use std::time::Instant;

use p_core::runtime::{Executor, Injection, OverflowPolicy, Runtime};
use p_core::telemetry::{RuntimeBenchReport, RuntimeBenchRow};
use p_core::{MachineId, Value};

const COUNTER: &str = r#"
    event tick;
    machine Counter {
        var n : int;
        state Run { on tick do bump; }
        action bump { n := n + 1; }
    }
    main Counter();
"#;

const RING: &str = r#"
    event go : int;
    event wire : id;
    machine Relay {
        var next : id;
        var wired : bool;
        var hits : int;
        state Run {
            on wire do setnext;
            on go do forward;
        }
        action setnext { next := arg; wired := true; }
        action forward {
            hits := hits + 1;
            if (wired) {
                if (arg > 0) { send(next, go, arg - 1); }
            }
        }
    }
    main Relay();
"#;

/// Ring size for the ping_ring workload.
const RING_LEN: usize = 8;
/// Laps-worth of hops each ring injection carries (two full laps).
const RING_HOPS: i64 = (2 * RING_LEN - 1) as i64;
/// Producer threads for the fan_out workload.
const PRODUCERS: usize = 4;

/// The `--gate` floor: fan-out events/sec on 4 shards must be at least
/// this fraction of the 1-shard rate. The floor sits well below 1.0 on
/// purpose: CI runners (and this repo's reference container) expose a
/// single core, where extra shards buy no parallelism and pay thread
/// scheduling overhead — the gate exists to catch collapses (lock
/// convoys, lost wakeups), not to assert a speedup the hardware cannot
/// show. See EXPERIMENTS.md E14 for measured numbers.
const GATE_FLOOR: f64 = 0.5;

fn fan_out_cell(machines: usize, shards: usize) -> RuntimeBenchRow {
    let injections = (2 * machines).clamp(20_000, 400_000);
    let program = p_core::parser::parse(COUNTER).unwrap();
    let exec = Executor::builder(&program)
        .unwrap()
        .shards(shards)
        .mailbox_capacity(64)
        .credits(4096)
        .overflow(OverflowPolicy::Block)
        .record_latency(true)
        .start();
    let ids: Vec<MachineId> = (0..machines)
        .map(|_| {
            exec.create_machine("Counter", &[("n", Value::Int(0))])
                .unwrap()
        })
        .collect();
    let runtimes: Vec<Runtime> = (0..shards)
        .map(|s| exec.shard_runtime(s).unwrap().clone())
        .collect();
    // Machine creation ran each Counter's entry once; subtract those
    // runs so `events` counts only the timed deliveries.
    let baseline: u64 = runtimes.iter().map(Runtime::runs_executed).sum();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let exec = &exec;
            let ids = &ids;
            scope.spawn(move || {
                let mut i = p;
                while i < injections {
                    exec.inject(Injection::new(ids[i % ids.len()], "tick", Value::Null))
                        .unwrap();
                    i += PRODUCERS;
                }
            });
        }
    });
    let report = exec.shutdown().unwrap();
    let seconds = started.elapsed().as_secs_f64();
    assert_eq!(report.delivered, injections as u64);
    row(
        "fan_out", machines, shards, injections, &runtimes, baseline, seconds, &report,
    )
}

fn ping_ring_cell(machines: usize, shards: usize) -> RuntimeBenchRow {
    let rings = (machines / RING_LEN).max(1);
    let program = p_core::parser::parse(RING).unwrap();
    let exec = Executor::builder(&program)
        .unwrap()
        .shards(shards)
        .mailbox_capacity(64)
        .credits(4096)
        .overflow(OverflowPolicy::Block)
        .record_latency(true)
        .start();
    let base = &[("hits", Value::Int(0)), ("wired", Value::Bool(false))];
    let mut heads: Vec<MachineId> = Vec::with_capacity(rings);
    for ring in 0..rings {
        // Build each ring on one shard: the chain through `next` is an
        // in-program machine reference, which must stay shard-local.
        let shard = ring % shards;
        let head = exec.create_machine_on(shard, "Relay", base).unwrap();
        let mut prev = head;
        for _ in 1..RING_LEN {
            prev = exec
                .create_machine_on(
                    shard,
                    "Relay",
                    &[
                        ("hits", Value::Int(0)),
                        ("wired", Value::Bool(true)),
                        ("next", Value::Machine(prev)),
                    ],
                )
                .unwrap();
        }
        // Close the cycle: point the head at the last-created relay.
        exec.inject(Injection::new(head, "wire", Value::Machine(prev)))
            .unwrap();
        heads.push(head);
    }
    let runtimes: Vec<Runtime> = (0..shards)
        .map(|s| exec.shard_runtime(s).unwrap().clone())
        .collect();
    // Creation entry runs and the `wire` deliveries are setup, not the
    // timed cascade; snapshot them so `events` is hops-only. The wire
    // injections may still be in flight here, which only shifts a ring's
    // first hops into the timed window — never double-counts.
    let baseline: u64 = runtimes.iter().map(Runtime::runs_executed).sum();
    let started = Instant::now();
    for &head in &heads {
        exec.inject(Injection::new(head, "go", Value::Int(RING_HOPS)))
            .unwrap();
    }
    let report = exec.shutdown().unwrap();
    let seconds = started.elapsed().as_secs_f64();
    // One wire + one go per ring, nothing dropped.
    assert_eq!(report.delivered, 2 * rings as u64);
    row(
        "ping_ring",
        RING_LEN * rings,
        shards,
        rings,
        &runtimes,
        baseline,
        seconds,
        &report,
    )
}

#[allow(clippy::too_many_arguments)]
fn row(
    workload: &str,
    machines: usize,
    shards: usize,
    injections: usize,
    runtimes: &[Runtime],
    baseline: u64,
    seconds: f64,
    report: &p_core::runtime::ExecReport,
) -> RuntimeBenchRow {
    let events: u64 = runtimes
        .iter()
        .map(Runtime::runs_executed)
        .sum::<u64>()
        .saturating_sub(baseline);
    let q = |q: f64| {
        report
            .latency_quantile(q)
            .map_or(0, |d| d.as_nanos() as u64)
    };
    RuntimeBenchRow {
        workload: workload.to_owned(),
        machines: machines as u64,
        shards: shards as u64,
        injections: injections as u64,
        events,
        seconds,
        p50_latency_ns: q(0.50),
        p99_latency_ns: q(0.99),
        steals: report.stats.steals,
        batches: report.stats.batches,
        max_mailbox_depth: report
            .stats
            .shards
            .iter()
            .map(|s| s.max_mailbox_depth)
            .max()
            .unwrap_or(0),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_runtime.json".to_owned();
    let (mut quick, mut xl, mut gate) = (false, false, false);
    for arg in &args {
        match arg.as_str() {
            "--quick" => quick = true,
            "--xl" => xl = true,
            "--gate" => gate = true,
            other if other.starts_with("--") => panic!("unknown flag `{other}`"),
            other => out_path = other.to_owned(),
        }
    }
    let machine_counts: &[usize] = if quick {
        &[1_000]
    } else if xl {
        &[1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    println!("Runtime executor throughput — sharded mailboxes, work stealing\n");
    println!(
        "{:<10} {:>9} {:>7} {:>10} {:>10} {:>8} {:>12} {:>10} {:>10} {:>8} {:>9} {:>6}",
        "workload",
        "machines",
        "shards",
        "injections",
        "events",
        "sec",
        "events/sec",
        "p50 µs",
        "p99 µs",
        "steals",
        "batches",
        "depth"
    );
    let mut rows = Vec::new();
    for &machines in machine_counts {
        for &shards in shard_counts {
            for cell in [fan_out_cell, ping_ring_cell] {
                let r = cell(machines, shards);
                println!(
                    "{:<10} {:>9} {:>7} {:>10} {:>10} {:>8.3} {:>12.0} {:>10.1} {:>10.1} {:>8} {:>9} {:>6}",
                    r.workload,
                    r.machines,
                    r.shards,
                    r.injections,
                    r.events,
                    r.seconds,
                    r.events_per_sec(),
                    r.p50_latency_ns as f64 / 1_000.0,
                    r.p99_latency_ns as f64 / 1_000.0,
                    r.steals,
                    r.batches,
                    r.max_mailbox_depth
                );
                rows.push(r);
            }
        }
    }
    let report = RuntimeBenchReport { rows };
    std::fs::write(&out_path, report.to_json().render_pretty()).expect("write report");
    println!("\nwrote {out_path}");

    if gate {
        let one = report
            .peak_events_per_sec("fan_out", 1)
            .expect("gate needs a 1-shard fan_out row");
        let four = report
            .peak_events_per_sec("fan_out", 4)
            .expect("gate needs a 4-shard fan_out row");
        let ratio = four / one;
        println!(
            "gate: fan_out peak events/sec — 1 shard {one:.0}, 4 shards {four:.0} \
             (ratio {ratio:.2}, floor {GATE_FLOOR})"
        );
        assert!(
            ratio >= GATE_FLOOR,
            "4-shard fan-out throughput collapsed below {GATE_FLOOR}x the 1-shard rate"
        );
    }
    // Sanity floor either way: the executor must actually have moved
    // events, or every number above is vacuous.
    assert!(
        report.rows.iter().all(|r| r.events > 0 && r.seconds > 0.0),
        "every cell must process events"
    );
}
