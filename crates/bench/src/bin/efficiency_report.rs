//! Regenerates the §4.1 efficiency experiment: the P-generated driver vs.
//! a hand-written driver, both processing the same event stream.
//!
//! The paper's setup feeds 100 events per second to both drivers and
//! observes an average processing time of 4 ms per event for both —
//! i.e. the P compiler and runtime "do not introduce additional
//! overhead", because per-event cost is dominated by device I/O. We
//! reproduce both halves:
//!
//! 1. raw per-event CPU cost of each driver (no I/O), and
//! 2. a paced 100-events-per-second run with a simulated 4 ms device
//!    access, showing both drivers complete each event in ~4 ms.
//!
//! ```sh
//! cargo run -p p-bench --release --bin efficiency_report
//! ```

use std::time::{Duration, Instant};

use p_bench::baseline::efficiency_script;
use p_bench::figures::{
    drivers_agree, p_driver_feed, p_driver_runtime, run_handwritten, run_p_driver,
};

fn main() {
    let rounds = 2_000;
    let script = efficiency_script(rounds);
    println!(
        "event script: {} events ({} LED transfers)\n",
        script.len(),
        rounds
    );

    assert!(drivers_agree(&script), "drivers must agree observably");

    // Part 1: raw per-event CPU cost.
    let p_time = run_p_driver(&script);
    let (hand_time, _) = run_handwritten(&script);
    let p_per_event = p_time.as_nanos() as f64 / script.len() as f64;
    let hand_per_event = hand_time.as_nanos() as f64 / script.len() as f64;
    println!("raw per-event CPU cost (no simulated I/O):");
    println!("  P runtime driver:    {p_per_event:>10.0} ns/event");
    println!("  hand-written driver: {hand_per_event:>10.0} ns/event");
    println!(
        "  interpretation overhead: {:.1}x (absolute {:.2} µs/event)",
        p_per_event / hand_per_event,
        (p_per_event - hand_per_event) / 1000.0
    );

    // Part 2: the paper's setup — 100 events/s with a 4 ms device access.
    let io = Duration::from_millis(4);
    let paced_events = 100;
    println!(
        "\npaced run: {paced_events} events at 100 events/s with {io:?} simulated device I/O:"
    );

    let (runtime, id) = p_driver_runtime();
    let paced_script = efficiency_script(paced_events / 2);
    let mut p_total = Duration::ZERO;
    for e in paced_script.iter().take(paced_events) {
        let start = Instant::now();
        p_driver_feed(&runtime, id, *e);
        std::thread::sleep(io); // the device access the paper's 4 ms is made of
        p_total += start.elapsed();
        // pace to 100 events/s
        std::thread::sleep(Duration::from_millis(6));
    }

    let mut hand = p_bench::baseline::HandwrittenDriver::new();
    let mut hand_total = Duration::ZERO;
    for e in paced_script.iter().take(paced_events) {
        let start = Instant::now();
        hand.handle(*e);
        std::thread::sleep(io);
        hand_total += start.elapsed();
        std::thread::sleep(Duration::from_millis(6));
    }

    let p_avg = p_total / paced_events as u32;
    let hand_avg = hand_total / paced_events as u32;
    println!("  P runtime driver:    {p_avg:.2?} average processing time per event");
    println!("  hand-written driver: {hand_avg:.2?} average processing time per event");
    println!(
        "\npaper claim (both drivers ≈ 4 ms/event; P adds no additional overhead): {}",
        if p_avg < Duration::from_millis(5) && hand_avg < Duration::from_millis(5) {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
