//! Regenerates Figure 7: states explored as a function of the delay
//! bound, for the Elevator, Switch-LED and German benchmarks.
//!
//! The paper scales Switch-LED by ×10 and Elevator by ×100 "to make the
//! graphs legible"; we print raw counts plus the same scaled series.
//!
//! ```sh
//! cargo run -p p-bench --bin fig7_report
//! ```

use p_bench::figures::{exhaustive_states, fig7_programs, fig7_series};

fn main() {
    let max_d = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    println!("Figure 7 — states explored vs. delay bound (d = 0..={max_d})\n");

    for (name, compiled) in fig7_programs() {
        let scale = match name {
            "Elevator" => 100,
            "Switch-LED" => 10,
            _ => 1,
        };
        let full = exhaustive_states(&compiled);
        println!("{name} (exhaustive = {full} states, paper legibility scale ×{scale}):");
        println!(
            "{:>4} {:>10} {:>12} {:>14} {:>10}",
            "d", "states", "×scale", "sched. nodes", "time"
        );
        let series = fig7_series(&compiled, max_d);
        for p in &series {
            println!(
                "{:>4} {:>10} {:>12} {:>14} {:>9.1?}{}",
                p.delay_bound,
                p.states,
                p.states * scale,
                p.scheduler_nodes,
                p.duration,
                if p.states == full {
                    "  <- full coverage"
                } else {
                    ""
                }
            );
        }
        let covered = series.iter().find(|p| p.states == full);
        match covered {
            Some(p) => println!(
                "  full state space covered at delay bound {}\n",
                p.delay_bound
            ),
            None => println!(
                "  coverage at d={max_d}: {:.1}% of exhaustive\n",
                100.0 * series.last().unwrap().states as f64 / full as f64
            ),
        }
    }
}
