//! Regenerates the Figure 8 table: per USB machine, the P-level size and
//! the exploration cost (explored states, time, memory).
//!
//! ```sh
//! cargo run -p p-bench --bin fig8_report
//! ```

use p_bench::figures::fig8_rows;

fn main() {
    println!("Figure 8 — USB case-study machines: sizes and exploration\n");
    println!(
        "{:<10} {:>9} {:>14} {:>16} {:>10} {:>12}",
        "machine", "P states", "P transitions", "explored states", "time", "memory"
    );
    let rows = fig8_rows();
    for r in &rows {
        println!(
            "{:<10} {:>9} {:>14} {:>16} {:>9.1?} {:>9.2} MiB",
            r.name,
            r.p_states,
            r.p_transitions,
            r.explored,
            r.duration,
            r.memory_bytes as f64 / (1024.0 * 1024.0)
        );
    }

    let dsm = rows.iter().find(|r| r.name == "DSM").unwrap();
    let hsm = rows.iter().find(|r| r.name == "HSM").unwrap();
    println!(
        "\nshape checks vs. the paper:\n\
         - DSM is the largest machine at the P level: {} ({} vs {} states)\n\
         - explored-state counts do not track P-state counts (in the paper\n\
           the 196-state HSM explored the most configurations; environment\n\
           nondeterminism dominates): reproduced = {}",
        if dsm.p_states > hsm.p_states {
            "yes"
        } else {
            "NO"
        },
        dsm.p_states,
        hsm.p_states,
        {
            let by_p: Vec<_> = {
                let mut v = rows.clone();
                v.sort_by_key(|r| r.p_states);
                v.iter().map(|r| r.name).collect()
            };
            let by_explored: Vec<_> = {
                let mut v = rows.clone();
                v.sort_by_key(|r| r.explored);
                v.iter().map(|r| r.name).collect()
            };
            by_p != by_explored
        }
    );
}
