//! Benchmark harness for the paper's evaluation: shared helpers used by
//! both the Criterion benches and the `*_report` binaries that regenerate
//! each figure and table.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig7` bench / `fig7_report` bin | Figure 7: states explored vs. delay bound |
//! | `bug_bound_report` bin | §5: bugs found within delay bound 2 |
//! | `fig8` bench / `fig8_report` bin | Figure 8: USB machines exploration table |
//! | `efficiency` bench / `efficiency_report` bin | §4.1: P driver vs. handwritten driver |
//! | `ablation` bench / `ablation_report` bin | §5: atomicity reduction ablation |
//! | `liveness_report` bin | §3.2 liveness checks (extension) |

#![warn(missing_docs)]

pub mod baseline;
pub mod figures;
