//! The §4.1 comparison baseline: the switch-and-LED driver written
//! directly in Rust, without the P runtime — the analog of the paper's
//! hand-written KMDF driver ("about 6000 lines of C code" versus "150
//! lines of P").
//!
//! The state machine logic mirrors `corpus::switch_led`'s `Driver`
//! machine exactly, including deferral of I/O requests while powered off
//! or mid-transfer, so both implementations process identical event
//! sequences and can be compared for per-event overhead.

use std::collections::VecDeque;

/// Events the handwritten driver processes (the erased-driver alphabet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// OS: power the device up.
    PowerUp,
    /// OS: power the device down.
    PowerDown,
    /// App: set the LED to a value.
    SetLed(i64),
    /// App: read the switch state.
    GetSwitch,
    /// HW: switch state changed.
    SwitchChange(i64),
    /// HW: switch interrupt source disarmed.
    SwitchDisarmed,
    /// HW: LED transfer finished.
    TransferComplete,
    /// HW: LED transfer failed.
    TransferFailed,
}

/// Control states, one-to-one with the P driver's states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Device off; I/O deferred.
    PoweredOff,
    /// Waiting for the initial switch report.
    WaitInitialSwitch,
    /// Ready for I/O.
    Idle,
    /// LED transfer in flight; I/O and interrupts deferred.
    Transferring,
    /// Waiting for the disarm acknowledgement.
    Disarming,
}

/// Completions the driver reports to the "application".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Request completed with a value.
    Complete(i64),
    /// Request failed.
    Failed,
}

/// The hand-written driver: same protocol, plain Rust.
#[derive(Debug, Default)]
pub struct HandwrittenDriver {
    state: Option<State>,
    switch_state: i64,
    led_state: i64,
    pending_led: i64,
    retries: u32,
    deferred: VecDeque<Event>,
    /// Commands the driver would send to the hardware (drained by the
    /// harness; stands in for the erased sends of the P version).
    pub hw_commands: Vec<&'static str>,
    /// Completions reported to the application.
    pub completions: Vec<Completion>,
}

impl HandwrittenDriver {
    /// A powered-off driver.
    pub fn new() -> HandwrittenDriver {
        HandwrittenDriver {
            state: Some(State::PoweredOff),
            ..HandwrittenDriver::default()
        }
    }

    /// Current control state.
    pub fn state(&self) -> State {
        self.state.expect("driver initialized")
    }

    /// Cached switch state.
    pub fn switch_state(&self) -> i64 {
        self.switch_state
    }

    /// Last successfully written LED value.
    pub fn led_state(&self) -> i64 {
        self.led_state
    }

    /// Handles one event, mirroring the P driver's transition tables:
    /// events deferred by the current state go to a pending queue that is
    /// rescanned after every state change (the DEQUEUE rule by hand).
    pub fn handle(&mut self, event: Event) {
        self.deferred.push_back(event);
        self.drain();
    }

    fn drain(&mut self) {
        // Scan the queue for the first event the current state does not
        // defer; repeat until quiescent.
        loop {
            let state = self.state();
            let idx = self.deferred.iter().position(|e| !Self::defers(state, *e));
            let Some(idx) = idx else {
                return;
            };
            let event = self.deferred.remove(idx).expect("index in range");
            self.step(state, event);
        }
    }

    fn defers(state: State, event: Event) -> bool {
        match state {
            State::PoweredOff => matches!(event, Event::SetLed(_) | Event::GetSwitch),
            State::WaitInitialSwitch => matches!(
                event,
                Event::SetLed(_) | Event::GetSwitch | Event::PowerDown
            ),
            State::Idle => false,
            State::Transferring => matches!(
                event,
                Event::SetLed(_) | Event::GetSwitch | Event::PowerDown | Event::SwitchChange(_)
            ),
            State::Disarming => {
                matches!(event, Event::SetLed(_) | Event::GetSwitch | Event::PowerUp)
            }
        }
    }

    fn step(&mut self, state: State, event: Event) {
        match (state, event) {
            (State::PoweredOff, Event::PowerUp) => {
                self.hw_commands.push("ArmSwitch");
                self.state = Some(State::WaitInitialSwitch);
            }
            (State::PoweredOff, _) => {}
            (State::WaitInitialSwitch, Event::SwitchChange(v)) => {
                self.switch_state = v;
                self.state = Some(State::Idle);
            }
            (State::WaitInitialSwitch, _) => {}
            (State::Idle, Event::SwitchChange(v)) => self.switch_state = v,
            (State::Idle, Event::GetSwitch) => {
                self.completions
                    .push(Completion::Complete(self.switch_state));
            }
            (State::Idle, Event::SetLed(v)) => {
                self.pending_led = v;
                self.retries = 0;
                self.hw_commands.push("LedTransfer");
                self.state = Some(State::Transferring);
            }
            (State::Idle, Event::PowerDown) => {
                self.hw_commands.push("DisarmSwitch");
                self.state = Some(State::Disarming);
            }
            (State::Idle, _) => {}
            (State::Transferring, Event::TransferComplete) => {
                self.led_state = self.pending_led;
                self.retries = 0;
                self.completions.push(Completion::Complete(self.led_state));
                self.state = Some(State::Idle);
            }
            (State::Transferring, Event::TransferFailed) => {
                self.retries += 1;
                if self.retries > 1 {
                    self.retries = 0;
                    self.completions.push(Completion::Failed);
                    self.state = Some(State::Idle);
                } else {
                    self.hw_commands.push("LedTransfer");
                    // stays in Transferring
                }
            }
            (State::Transferring, _) => {}
            (State::Disarming, Event::SwitchChange(v)) => self.switch_state = v,
            (State::Disarming, Event::SwitchDisarmed) => {
                self.state = Some(State::PoweredOff);
            }
            (State::Disarming, _) => {}
        }
    }
}

/// The scripted event sequence used by the efficiency experiment: a power
/// cycle with `io_rounds` LED transfers and interleaved switch activity.
pub fn efficiency_script(io_rounds: usize) -> Vec<Event> {
    let mut script = vec![Event::PowerUp, Event::SwitchChange(0)];
    for i in 0..io_rounds {
        script.push(Event::SetLed((i % 2) as i64));
        if i % 3 == 0 {
            script.push(Event::SwitchChange((i % 2) as i64));
        }
        if i % 5 == 4 {
            script.push(Event::TransferFailed);
        }
        script.push(Event::TransferComplete);
        if i % 4 == 1 {
            script.push(Event::GetSwitch);
        }
    }
    script.push(Event::PowerDown);
    script.push(Event::SwitchDisarmed);
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_the_p_driver_happy_path() {
        let mut d = HandwrittenDriver::new();
        d.handle(Event::PowerUp);
        assert_eq!(d.state(), State::WaitInitialSwitch);
        d.handle(Event::SwitchChange(1));
        assert_eq!(d.state(), State::Idle);
        assert_eq!(d.switch_state(), 1);
        d.handle(Event::SetLed(1));
        assert_eq!(d.state(), State::Transferring);
        d.handle(Event::TransferComplete);
        assert_eq!(d.led_state(), 1);
        assert_eq!(d.state(), State::Idle);
    }

    #[test]
    fn defers_io_while_off_and_interrupts_while_transferring() {
        let mut d = HandwrittenDriver::new();
        d.handle(Event::SetLed(1)); // deferred: off
        assert_eq!(d.state(), State::PoweredOff);
        d.handle(Event::PowerUp);
        d.handle(Event::SwitchChange(0));
        // The deferred SetLed fires as soon as Idle is reached.
        assert_eq!(d.state(), State::Transferring);
        d.handle(Event::SwitchChange(1)); // deferred during transfer
        assert_eq!(d.switch_state(), 0);
        d.handle(Event::TransferComplete);
        assert_eq!(d.switch_state(), 1, "deferred interrupt replays");
    }

    #[test]
    fn retry_then_fail() {
        let mut d = HandwrittenDriver::new();
        d.handle(Event::PowerUp);
        d.handle(Event::SwitchChange(0));
        d.handle(Event::SetLed(1));
        d.handle(Event::TransferFailed);
        assert_eq!(d.state(), State::Transferring, "one retry");
        d.handle(Event::TransferFailed);
        assert_eq!(d.state(), State::Idle);
        assert_eq!(d.completions.last(), Some(&Completion::Failed));
        assert_eq!(d.led_state(), 0, "failed write leaves the LED");
    }

    #[test]
    fn script_is_consistent_for_both_drivers() {
        let script = efficiency_script(20);
        let mut d = HandwrittenDriver::new();
        for e in &script {
            d.handle(*e);
        }
        assert_eq!(d.state(), State::PoweredOff);
        assert!(d.completions.len() >= 20);
    }
}
