//! Data producers for each figure/table, shared by benches and reports.

use std::time::{Duration, Instant};

use p_core::semantics::Granularity;
use p_core::telemetry::ExplorationMetrics;
use p_core::{corpus, CheckerOptions, Compiled, Runtime, Value, Verifier};

use crate::baseline::{Event, HandwrittenDriver};

/// One point of a Figure 7 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// The delay budget `d`.
    pub delay_bound: usize,
    /// Unique configurations explored.
    pub states: usize,
    /// Unique (configuration, scheduler) nodes.
    pub scheduler_nodes: usize,
    /// Exploration wall time.
    pub duration: Duration,
}

/// The three Figure 7 benchmarks, compiled.
pub fn fig7_programs() -> Vec<(&'static str, Compiled)> {
    vec![
        (
            "Elevator",
            Compiled::from_program(corpus::elevator()).unwrap(),
        ),
        (
            "Switch-LED",
            Compiled::from_program(corpus::switch_led()).unwrap(),
        ),
        ("German", Compiled::from_program(corpus::german()).unwrap()),
    ]
}

/// States explored as a function of the delay bound (the Figure 7 series)
/// for one compiled program.
pub fn fig7_series(compiled: &Compiled, max_delay: usize) -> Vec<Fig7Point> {
    (0..=max_delay)
        .map(|d| {
            let r = compiled.verify_delay_bounded(d);
            assert!(r.report.passed(), "fig7 programs are bug-free");
            Fig7Point {
                delay_bound: d,
                states: r.report.stats.unique_states,
                scheduler_nodes: r.scheduler_nodes,
                duration: r.report.stats.duration,
            }
        })
        .collect()
}

/// The exhaustive state count (the plateau the Figure 7 curves approach).
pub fn exhaustive_states(compiled: &Compiled) -> usize {
    let report = compiled.verify();
    assert!(report.passed() && report.complete);
    report.stats.unique_states
}

/// For each buggy Figure 7 benchmark, the smallest delay bound at which
/// the seeded bug is found (§5 claims ≤ 2).
pub fn bug_bounds(max_delay: usize) -> Vec<(&'static str, Option<usize>, usize)> {
    corpus::figure7_benchmarks()
        .into_iter()
        .map(|(name, _, buggy)| {
            let compiled = Compiled::from_program(buggy).unwrap();
            let mut found = None;
            let mut trace_len = 0;
            for d in 0..=max_delay {
                let r = compiled.verify_delay_bounded(d);
                if let Some(cx) = r.report.counterexample {
                    found = Some(d);
                    trace_len = cx.trace.len();
                    break;
                }
            }
            (name, found, trace_len)
        })
        .collect()
}

/// One row of the Figure 8 table.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Machine name (HSM, PSM 3.0, PSM 2.0, DSM).
    pub name: &'static str,
    /// Control states of the real machine.
    pub p_states: usize,
    /// Transitions + action bindings of the real machine.
    pub p_transitions: usize,
    /// Unique configurations explored.
    pub explored: usize,
    /// Exploration time.
    pub duration: Duration,
    /// Stored-state memory estimate in bytes.
    pub memory_bytes: usize,
}

/// Verifies the four USB machines and produces the Figure 8 rows.
pub fn fig8_rows() -> Vec<Fig8Row> {
    corpus::figure8_machines()
        .into_iter()
        .map(|(name, program)| {
            let real = program.real_machines().next().expect("one real machine");
            let p_states = real.states.len();
            let p_transitions = real.transition_count();
            let compiled = Compiled::from_program(program).unwrap();
            let report = compiled.verify();
            assert!(report.passed(), "{name} must verify");
            Fig8Row {
                name,
                p_states,
                p_transitions,
                explored: report.stats.unique_states,
                duration: report.stats.duration,
                memory_bytes: report.stats.stored_bytes,
            }
        })
        .collect()
}

/// Builds the P-runtime switch-LED driver once (outside the timed region).
pub fn p_driver_runtime() -> (Runtime, p_core::MachineId) {
    let program = corpus::switch_led();
    let runtime = Runtime::builder(&program)
        .expect("switch_led compiles")
        .start();
    let id = runtime
        .create_machine("Driver", &[])
        .expect("driver created");
    (runtime, id)
}

/// Feeds one scripted event into the P driver.
pub fn p_driver_feed(runtime: &Runtime, id: p_core::MachineId, event: Event) {
    let result = match event {
        Event::PowerUp => runtime.add_event(id, "DevicePowerUp", Value::Null),
        Event::PowerDown => runtime.add_event(id, "DevicePowerDown", Value::Null),
        Event::SetLed(v) => runtime.add_event(id, "IoctlSetLed", Value::Int(v)),
        Event::GetSwitch => runtime.add_event(id, "IoctlGetSwitch", Value::Null),
        Event::SwitchChange(v) => runtime.add_event(id, "SwitchStateChange", Value::Int(v)),
        Event::SwitchDisarmed => runtime.add_event(id, "SwitchDisarmed", Value::Null),
        Event::TransferComplete => runtime.add_event(id, "TransferComplete", Value::Null),
        Event::TransferFailed => runtime.add_event(id, "TransferFailed", Value::Null),
    };
    result.expect("scripted events are legal");
}

/// Runs the full script through the P driver; returns wall time.
pub fn run_p_driver(script: &[Event]) -> Duration {
    let (runtime, id) = p_driver_runtime();
    let start = Instant::now();
    for e in script {
        p_driver_feed(&runtime, id, *e);
    }
    start.elapsed()
}

/// Runs the full script through the handwritten driver; returns wall time
/// and the driver (for result comparison).
pub fn run_handwritten(script: &[Event]) -> (Duration, HandwrittenDriver) {
    let mut driver = HandwrittenDriver::new();
    let start = Instant::now();
    for e in script {
        driver.handle(*e);
    }
    (start.elapsed(), driver)
}

/// Checks that the P driver and the handwritten driver agree on the final
/// observable state after the script.
pub fn drivers_agree(script: &[Event]) -> bool {
    let (runtime, id) = p_driver_runtime();
    for e in script {
        p_driver_feed(&runtime, id, *e);
    }
    let (_, hand) = run_handwritten(script);
    let p_led = runtime.read_var(id, "ledState");
    let p_switch = runtime.read_var(id, "switchState");
    let led_match = p_led == Some(Value::Int(hand.led_state()))
        || (p_led == Some(Value::Null) && hand.led_state() == 0);
    let switch_match = p_switch == Some(Value::Int(hand.switch_state()))
        || (p_switch == Some(Value::Null) && hand.switch_state() == 0);
    led_match && switch_match
}

/// One row of the parallel-exploration report: one program verified
/// exhaustively at one worker count.
#[derive(Debug, Clone)]
pub struct JobsRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Worker threads (`1` = the sequential engine).
    pub jobs: usize,
    /// Unique configurations explored.
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Exploration wall time.
    pub duration: Duration,
    /// Whether the program verified.
    pub passed: bool,
}

/// The corpus programs of the parallel-speedup comparison: the largest
/// protocol (German with three clients), the largest USB machine, and
/// the lossy-link benchmark.
pub fn jobs_programs() -> Vec<(&'static str, Compiled)> {
    vec![
        (
            "German-3",
            Compiled::from_program(corpus::german3()).unwrap(),
        ),
        (
            "USB HSM",
            Compiled::from_program(corpus::usb_hsm()).unwrap(),
        ),
        (
            "Lossy link",
            Compiled::from_program(corpus::lossy_link()).unwrap(),
        ),
    ]
}

/// Verifies each [`jobs_programs`] benchmark at every worker count in
/// `job_counts`, asserting that state counts and verdicts agree across
/// counts (the soundness claim the speedup rests on).
pub fn jobs_rows(job_counts: &[usize]) -> Vec<JobsRow> {
    let mut rows = Vec::new();
    for (name, compiled) in jobs_programs() {
        let mut baseline: Option<(usize, bool)> = None;
        for &jobs in job_counts {
            let report = compiled.verify_parallel(jobs);
            let row = JobsRow {
                name,
                jobs,
                states: report.stats.unique_states,
                transitions: report.stats.transitions,
                duration: report.stats.duration,
                passed: report.passed(),
            };
            match baseline {
                None => baseline = Some((row.states, row.passed)),
                Some((states, passed)) => {
                    assert_eq!(states, row.states, "{name}: state count depends on jobs");
                    assert_eq!(passed, row.passed, "{name}: verdict depends on jobs");
                }
            }
            rows.push(row);
        }
    }
    rows
}

/// One row of the atomicity-reduction ablation (E5).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: &'static str,
    /// States with context switches only at send/create (§5 reduction).
    pub atomic_states: usize,
    /// Exploration time, atomic granularity.
    pub atomic_time: Duration,
    /// States with a context switch after every small step.
    pub fine_states: usize,
    /// Exploration time, fine granularity.
    pub fine_time: Duration,
    /// Whether both granularities agree on the verdict (soundness).
    pub same_verdict: bool,
}

/// Runs the ablation on the (budget-reduced) Figure 7 benchmarks.
pub fn ablation_rows() -> Vec<AblationRow> {
    let programs = vec![
        ("Elevator", corpus::elevator_with_budget(1)),
        ("German", corpus::german_with_budget(1)),
    ];
    programs
        .into_iter()
        .map(|(name, program)| {
            let lowered = p_core::semantics::lower(&program).unwrap();
            let atomic = Verifier::new(&lowered).check_exhaustive();
            let fine = Verifier::new(&lowered)
                .with_options(CheckerOptions {
                    granularity: Granularity::Fine,
                    ..CheckerOptions::default()
                })
                .check_exhaustive();
            AblationRow {
                name,
                atomic_states: atomic.stats.unique_states,
                atomic_time: atomic.stats.duration,
                fine_states: fine.stats.unique_states,
                fine_time: fine.stats.duration,
                same_verdict: atomic.passed() == fine.passed(),
            }
        })
        .collect()
}

/// Converts a checker report into the shared metrics schema row used by
/// `BENCH_checker.json`, `p verify --profile`, and the CI overhead gate.
pub fn report_to_metrics(
    name: &str,
    mode: &str,
    workers: u64,
    report: &p_core::Report,
) -> ExplorationMetrics {
    ExplorationMetrics {
        name: name.to_owned(),
        mode: mode.to_owned(),
        states: report.stats.unique_states as u64,
        transitions: report.stats.transitions as u64,
        seconds: report.stats.duration.as_secs_f64(),
        stored_bytes: report.stats.stored_bytes as u64,
        max_depth: report.stats.max_depth as u64,
        dedup_hits: report.stats.dedup_hits as u64,
        sleep_pruned: report.stats.sleep_pruned as u64,
        symmetry_merges: report.stats.symmetry_merges as u64,
        workers,
        spilled_states: report.stats.spilled_states as u64,
        spill_bytes: report.stats.spill_bytes,
        cold_hits: report.stats.cold_hits,
        passed: report.passed(),
        complete: report.complete,
        exec_seconds: report.stats.phases.exec as f64 / 1e9,
        digest_seconds: report.stats.phases.digest as f64 / 1e9,
        clone_seconds: report.stats.phases.clone as f64 / 1e9,
        canon_seconds: report.stats.phases.canon as f64 / 1e9,
        table_seconds: report.stats.phases.table as f64 / 1e9,
    }
}

/// Runs a (deterministic) exploration three times and keeps the fastest
/// run — state counts cannot differ, so this only de-noises the wall
/// time, which the CI overhead gate compares across builds.
fn best_of_three(run: impl Fn() -> p_core::Report) -> p_core::Report {
    let mut best = run();
    for _ in 0..2 {
        let next = run();
        assert_eq!(
            best.stats.unique_states, next.stats.unique_states,
            "exploration must be deterministic"
        );
        if next.stats.duration < best.stats.duration {
            best = next;
        }
    }
    best
}

/// Explores every `corpus::all()` program exhaustively (sequential
/// engine) in five modes — plain interpreter, the ahead-of-time
/// compiled backend, sleep-set POR, symmetry reduction, and
/// POR+symmetry — asserting all agree on the verdict, that the
/// compiled backend reproduces states and transitions bit-identically,
/// that POR preserves the unique-state count exactly (it prunes
/// transitions, never states), and that symmetry never *increases* it
/// (it merges id-permuted duplicates). Returns five rows per program,
/// tagged `"exhaustive"`, `"compiled"`, `"por"`, `"symmetry"` and
/// `"por+symmetry"`, in the shared [`ExplorationMetrics`] schema. Each
/// measurement is the fastest of three runs.
pub fn perf_rows() -> Vec<ExplorationMetrics> {
    perf_rows_for(None)
}

/// [`perf_rows`] restricted to the corpus programs named in `only`
/// (all of them when `None`). Unknown names panic rather than silently
/// measuring nothing — a typo in a CI job must fail loudly.
pub fn perf_rows_for(only: Option<&[String]>) -> Vec<ExplorationMetrics> {
    if let Some(names) = only {
        for name in names {
            assert!(
                corpus::all().iter().any(|(n, _)| n == name),
                "--only: no corpus program named `{name}`"
            );
        }
    }
    let run_mode = |compiled: &Compiled, por: bool, symmetry: bool| {
        best_of_three(|| {
            compiled
                .verifier()
                .with_options(CheckerOptions {
                    por,
                    symmetry,
                    ..CheckerOptions::default()
                })
                .check_exhaustive()
        })
    };
    let mut rows = Vec::new();
    for (name, program) in corpus::all() {
        if only.is_some_and(|names| !names.iter().any(|n| n == name)) {
            continue;
        }
        let compiled = Compiled::from_program(program).unwrap();
        let table = corpus::compiled::compiled_program(name)
            .unwrap_or_else(|| panic!("{name}: no checked-in compiled table"));
        let full = best_of_three(|| compiled.verify());
        let fast = best_of_three(|| {
            compiled
                .verifier()
                .with_compiled(table)
                .expect("corpus table digest matches its own program")
                .check_exhaustive()
        });
        let por = run_mode(&compiled, true, false);
        let sym = run_mode(&compiled, false, true);
        let por_sym = run_mode(&compiled, true, true);
        assert_eq!(
            (
                full.passed(),
                full.stats.unique_states,
                full.stats.transitions
            ),
            (
                fast.passed(),
                fast.stats.unique_states,
                fast.stats.transitions
            ),
            "{name}: compiled backend changed the answer"
        );
        assert_eq!(
            full.passed(),
            por.passed(),
            "{name}: POR changed the verdict"
        );
        assert_eq!(
            full.stats.unique_states, por.stats.unique_states,
            "{name}: POR changed the state count"
        );
        assert!(
            por.stats.transitions <= full.stats.transitions,
            "{name}: POR added transitions"
        );
        for (mode, report) in [("symmetry", &sym), ("por+symmetry", &por_sym)] {
            assert_eq!(
                full.passed(),
                report.passed(),
                "{name}: {mode} changed the verdict"
            );
            assert!(
                report.stats.unique_states <= full.stats.unique_states,
                "{name}: {mode} increased the state count"
            );
        }
        rows.push(report_to_metrics(name, "exhaustive", 1, &full));
        rows.push(report_to_metrics(name, "compiled", 1, &fast));
        rows.push(report_to_metrics(name, "por", 1, &por));
        rows.push(report_to_metrics(name, "symmetry", 1, &sym));
        rows.push(report_to_metrics(name, "por+symmetry", 1, &por_sym));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::efficiency_script;

    #[test]
    fn fig7_series_is_monotone_and_reaches_exhaustive() {
        let compiled = Compiled::from_program(corpus::elevator_with_budget(1)).unwrap();
        let series = fig7_series(&compiled, 4);
        for w in series.windows(2) {
            assert!(w[1].states >= w[0].states);
        }
        assert!(series[0].states > 0);
    }

    #[test]
    fn bug_bounds_are_at_most_two() {
        for (name, found, trace_len) in bug_bounds(2) {
            assert!(found.is_some(), "{name}");
            assert!(trace_len > 0, "{name}");
        }
    }

    #[test]
    fn both_drivers_agree_on_scripts() {
        for rounds in [1, 5, 20] {
            assert!(drivers_agree(&efficiency_script(rounds)), "rounds={rounds}");
        }
    }

    #[test]
    fn jobs_rows_agree_across_worker_counts() {
        // jobs_rows asserts state-count/verdict agreement internally;
        // this exercises it on the smallest benchmark pair.
        let rows = jobs_rows(&[1, 2]);
        assert_eq!(rows.len(), jobs_programs().len() * 2);
        assert!(rows.iter().all(|r| r.passed));
        assert!(rows.iter().all(|r| r.states > 0));
    }

    #[test]
    fn ablation_is_sound_and_atomic_is_smaller() {
        for row in ablation_rows() {
            assert!(row.same_verdict, "{}", row.name);
            assert!(
                row.atomic_states < row.fine_states,
                "{}: {} !< {}",
                row.name,
                row.atomic_states,
                row.fine_states
            );
        }
    }
}
