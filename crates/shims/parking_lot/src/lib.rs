//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external dependencies are replaced by local shims that
//! implement exactly the API surface the workspace uses. This shim
//! provides [`Mutex`] with `parking_lot`'s two observable differences
//! from `std::sync::Mutex`:
//!
//! * `lock()` returns the guard directly (no `Result`);
//! * a panic while the lock is held does **not** poison it — the next
//!   `lock()` succeeds and sees whatever state the panicking holder left
//!   behind. The fault-supervision layer in `p-runtime` depends on this:
//!   quarantining a panicked machine is only useful if the shared
//!   configuration lock stays usable.

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion primitive with non-poisoning semantics.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a previous panic while holding the lock does
    /// not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { inner: guard }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
