//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external dependencies are replaced by local shims that
//! implement exactly the API surface the workspace uses. This shim
//! provides [`Mutex`], [`Condvar`] and [`RwLock`] with `parking_lot`'s
//! two observable differences from their `std::sync` counterparts:
//!
//! * locking returns the guard directly (no `Result`);
//! * a panic while a lock is held does **not** poison it — the next
//!   acquisition succeeds and sees whatever state the panicking holder
//!   left behind. The fault-supervision layer in `p-runtime` depends on
//!   this: quarantining a panicked machine is only useful if the shared
//!   configuration lock stays usable.

use std::fmt;
use std::sync::TryLockError;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive with non-poisoning semantics.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `std` guard sits behind an `Option` so [`Condvar`] can take
/// it out for the duration of a wait and put the reacquired guard back;
/// it is `Some` at every moment user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a previous panic while holding the lock does
    /// not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// Whether a timed [`Condvar`] wait returned because its timeout
/// elapsed (rather than a notification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait timed out.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable for [`Mutex`], with `parking_lot`'s guard-by-
/// reference wait API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// guard's lock around the wait.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Blocks until notified or the `deadline` instant passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock with non-poisoning semantics.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = self
            .inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        RwLockReadGuard { inner: guard }
    }

    /// Acquires exclusive access, blocking until the lock is free.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = self
            .inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        RwLockWriteGuard { inner: guard }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_timed_waits_report_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        let deadline = Instant::now() + Duration::from_millis(5);
        assert!(cv.wait_until(&mut g, deadline).timed_out());
        // A deadline already in the past returns immediately.
        assert!(cv
            .wait_until(&mut g, Instant::now() - Duration::from_millis(1))
            .timed_out());
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
