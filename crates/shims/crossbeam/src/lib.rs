//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the bounded MPSC channel subset `p-runtime` uses, backed by
//! `std::sync::mpsc::sync_channel`. Semantics match crossbeam where the
//! workspace depends on them: `send` blocks when the buffer is full
//! (backpressure), `try_send` fails fast with [`channel::TrySendError`],
//! and dropping every sender closes the channel so receiver iteration
//! terminates.

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    /// The sending half of a bounded channel. Cheap to clone.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// The channel is disconnected; the unsent message is returned.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_send`/`send_timeout` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The buffer is full; the message is returned.
        Full(T),
        /// All receivers are gone; the message is returned.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that failed to send.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full buffer (a transient condition).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    /// Why a blocking `recv` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `recv_timeout` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// All senders are gone and the buffer is empty.
        Disconnected,
    }

    /// Creates a bounded channel with buffer capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the buffer is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Sends `value` without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }

        /// Sends `value`, blocking at most `timeout` while the buffer is
        /// full.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), TrySendError<T>> {
            let deadline = Instant::now() + timeout;
            let mut value = value;
            loop {
                match self.try_send(value) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Disconnected(v)) => {
                        return Err(TrySendError::Disconnected(v))
                    }
                    Err(TrySendError::Full(v)) => {
                        if Instant::now() >= deadline {
                            return Err(TrySendError::Full(v));
                        }
                        value = v;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking until one arrives or every
        /// sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// A draining iterator that ends once the channel is closed and
        /// empty.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_channel_round_trips_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn send_timeout_expires_on_full_buffer() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(10)).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 2);
    }

    #[test]
    fn receiver_iteration_ends_when_senders_drop() {
        let (tx, rx) = bounded(8);
        let t = std::thread::spawn(move || {
            for i in 0..20 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got.len(), 20);
    }
}
