//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-group subset the `p-bench` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `throughput`/`sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! [`Bencher::iter`], [`Throughput::Elements`],
//! [`BenchmarkId::from_parameter`], and the `criterion_group!` /
//! `criterion_main!` macros. There is no statistics engine: each
//! benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints mean wall-clock time per iteration (plus element throughput
//! when configured). Good enough to compare runs by eye and to keep
//! `cargo bench` compiling and running hermetically offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (events, states, …) handled per iteration.
    Elements(u64),
    /// Bytes handled per iteration.
    Bytes(u64),
}

/// A parameterised benchmark name, e.g. `group/3`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group. (Statistics finalisation in real criterion; a
    /// no-op here.)
    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up sample, not recorded.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            total += bencher.elapsed;
            iterations += bencher.iterations;
        }
        let per_iter = if iterations == 0 {
            Duration::ZERO
        } else {
            total / iterations as u32
        };
        let mut line = format!(
            "{}/{}: {:>12?}/iter over {} iterations",
            self.name, id, per_iter, iterations
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!("  ({:.0} elem/s)", n as f64 / secs));
            }
        }
        println!("{line}");
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine`. Called once per sample, matching
    /// real criterion's per-sample measurement loop closely enough for
    /// relative comparisons.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

/// An opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &d| {
            b.iter(|| {
                seen = d;
            });
        });
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
