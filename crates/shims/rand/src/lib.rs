//! Offline stand-in for the `rand` crate.
//!
//! Implements the deterministic, seedable subset used by the random-walk
//! checker and the property tests: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], plus [`Rng::gen_range`] /
//! [`Rng::gen_bool`]. The generator is SplitMix64 — statistically fine
//! for test-case generation and fully reproducible from a seed, which is
//! the property the checker actually relies on (`--seed` reruns walk the
//! same schedules).

/// Types that can be constructed from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sample range for [`Rng::gen_range`].
///
/// Implemented for the range kinds the workspace samples from; this is
/// the (tiny) analog of rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Source of raw random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is
    /// empty, matching rand's behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 bits of entropy → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uint_range!(usize, u64, u32, u16, u8);

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as $wide).wrapping_sub(start as $wide) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(i64 => i64, i32 => i64, i16 => i64, i8 => i64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
