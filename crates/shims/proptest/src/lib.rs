//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generator subset this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, strategies for
//! integer ranges, tuples, `Just`, boolean `any`, `collection::vec`,
//! `option::of`, simple `.{a,b}` string patterns, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//! macros. Differences from real proptest: no shrinking (a failing case
//! panics with the generated inputs printed via the assert message) and
//! deterministic seeding per test name, so failures reproduce exactly on
//! rerun.

pub mod test_runner {
    /// The test-case rejection marker produced by `prop_assume!`.
    #[derive(Debug)]
    pub struct Reject;

    /// Per-test configuration. Only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many passing cases constitute a passing test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator; the same seed yields the same cases.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// A fair coin flip.
        pub fn flip(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// FNV-1a over the test's path, used to derive a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: runs `case` until `config.cases` cases pass,
    /// retrying (bounded) when the case is rejected by `prop_assume!`.
    pub fn run<F>(config: &ProptestConfig, seed: u64, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), Reject>,
    {
        let mut rng = TestRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut attempts = 0u32;
        let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
        while passed < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "property rejected too many cases ({} rejects for {} passes)",
                attempts - passed,
                passed
            );
            if case(&mut rng).is_ok() {
                passed += 1;
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// draws one concrete value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<S>) -> Union<S> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    /// Uniform `bool` (the `any::<bool>()` strategy).
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&str` as a pattern strategy. Supports the `.{a,b}` shape (a random
    /// printable-ASCII string with length in `a..=b`); any other pattern
    /// generates itself literally.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((lo, hi)) = parse_dot_repeat(self) {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| (0x20 + rng.below(0x5f) as u8) as char)
                    .collect()
            } else {
                (*self).to_string()
            }
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }
}

/// Trait connecting a type to its canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> strategy::AnyBool {
        strategy::AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy over `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Option<T>` from an inner strategy (3:1 `Some` bias,
    /// matching real proptest's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// An `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each function runs `cases` times with fresh
/// generated inputs; `prop_assume!` rejections retry the case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let seed = $crate::test_runner::seed_for(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                $crate::test_runner::run(&config, seed, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, reporting the failing inputs
/// via the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Rejects the current case (it is retried with fresh inputs and does not
/// count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = (1usize..4, -3i64..3, any::<bool>());
        for _ in 0..200 {
            let (a, b, _) = strat.generate(&mut rng);
            assert!((1..4).contains(&a));
            assert!((-3..3).contains(&b));
        }
        let vecs = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = vecs.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn string_pattern_generates_printable_ascii() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        assert_eq!("literal".generate(&mut rng), "literal");
    }

    #[test]
    fn flat_map_threads_dependent_sizes() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (1usize..5)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..n, n..=n)))
            .prop_map(|(n, v)| (n, v));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|x| *x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(0i64..100, 0..8),
            flag in any::<bool>(),
        ) {
            prop_assume!(xs.len() != 7);
            let sum: i64 = xs.iter().sum();
            prop_assert!(sum >= 0);
            prop_assert_eq!(flag || !flag, true);
        }

        #[test]
        fn oneof_picks_all_arms(word in prop_oneof![Just("a"), Just("b")]) {
            prop_assert!(word == "a" || word == "b");
        }
    }
}
