//! Bounded liveness checking — the two properties of §3.2.
//!
//! The paper specifies two liveness properties in LTL and leaves their
//! verification to future work; this module implements a bounded check as
//! the reproduction's extension. The explorer builds the (bounded)
//! reachable state graph, decomposes it into strongly connected
//! components, and inspects each SCC that can sustain an infinite fair
//! execution:
//!
//! 1. **A machine runs forever** (`∃m. ◇□ sched(m)`): some machine's own
//!    edges form a cycle inside the SCC — it can be scheduled from some
//!    point on forever without being disabled.
//! 2. **An event is deferred forever** (`∃m,e. ◇(enq ∧ □¬deq)` under
//!    fairness): an event sits in some machine's queue in *every* state of
//!    the SCC, no edge of the SCC dequeues it, and it is not listed as
//!    postponed in any of the SCC's control states.
//!
//! Fairness (`∀m. fair(m)` with `fair(m) = □◇(en(m) ⇒ sched(m))`) prunes
//! SCCs that no fair schedule can stay in: a machine enabled throughout
//! the SCC but never scheduled inside it makes the SCC unreachable by fair
//! executions.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

use p_semantics::{Config, EventId, ExecOutcome, MachineId};

use crate::error::CheckerError;
use crate::explore::Verifier;
use crate::fingerprint::Fingerprint;
use crate::stats::ExplorationStats;
use crate::succ::successors_for;

/// A liveness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LivenessViolation {
    /// Some machine can be scheduled forever without being disabled
    /// (first property of §3.2).
    MachineRunsForever {
        /// The offending machine.
        machine: MachineId,
        /// Number of states in the witnessing SCC.
        scc_size: usize,
    },
    /// An event can stay queued forever under fair scheduling and is not
    /// declared `postpone`d (second property of §3.2).
    EventNeverDequeued {
        /// The machine whose queue holds the event.
        machine: MachineId,
        /// The starved event.
        event: EventId,
        /// Its source name.
        event_name: String,
        /// Number of states in the witnessing SCC.
        scc_size: usize,
    },
}

impl fmt::Display for LivenessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LivenessViolation::MachineRunsForever { machine, scc_size } => write!(
                f,
                "machine {machine} can run forever without being disabled \
                 (cycle through {scc_size} state(s))"
            ),
            LivenessViolation::EventNeverDequeued {
                machine,
                event_name,
                scc_size,
                ..
            } => write!(
                f,
                "event `{event_name}` queued at machine {machine} can be deferred forever \
                 (fair cycle through {scc_size} state(s))"
            ),
        }
    }
}

/// Result of [`Verifier::check_liveness`].
#[derive(Debug, Clone)]
pub struct LivenessReport {
    /// All violations found, deduplicated.
    pub violations: Vec<LivenessViolation>,
    /// Statistics of the underlying graph exploration.
    pub stats: ExplorationStats,
    /// Whether the state graph was fully built within bounds (a truncated
    /// graph can miss violations).
    pub complete: bool,
}

impl LivenessReport {
    /// True when no violation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

struct Graph {
    configs: Vec<Config>,
    edges: Vec<Vec<Edge>>,
}

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    machine: MachineId,
    dequeued: Vec<EventId>,
}

impl Verifier<'_> {
    /// Builds the bounded reachable state graph and checks both liveness
    /// properties of §3.2 on its strongly connected components.
    ///
    /// Safety errors encountered while building the graph are treated as
    /// terminal states (run a safety check first).
    ///
    /// # Panics
    ///
    /// Panics on a fatal [`CheckerError`] (a corrupt lowering — an engine
    /// bug, not a property violation). Use
    /// [`Verifier::try_check_liveness`] to handle it.
    pub fn check_liveness(&self) -> LivenessReport {
        self.try_check_liveness()
            .expect("liveness search failed; use try_check_liveness to handle errors")
    }

    /// [`Verifier::check_liveness`], surfacing fatal semantics errors
    /// instead of panicking.
    pub fn try_check_liveness(&self) -> Result<LivenessReport, CheckerError> {
        let start = Instant::now();
        let (graph, mut stats) = self.build_graph()?;
        let sccs = tarjan(&graph);

        let mut violations = Vec::new();
        let mut seen = HashSet::new();

        for scc in &sccs {
            let scc_set: HashSet<usize> = scc.iter().copied().collect();
            // Internal edges of this SCC.
            let internal: Vec<(usize, &Edge)> = scc
                .iter()
                .flat_map(|&n| graph.edges[n].iter().map(move |e| (n, e)))
                .filter(|(_, e)| scc_set.contains(&e.to))
                .collect();
            if internal.is_empty() {
                continue; // trivial SCC, no cycle
            }

            self.check_scc(&graph, scc, &internal, &mut violations, &mut seen);
        }

        stats.duration = start.elapsed();
        Ok(LivenessReport {
            violations,
            complete: !stats.truncated,
            stats,
        })
    }

    fn check_scc(
        &self,
        graph: &Graph,
        scc: &[usize],
        internal: &[(usize, &Edge)],
        violations: &mut Vec<LivenessViolation>,
        seen: &mut HashSet<String>,
    ) {
        let engine = self.engine();
        let program = self.program();

        // Machines alive somewhere in the SCC.
        let mut machines: HashSet<MachineId> = HashSet::new();
        for &n in scc {
            machines.extend(graph.configs[n].live_ids());
        }

        // Property 1: a machine whose own edges form a cycle.
        for &m in &machines {
            if has_single_machine_cycle(graph, scc, m) {
                let key = format!("p1:{}", m.0);
                if seen.insert(key) {
                    violations.push(LivenessViolation::MachineRunsForever {
                        machine: m,
                        scc_size: scc.len(),
                    });
                }
            }
        }

        // Fairness feasibility: every machine enabled throughout the SCC
        // must be scheduled by some internal edge; otherwise no fair
        // execution stays in this SCC and property 2 is vacuous here.
        let scheduled: HashSet<MachineId> = internal.iter().map(|(_, e)| e.machine).collect();
        for &m in &machines {
            let enabled_everywhere = scc.iter().all(|&n| engine.enabled(&graph.configs[n], m));
            if enabled_everywhere && !scheduled.contains(&m) {
                return; // unfair SCC
            }
        }

        // Property 2: an event pinned in some queue across the whole SCC.
        for &m in &machines {
            // Candidate events: queued at m in every state of the SCC.
            let mut candidates: Option<HashSet<EventId>> = None;
            for &n in scc {
                let events: HashSet<EventId> = graph.configs[n]
                    .machine(m)
                    .map(|ms| ms.queue.iter().map(|&(e, _)| e).collect())
                    .unwrap_or_default();
                candidates = Some(match candidates {
                    None => events,
                    Some(prev) => prev.intersection(&events).copied().collect(),
                });
                if candidates.as_ref().is_some_and(HashSet::is_empty) {
                    break;
                }
            }
            let Some(mut candidates) = candidates else {
                continue;
            };
            // Remove events some internal edge dequeues at m.
            for (_, e) in internal {
                if e.machine == m {
                    for ev in &e.dequeued {
                        candidates.remove(ev);
                    }
                }
            }
            // Remove events postponed in any control state of m inside the
            // SCC (the refined specification of §3.2).
            candidates.retain(|&ev| {
                !scc.iter().any(|&n| {
                    graph.configs[n].machine(m).is_some_and(|ms| {
                        let mt = program.machine(ms.ty);
                        mt.states[ms.current_state().0 as usize]
                            .postponed
                            .contains(ev)
                    })
                })
            });
            for ev in candidates {
                let key = format!("p2:{}:{}", m.0, ev.0);
                if seen.insert(key) {
                    violations.push(LivenessViolation::EventNeverDequeued {
                        machine: m,
                        event: ev,
                        event_name: program.event_name(ev).to_owned(),
                        scc_size: scc.len(),
                    });
                }
            }
        }
    }

    /// Full exploration that materializes the state graph.
    fn build_graph(&self) -> Result<(Graph, ExplorationStats), CheckerError> {
        let engine = self.engine();
        let mut stats = ExplorationStats::default();

        let mut init = engine.initial_config();
        let mut index: HashMap<Fingerprint, usize> = HashMap::new();
        let (init_digest, init_len) = init.digest_and_len();
        index.insert(Fingerprint::from_u128(init_digest), 0);
        stats.stored_bytes += init_len;

        let mut graph = Graph {
            configs: vec![init],
            edges: vec![Vec::new()],
        };
        let mut worklist = vec![0usize];

        while let Some(n) = worklist.pop() {
            if graph.configs.len() > self.options().max_states {
                stats.truncated = true;
                break;
            }
            let config = graph.configs[n].clone();
            for id in engine.enabled_machines(&config) {
                for mut succ in successors_for(&engine, &config, id, self.options().granularity)? {
                    stats.transitions += 1;
                    if matches!(succ.result.outcome, ExecOutcome::Error(_)) {
                        continue; // terminal for liveness purposes
                    }
                    let h = Fingerprint::from_u128(succ.config.digest());
                    let to = match index.get(&h) {
                        Some(&i) => i,
                        None => {
                            let i = graph.configs.len();
                            index.insert(h, i);
                            stats.stored_bytes += succ.config.encoded_len();
                            graph.configs.push(succ.config);
                            graph.edges.push(Vec::new());
                            worklist.push(i);
                            i
                        }
                    };
                    graph.edges[n].push(Edge {
                        to,
                        machine: id,
                        dequeued: succ.result.dequeued.clone(),
                    });
                }
            }
        }

        stats.unique_states = graph.configs.len();
        Ok((graph, stats))
    }
}

/// Whether machine `m`'s own edges contain a cycle within `scc`.
fn has_single_machine_cycle(graph: &Graph, scc: &[usize], m: MachineId) -> bool {
    let scc_set: HashSet<usize> = scc.iter().copied().collect();
    // Self-loops are immediate cycles.
    for &n in scc {
        for e in &graph.edges[n] {
            if e.machine == m && e.to == n {
                return true;
            }
        }
    }
    // Otherwise look for a cycle in the m-only subgraph via DFS with
    // colors.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<usize, Color> = scc.iter().map(|&n| (n, Color::White)).collect();
    for &start in scc {
        if color[&start] != Color::White {
            continue;
        }
        // Iterative DFS: (node, next edge index).
        let mut stack = vec![(start, 0usize)];
        color.insert(start, Color::Gray);
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            let edges: Vec<usize> = graph.edges[n]
                .iter()
                .filter(|e| e.machine == m && scc_set.contains(&e.to))
                .map(|e| e.to)
                .collect();
            if *i < edges.len() {
                let to = edges[*i];
                *i += 1;
                match color[&to] {
                    Color::Gray => return true,
                    Color::White => {
                        color.insert(to, Color::Gray);
                        stack.push((to, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(n, Color::Black);
                stack.pop();
            }
        }
    }
    false
}

/// Iterative Tarjan SCC.
fn tarjan(graph: &Graph) -> Vec<Vec<usize>> {
    let n = graph.configs.len();
    let mut index_counter = 0usize;
    let mut indices = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit call stack: (node, edge cursor).
    for root in 0..n {
        if indices[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor == 0 {
                indices[v] = index_counter;
                lowlink[v] = index_counter;
                index_counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *cursor < graph.edges[v].len() {
                let w = graph.edges[v][*cursor].to;
                *cursor += 1;
                if indices[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(indices[w]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == indices[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}
