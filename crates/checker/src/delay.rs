//! The delay-bounded scheduler of §5.
//!
//! The scheduler maintains a stack `S` of machine identifiers and a delay
//! score. It always runs the machine on top of `S`; the explored schedules
//! follow the *causal* order of events:
//!
//! * when the scheduled machine creates `m'`, `m'` is pushed on `S`;
//! * when it sends to `m'` and `m' ∉ S`, `m'` is pushed on `S`;
//! * a *delay* moves the top of `S` to the bottom and increments the
//!   score.
//!
//! Given a budget `d`, the scheduler explores every schedule with at most
//! `d` delays (plus all resolutions of ghost `*` choices). With `d = 0`
//! the explored schedule is exactly the causal one the P runtime executes
//! (§5); as `d → ∞` all schedules are covered.

use std::collections::VecDeque;
use std::time::Instant;

use p_semantics::{Config, Engine, ExecOutcome, MachineId, YieldKind};

use crate::engine::{Admit, BoundedSet, ParentMap};
use crate::error::CheckerError;
use crate::explore::{initial_machine, Report, Verifier};
use crate::fingerprint::Fingerprint;
use crate::stats::ExplorationStats;
use crate::trace::{Counterexample, TraceStep};

/// The scheduler stack `S` plus the delay score, as one explorable node
/// component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerState {
    /// The machine stack; front is the top (the machine scheduled next).
    pub stack: VecDeque<MachineId>,
    /// Delays spent so far.
    pub delays: usize,
}

impl SchedulerState {
    /// The initial scheduler state: only the initial machine.
    pub fn initial() -> SchedulerState {
        SchedulerState {
            stack: VecDeque::from([initial_machine()]),
            delays: 0,
        }
    }

    /// Removes machines that cannot currently run, keeping stack order.
    /// Sound because the only ways a waiting machine becomes runnable —
    /// receiving an event or being created — push it back on `S`.
    fn normalize(&mut self, engine: &Engine<'_>, config: &Config) {
        self.stack
            .retain(|&id| config.machine(id).is_some() && engine.enabled(config, id));
    }

    /// Applies `r` delay operations (each moves the top to the bottom).
    fn rotated(&self, r: usize) -> SchedulerState {
        let mut s = self.clone();
        for _ in 0..r {
            if let Some(top) = s.stack.pop_front() {
                s.stack.push_back(top);
            }
        }
        s.delays += r;
        s
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.stack.len() as u32).to_le_bytes());
        for id in &self.stack {
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        out.extend_from_slice(&(self.delays as u64).to_le_bytes());
    }
}

/// Report of a delay-bounded exploration.
#[derive(Debug, Clone)]
pub struct DelayReport {
    /// The safety result and statistics. `stats.unique_states` counts
    /// unique *configurations* (the Figure 7 quantity); scheduler nodes
    /// are reported separately.
    pub report: Report,
    /// The delay budget used.
    pub delay_bound: usize,
    /// Unique (configuration, scheduler state) pairs visited.
    pub scheduler_nodes: usize,
}

impl Verifier<'_> {
    /// Delay-bounded systematic testing with the causal delaying scheduler
    /// of §5.
    ///
    /// # Panics
    ///
    /// Panics on a fatal [`CheckerError`] (a corrupt lowering — an engine
    /// bug, not a property violation). Use
    /// [`Verifier::try_check_delay_bounded`] to handle it.
    pub fn check_delay_bounded(&self, delay_bound: usize) -> DelayReport {
        self.try_check_delay_bounded(delay_bound)
            .expect("delay-bounded search failed; use try_check_delay_bounded to handle errors")
    }

    /// [`Verifier::check_delay_bounded`], surfacing fatal semantics
    /// errors instead of panicking.
    pub fn try_check_delay_bounded(&self, delay_bound: usize) -> Result<DelayReport, CheckerError> {
        let engine = self.engine();
        let start = Instant::now();
        let mut stats = ExplorationStats::default();

        let mut init = engine.initial_config();
        let init_sched = SchedulerState::initial();

        let mut config_states = BoundedSet::new(self.options().max_states);
        let (init_digest, init_len) = init.digest_and_len();
        config_states.admit(Fingerprint::from_u128(init_digest), || init_len);

        // Scheduler nodes are a bounded configuration space times a
        // finite scheduler annotation; the configuration bound above
        // already caps them.
        let mut node_seen = BoundedSet::unbounded();
        let init_node_fp = node_fingerprint(init_digest, &init_sched);
        node_seen.admit(init_node_fp, || 0);

        let mut parents = ParentMap::new();
        let mut stack: Vec<(Config, SchedulerState, Fingerprint, usize)> =
            vec![(init, init_sched, init_node_fp, 0)];

        while let Some((config, mut sched, nfp, depth)) = stack.pop() {
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options().max_depth {
                stats.truncated = true;
                continue;
            }
            let enabled = engine.enabled_machines(&config);
            self.note_diagnostics(&config, &enabled, &mut stats);
            sched.normalize(&engine, &config);
            if sched.stack.is_empty() {
                continue; // quiescent
            }
            let remaining = delay_bound.saturating_sub(sched.delays);
            let max_rot = remaining.min(sched.stack.len().saturating_sub(1));
            for r in 0..=max_rot {
                let rotated = sched.rotated(r);
                let &machine = rotated.stack.front().expect("normalized non-empty stack");
                for mut succ in crate::succ::successors_for(
                    &engine,
                    &config,
                    machine,
                    self.options().granularity,
                )? {
                    stats.transitions += 1;
                    // Parent edges store compact step seeds; only an
                    // error path renders human-readable summaries.
                    let seed = |succ: &mut crate::succ::Successor| {
                        let choices = std::mem::take(&mut succ.choices);
                        crate::trace::StepSeed::from_run(succ.machine, &succ.result, choices)
                    };
                    let mut next_sched = rotated.clone();
                    match &succ.result.outcome {
                        ExecOutcome::Error(e) => {
                            let error = e.clone();
                            let mut trace = parents.reconstruct(nfp, self.program());
                            let choices = std::mem::take(&mut succ.choices);
                            trace.push(TraceStep::from_run(
                                self.program(),
                                succ.machine,
                                &succ.result,
                                choices,
                            ));
                            stats.duration = start.elapsed();
                            stats.unique_states = config_states.len();
                            stats.stored_bytes = config_states.stored_bytes();
                            return Ok(DelayReport {
                                report: Report {
                                    counterexample: Some(Counterexample { error, trace }),
                                    stats,
                                    complete: false,
                                    interrupted: false,
                                },
                                delay_bound,
                                scheduler_nodes: node_seen.len(),
                            });
                        }
                        ExecOutcome::Yield(YieldKind::Sent { to, .. }) => {
                            if !next_sched.stack.contains(to) {
                                next_sched.stack.push_front(*to);
                            }
                        }
                        ExecOutcome::Yield(YieldKind::Created { id, .. }) => {
                            next_sched.stack.push_front(*id);
                        }
                        ExecOutcome::Yield(YieldKind::Internal) => {
                            // Fine-grained runs keep the machine on top.
                        }
                        ExecOutcome::Blocked => {
                            // The machine ran to quiescence; it leaves S
                            // until an event re-enables it.
                            next_sched.stack.retain(|&id| id != machine);
                        }
                        ExecOutcome::Deleted => {
                            next_sched.stack.retain(|&id| id != machine);
                        }
                        ExecOutcome::NeedChoice => {
                            unreachable!("successors_for resolves all choices")
                        }
                    }

                    let (digest, len) = succ.config.digest_and_len();
                    // Bound check BEFORE marking visited: a successor
                    // dropped by `max_states` stays unvisited and
                    // uncounted instead of being hidden forever.
                    if config_states.admit(Fingerprint::from_u128(digest), || len)
                        == Admit::OverBound
                    {
                        stats.truncated = true;
                        continue;
                    }
                    let nfp2 = node_fingerprint(digest, &next_sched);
                    if node_seen.admit(nfp2, || 0) == Admit::New {
                        parents.record(nfp2, nfp, seed(&mut succ));
                        stack.push((succ.config, next_sched, nfp2, depth + 1));
                    }
                }
            }
        }

        stats.duration = start.elapsed();
        stats.unique_states = config_states.len();
        stats.stored_bytes = config_states.stored_bytes();
        Ok(DelayReport {
            report: Report {
                counterexample: None,
                complete: !stats.truncated,
                interrupted: false,
                stats,
            },
            delay_bound,
            scheduler_nodes: node_seen.len(),
        })
    }
}

/// Fingerprints a (configuration, scheduler) node by hashing the
/// configuration's 128-bit digest together with the scheduler encoding —
/// the digest stands in for the canonical bytes (it is a collision-safe
/// function of them), so the node key costs 16 bytes plus the scheduler
/// annotation instead of a full re-encoding of the configuration.
fn node_fingerprint(config_digest: u128, sched: &SchedulerState) -> Fingerprint {
    let mut bytes = Vec::with_capacity(16 + 2 + sched.stack.len() * 4);
    bytes.extend_from_slice(&config_digest.to_le_bytes());
    sched.encode(&mut bytes);
    Fingerprint::of(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::{lower, ForeignEnv};

    #[test]
    fn rotation_moves_top_to_bottom_and_counts_delays() {
        let s = SchedulerState {
            stack: VecDeque::from([MachineId(0), MachineId(1), MachineId(2)]),
            delays: 1,
        };
        let r = s.rotated(1);
        assert_eq!(
            r.stack,
            VecDeque::from([MachineId(1), MachineId(2), MachineId(0)])
        );
        assert_eq!(r.delays, 2);
        // Rotating by the stack length is the identity on the stack.
        let full = s.rotated(3);
        assert_eq!(full.stack, s.stack);
        assert_eq!(full.delays, 4);
    }

    #[test]
    fn rotation_of_empty_stack_is_safe() {
        let s = SchedulerState {
            stack: VecDeque::new(),
            delays: 0,
        };
        let r = s.rotated(5);
        assert!(r.stack.is_empty());
        assert_eq!(r.delays, 5);
    }

    #[test]
    fn normalize_drops_disabled_and_dead_machines() {
        let src = r#"
            event go;
            machine A { state S { defer go; } }
            machine B { state T { entry { delete; } } }
            ghost machine Env {
                var a : id;
                var b : id;
                state D { entry { a := new A(); b := new B(); } }
            }
            main Env();
        "#;
        let program = lower(&p_parser::parse(src).unwrap()).unwrap();
        let engine = p_semantics::Engine::new(&program, ForeignEnv::empty());
        let mut config = engine.initial_config();
        // Run everything to quiescence.
        loop {
            let enabled = engine.enabled_machines(&config);
            let Some(&id) = enabled.first() else { break };
            let mut no = || false;
            engine
                .run_machine(&mut config, id, &mut no, Default::default())
                .unwrap();
        }
        let mut sched = SchedulerState {
            stack: VecDeque::from([MachineId(0), MachineId(1), MachineId(2), MachineId(9)]),
            delays: 0,
        };
        sched.normalize(&engine, &config);
        assert!(
            sched.stack.is_empty(),
            "all machines are blocked, deleted or nonexistent: {sched:?}"
        );
    }

    #[test]
    fn encoding_distinguishes_stack_order_and_delays() {
        let a = SchedulerState {
            stack: VecDeque::from([MachineId(0), MachineId(1)]),
            delays: 0,
        };
        let b = a.rotated(1);
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        a.encode(&mut ea);
        b.encode(&mut eb);
        assert_ne!(ea, eb);
        let mut c = a.clone();
        c.delays = 3;
        let mut ec = Vec::new();
        c.encode(&mut ec);
        assert_ne!(ea, ec);
    }
}
