//! Counterexample traces.

use std::fmt;

use p_semantics::{
    EventId, ExecOutcome, LoweredProgram, MachineId, MachineTypeId, PError, RunResult, YieldKind,
};

use crate::fault::{FaultDecision, FaultKind};

/// One scheduler decision on a counterexample path: which machine ran and
/// what its atomic run did — or, for fault-injection steps, which
/// environment fault was applied to its queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The machine the scheduler ran (for fault steps: the machine whose
    /// queue was tampered with).
    pub machine: MachineId,
    /// Human-readable summary of the run.
    pub summary: String,
    /// The ghost-choice script consumed by the run (empty for faults).
    pub choices: Vec<bool>,
    /// The environment fault this step applied, if it is a fault step
    /// rather than a machine run.
    pub fault: Option<FaultDecision>,
}

impl TraceStep {
    /// Builds a step summary from a run result.
    pub fn from_run(
        program: &LoweredProgram,
        machine: MachineId,
        result: &RunResult,
        choices: Vec<bool>,
    ) -> TraceStep {
        let summary = match &result.outcome {
            ExecOutcome::Yield(YieldKind::Sent {
                to,
                event,
                enqueued,
            }) => format!(
                "sent {} to {}{}",
                program.event_name(*event),
                to,
                if *enqueued {
                    ""
                } else {
                    " (duplicate, dropped)"
                }
            ),
            ExecOutcome::Yield(YieldKind::Created { id, ty }) => {
                format!("created {} of type {}", id, program.machine_name(*ty))
            }
            ExecOutcome::Yield(YieldKind::Internal) => "internal step".to_owned(),
            ExecOutcome::Blocked => "ran to quiescence".to_owned(),
            ExecOutcome::Deleted => "deleted itself".to_owned(),
            ExecOutcome::Error(e) => format!("ERROR: {e}"),
            ExecOutcome::NeedChoice => "needs more choices (internal)".to_owned(),
        };
        TraceStep {
            machine,
            summary,
            choices,
            fault: None,
        }
    }

    /// Builds the step recording an injected environment fault.
    pub fn from_fault(program: &LoweredProgram, decision: &FaultDecision) -> TraceStep {
        let event = program.event_name(decision.event);
        let summary = match decision.kind {
            FaultKind::Drop => format!("FAULT: dropped {event} from queue[{}]", decision.index),
            FaultKind::Dup => format!(
                "FAULT: re-delivered {event} from queue[{}] (bypassing dedup)",
                decision.index
            ),
            FaultKind::Delay => format!(
                "FAULT: delayed {event} from queue[{}] to the back",
                decision.index
            ),
        };
        TraceStep {
            machine: decision.machine,
            summary,
            choices: Vec::new(),
            fault: Some(*decision),
        }
    }
}

/// Allocation-light record of how a state was first reached, stored per
/// visited state in the parent maps. Rendering the human-readable
/// [`TraceStep`] allocates a formatted summary string; a passing
/// exploration records hundreds of thousands of these and renders none,
/// so the maps keep this compact seed and [`StepSeed::render`] runs only
/// along the single reconstructed counterexample path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StepSeed {
    machine: MachineId,
    kind: StepKind,
    choices: Vec<bool>,
}

/// What the recorded atomic run (or fault injection) did — the
/// summary-relevant projection of [`ExecOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepKind {
    Sent {
        to: MachineId,
        event: EventId,
        enqueued: bool,
    },
    Created {
        id: MachineId,
        ty: MachineTypeId,
    },
    Internal,
    Blocked,
    Deleted,
    Fault(FaultDecision),
}

impl StepSeed {
    /// Captures a non-error run result. Error and `NeedChoice` outcomes
    /// never enter a parent map — the search returns (or retries) before
    /// recording them — and are rendered eagerly via
    /// [`TraceStep::from_run`] instead.
    pub(crate) fn from_run(machine: MachineId, result: &RunResult, choices: Vec<bool>) -> StepSeed {
        let kind = match &result.outcome {
            ExecOutcome::Yield(YieldKind::Sent {
                to,
                event,
                enqueued,
            }) => StepKind::Sent {
                to: *to,
                event: *event,
                enqueued: *enqueued,
            },
            ExecOutcome::Yield(YieldKind::Created { id, ty }) => {
                StepKind::Created { id: *id, ty: *ty }
            }
            ExecOutcome::Yield(YieldKind::Internal) => StepKind::Internal,
            ExecOutcome::Blocked => StepKind::Blocked,
            ExecOutcome::Deleted => StepKind::Deleted,
            ExecOutcome::Error(_) | ExecOutcome::NeedChoice => {
                unreachable!("error/incomplete runs are never recorded as parent edges")
            }
        };
        StepSeed {
            machine,
            kind,
            choices,
        }
    }

    /// A minimal seed for table tests: a quiescent run of `machine`,
    /// distinguishable by machine id after rendering.
    #[cfg(test)]
    pub(crate) fn test_blocked(machine: MachineId) -> StepSeed {
        StepSeed {
            machine,
            kind: StepKind::Blocked,
            choices: Vec::new(),
        }
    }

    /// Captures an injected environment fault.
    pub(crate) fn from_fault(decision: &FaultDecision) -> StepSeed {
        StepSeed {
            machine: decision.machine,
            kind: StepKind::Fault(*decision),
            choices: Vec::new(),
        }
    }

    /// Serializes the seed for checkpoint and parent-map spill records.
    ///
    /// Unlike the configuration encoding, this format *is* persisted
    /// (inside checkpoint files), but only ever read back by the same
    /// checkpoint version — the checkpoint header's version field gates
    /// compatibility, so the encoding may change freely alongside it.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.machine.0.to_le_bytes());
        match self.kind {
            StepKind::Sent {
                to,
                event,
                enqueued,
            } => {
                out.push(0);
                out.extend_from_slice(&to.0.to_le_bytes());
                out.extend_from_slice(&event.0.to_le_bytes());
                out.push(enqueued as u8);
            }
            StepKind::Created { id, ty } => {
                out.push(1);
                out.extend_from_slice(&id.0.to_le_bytes());
                out.extend_from_slice(&ty.0.to_le_bytes());
            }
            StepKind::Internal => out.push(2),
            StepKind::Blocked => out.push(3),
            StepKind::Deleted => out.push(4),
            StepKind::Fault(d) => {
                out.push(5);
                out.push(match d.kind {
                    FaultKind::Drop => 0,
                    FaultKind::Dup => 1,
                    FaultKind::Delay => 2,
                });
                out.extend_from_slice(&d.machine.0.to_le_bytes());
                out.extend_from_slice(&(d.index as u32).to_le_bytes());
                out.extend_from_slice(&d.event.0.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.choices.len() as u32).to_le_bytes());
        out.extend(self.choices.iter().map(|&c| c as u8));
    }

    /// Inverse of [`StepSeed::encode`]; `None` on malformed input.
    pub(crate) fn decode(buf: &mut &[u8]) -> Option<StepSeed> {
        use crate::wire::{read_u32, read_u8};
        let machine = MachineId(read_u32(buf)?);
        let kind = match read_u8(buf)? {
            0 => StepKind::Sent {
                to: MachineId(read_u32(buf)?),
                event: EventId(read_u32(buf)?),
                enqueued: read_u8(buf)? != 0,
            },
            1 => StepKind::Created {
                id: MachineId(read_u32(buf)?),
                ty: MachineTypeId(read_u32(buf)?),
            },
            2 => StepKind::Internal,
            3 => StepKind::Blocked,
            4 => StepKind::Deleted,
            5 => {
                let kind = match read_u8(buf)? {
                    0 => FaultKind::Drop,
                    1 => FaultKind::Dup,
                    2 => FaultKind::Delay,
                    _ => return None,
                };
                StepKind::Fault(FaultDecision {
                    kind,
                    machine: MachineId(read_u32(buf)?),
                    index: read_u32(buf)? as usize,
                    event: EventId(read_u32(buf)?),
                })
            }
            _ => return None,
        };
        let n_choices = read_u32(buf)? as usize;
        let mut choices = Vec::new();
        for _ in 0..n_choices {
            choices.push(read_u8(buf)? != 0);
        }
        Some(StepSeed {
            machine,
            kind,
            choices,
        })
    }

    /// Renders the human-readable step. Summaries match what
    /// [`TraceStep::from_run`]/[`TraceStep::from_fault`] produce for the
    /// same outcome.
    pub(crate) fn render(&self, program: &LoweredProgram) -> TraceStep {
        let summary = match self.kind {
            StepKind::Sent {
                to,
                event,
                enqueued,
            } => format!(
                "sent {} to {}{}",
                program.event_name(event),
                to,
                if enqueued {
                    ""
                } else {
                    " (duplicate, dropped)"
                }
            ),
            StepKind::Created { id, ty } => {
                format!("created {} of type {}", id, program.machine_name(ty))
            }
            StepKind::Internal => "internal step".to_owned(),
            StepKind::Blocked => "ran to quiescence".to_owned(),
            StepKind::Deleted => "deleted itself".to_owned(),
            StepKind::Fault(decision) => return TraceStep::from_fault(program, &decision),
        };
        TraceStep {
            machine: self.machine,
            summary,
            choices: self.choices.clone(),
            fault: None,
        }
    }
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine {}: {}", self.machine, self.summary)?;
        if !self.choices.is_empty() {
            write!(f, " [choices: ")?;
            for c in &self.choices {
                write!(f, "{}", if *c { '1' } else { '0' })?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// A safety violation with the schedule that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The error transition taken.
    pub error: PError,
    /// Scheduler decisions from the initial configuration to the error.
    pub trace: Vec<TraceStep>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.error)?;
        writeln!(f, "trace ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::ErrorKind;

    #[test]
    fn step_display_shows_choices() {
        let step = TraceStep {
            machine: MachineId(1),
            summary: "ran to quiescence".into(),
            choices: vec![true, false],
            fault: None,
        };
        assert_eq!(
            step.to_string(),
            "machine #1: ran to quiescence [choices: 10]"
        );
    }

    #[test]
    fn step_seed_round_trips_every_kind() {
        let seeds = [
            StepSeed {
                machine: MachineId(3),
                kind: StepKind::Sent {
                    to: MachineId(1),
                    event: EventId(2),
                    enqueued: false,
                },
                choices: vec![true, false, true],
            },
            StepSeed {
                machine: MachineId(0),
                kind: StepKind::Created {
                    id: MachineId(9),
                    ty: MachineTypeId(4),
                },
                choices: vec![],
            },
            StepSeed::test_blocked(MachineId(7)),
            StepSeed {
                machine: MachineId(1),
                kind: StepKind::Internal,
                choices: vec![false],
            },
            StepSeed {
                machine: MachineId(2),
                kind: StepKind::Deleted,
                choices: vec![],
            },
            StepSeed::from_fault(&FaultDecision {
                kind: FaultKind::Delay,
                machine: MachineId(5),
                index: 2,
                event: EventId(1),
            }),
        ];
        for seed in &seeds {
            let mut bytes = Vec::new();
            seed.encode(&mut bytes);
            let mut cur = &bytes[..];
            let back = StepSeed::decode(&mut cur).expect("round trip");
            assert_eq!(&back, seed);
            assert!(cur.is_empty(), "trailing bytes after {seed:?}");
        }
        // Truncations are rejected, not panicked on.
        let mut bytes = Vec::new();
        seeds[0].encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut cur = &bytes[..cut];
            assert!(StepSeed::decode(&mut cur).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn counterexample_display_lists_steps() {
        let cx = Counterexample {
            error: PError::new(ErrorKind::AssertionFailure, MachineId(0)),
            trace: vec![TraceStep {
                machine: MachineId(0),
                summary: "did things".into(),
                choices: vec![],
                fault: None,
            }],
        };
        let text = cx.to_string();
        assert!(text.contains("assertion failed"));
        assert!(text.contains("1. machine #0"));
    }
}
