//! Counterexample traces.

use std::fmt;

use p_semantics::{ExecOutcome, LoweredProgram, MachineId, PError, RunResult, YieldKind};

use crate::fault::{FaultDecision, FaultKind};

/// One scheduler decision on a counterexample path: which machine ran and
/// what its atomic run did — or, for fault-injection steps, which
/// environment fault was applied to its queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The machine the scheduler ran (for fault steps: the machine whose
    /// queue was tampered with).
    pub machine: MachineId,
    /// Human-readable summary of the run.
    pub summary: String,
    /// The ghost-choice script consumed by the run (empty for faults).
    pub choices: Vec<bool>,
    /// The environment fault this step applied, if it is a fault step
    /// rather than a machine run.
    pub fault: Option<FaultDecision>,
}

impl TraceStep {
    /// Builds a step summary from a run result.
    pub fn from_run(
        program: &LoweredProgram,
        machine: MachineId,
        result: &RunResult,
        choices: Vec<bool>,
    ) -> TraceStep {
        let summary = match &result.outcome {
            ExecOutcome::Yield(YieldKind::Sent {
                to,
                event,
                enqueued,
            }) => format!(
                "sent {} to {}{}",
                program.event_name(*event),
                to,
                if *enqueued {
                    ""
                } else {
                    " (duplicate, dropped)"
                }
            ),
            ExecOutcome::Yield(YieldKind::Created { id, ty }) => {
                format!("created {} of type {}", id, program.machine_name(*ty))
            }
            ExecOutcome::Yield(YieldKind::Internal) => "internal step".to_owned(),
            ExecOutcome::Blocked => "ran to quiescence".to_owned(),
            ExecOutcome::Deleted => "deleted itself".to_owned(),
            ExecOutcome::Error(e) => format!("ERROR: {e}"),
            ExecOutcome::NeedChoice => "needs more choices (internal)".to_owned(),
        };
        TraceStep {
            machine,
            summary,
            choices,
            fault: None,
        }
    }

    /// Builds the step recording an injected environment fault.
    pub fn from_fault(program: &LoweredProgram, decision: &FaultDecision) -> TraceStep {
        let event = program.event_name(decision.event);
        let summary = match decision.kind {
            FaultKind::Drop => format!("FAULT: dropped {event} from queue[{}]", decision.index),
            FaultKind::Dup => format!(
                "FAULT: re-delivered {event} from queue[{}] (bypassing dedup)",
                decision.index
            ),
            FaultKind::Delay => format!(
                "FAULT: delayed {event} from queue[{}] to the back",
                decision.index
            ),
        };
        TraceStep {
            machine: decision.machine,
            summary,
            choices: Vec::new(),
            fault: Some(*decision),
        }
    }
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine {}: {}", self.machine, self.summary)?;
        if !self.choices.is_empty() {
            write!(f, " [choices: ")?;
            for c in &self.choices {
                write!(f, "{}", if *c { '1' } else { '0' })?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// A safety violation with the schedule that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The error transition taken.
    pub error: PError,
    /// Scheduler decisions from the initial configuration to the error.
    pub trace: Vec<TraceStep>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.error)?;
        writeln!(f, "trace ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::ErrorKind;

    #[test]
    fn step_display_shows_choices() {
        let step = TraceStep {
            machine: MachineId(1),
            summary: "ran to quiescence".into(),
            choices: vec![true, false],
            fault: None,
        };
        assert_eq!(
            step.to_string(),
            "machine #1: ran to quiescence [choices: 10]"
        );
    }

    #[test]
    fn counterexample_display_lists_steps() {
        let cx = Counterexample {
            error: PError::new(ErrorKind::AssertionFailure, MachineId(0)),
            trace: vec![TraceStep {
                machine: MachineId(0),
                summary: "did things".into(),
                choices: vec![],
                fault: None,
            }],
        };
        let text = cx.to_string();
        assert!(text.contains("assertion failed"));
        assert!(text.contains("1. machine #0"));
    }
}
