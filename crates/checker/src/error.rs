//! Typed checker errors.
//!
//! Before checkpointing and disk spilling, exploration could not fail —
//! the engine had no I/O and the worker channels were structurally
//! panic-free, so `unwrap()` was (mostly) honest. A crash-safety layer
//! changes that: spill files and checkpoint writes can hit real I/O
//! errors, resume can be handed a stale or corrupted snapshot, and none
//! of those should take the process down with a panic. This module is
//! the error type those paths surface, all the way out through
//! `p verify`'s exit codes.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// An error from the exploration engine's fallible paths.
///
/// `Verifier::try_check_exhaustive` returns this; the plain
/// `check_exhaustive` remains infallible because without checkpoint,
/// resume, or mem-limit options none of these variants can arise.
#[derive(Debug)]
pub enum CheckerError {
    /// An I/O operation on a checkpoint or spill file failed.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A checkpoint file is malformed: bad magic, unknown version,
    /// checksum mismatch, or undecodable payload.
    CheckpointFormat(String),
    /// A structurally valid checkpoint was written by a different
    /// program or different semantic checker options.
    CheckpointMismatch(String),
    /// An exploration worker thread panicked.
    WorkerPanic(String),
    /// The semantics engine rejected an execution request — a dead-machine
    /// step or a corrupt continuation/lowering. These indicate a checker or
    /// lowering bug, not a property violation of the program under test.
    Semantics(p_semantics::ExecError),
    /// A compiled execution backend disagreed with the interpreter (wrong
    /// program digest, or an unsupported program shape for the fast path).
    CompiledBackend(String),
}

impl CheckerError {
    /// Wraps an I/O error with the path it occurred on.
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> CheckerError {
        CheckerError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for CheckerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckerError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            CheckerError::CheckpointFormat(why) => write!(f, "invalid checkpoint: {why}"),
            CheckerError::CheckpointMismatch(why) => write!(f, "stale checkpoint: {why}"),
            CheckerError::WorkerPanic(why) => write!(f, "exploration worker panicked: {why}"),
            CheckerError::Semantics(e) => write!(f, "semantics error: {e}"),
            CheckerError::CompiledBackend(why) => write!(f, "compiled backend: {why}"),
        }
    }
}

impl From<p_semantics::ExecError> for CheckerError {
    fn from(e: p_semantics::ExecError) -> CheckerError {
        CheckerError::Semantics(e)
    }
}

impl std::error::Error for CheckerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckerError::Io { source, .. } => Some(source),
            CheckerError::Semantics(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CheckerError::io(
            "/tmp/ckpt/checkpoint.bin",
            io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        );
        let text = e.to_string();
        assert!(text.contains("checkpoint.bin"), "{text}");
        assert!(text.contains("denied"), "{text}");
        assert!(
            CheckerError::CheckpointMismatch("program digest differs".into())
                .to_string()
                .contains("stale checkpoint"),
        );
    }
}
