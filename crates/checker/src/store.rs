//! Disk-backed cold tier for the visited set and parent map.
//!
//! Under `--mem-limit`, the exploration engine keeps only a bounded hot
//! tier of fingerprints in RAM and spills the rest here: sorted runs of
//! fixed-width keys on disk, fronted by a bloom filter so the common
//! case — a genuinely new state — costs zero I/O. This is the classic
//! explicit-state recipe (disk-tiered visited stores in the
//! distributed-Murphi/Spin lineage) adapted to the checker's 128-bit
//! fingerprints.
//!
//! One [`RunStore`] abstraction serves both consumers:
//!
//! * the **visited set** stores keys with an empty payload (plain and
//!   POR modes) or a 16-byte canonical-representative fingerprint
//!   (symmetry mode);
//! * the **parent map** stores keys with a variable-length payload
//!   (parent fingerprint + encoded [`StepSeed`](crate::trace::StepSeed))
//!   so counterexample reconstruction stays concrete even for spilled
//!   states.
//!
//! Each spilled batch becomes one *run*: an index file of sorted
//! `(key: u128, offset: u64, len: u32)` records plus a heap file of
//! concatenated payloads. Lookup is a bloom probe, then a seek-based
//! binary search per run (newest first). When the run count reaches
//! [`MERGE_FANIN`], all runs are streamed through a k-way merge into
//! one, keeping per-lookup cost logarithmic instead of linear in the
//! number of spills.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::CheckerError;
use crate::wire;

/// Bytes of one index record: key `u128` + heap offset `u64` + payload
/// length `u32`.
const INDEX_RECORD: usize = 16 + 8 + 4;

/// Run count that triggers a full k-way merge back to one run.
const MERGE_FANIN: usize = 8;

/// Reads exactly `buf.len()` bytes at `offset` through a shared file
/// handle (`&File` implements `Seek`/`Read`; callers serialize access —
/// the sequential engine is single-threaded and the parallel engine
/// keeps the store behind a mutex).
fn read_exact_at(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// A blocked bloom filter front: two probes per key derived from the
/// key's two 64-bit halves. Sized at ~16 bits per record (≈1.4% false
/// positives with two probes), rebuilt from the run indexes when the
/// record count outgrows it.
struct Bloom {
    bits: Vec<u64>,
}

impl Bloom {
    fn with_bit_count(bits: usize) -> Bloom {
        Bloom {
            bits: vec![0; bits.div_ceil(64)],
        }
    }

    fn capacity_bits(&self) -> usize {
        self.bits.len() * 64
    }

    fn probes(&self, key: u128) -> (usize, usize) {
        // The fingerprints are already uniform SipHash outputs; fold the
        // halves with distinct odd multipliers to decorrelate the probes.
        let mask = self.capacity_bits() - 1; // capacity is a power of two
        let a = (key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let b = ((key >> 64) as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        (a as usize & mask, b as usize & mask)
    }

    fn insert(&mut self, key: u128) {
        let (a, b) = self.probes(key);
        self.bits[a / 64] |= 1 << (a % 64);
        self.bits[b / 64] |= 1 << (b % 64);
    }

    fn may_contain(&self, key: u128) -> bool {
        let (a, b) = self.probes(key);
        self.bits[a / 64] & (1 << (a % 64)) != 0 && self.bits[b / 64] & (1 << (b % 64)) != 0
    }
}

/// One sorted run on disk.
struct Run {
    index_path: PathBuf,
    heap_path: PathBuf,
    index: File,
    heap: File,
    entries: u64,
}

/// Counters describing a store's spill activity, surfaced through
/// exploration stats and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpillCounters {
    /// Records currently resident on disk.
    pub records: u64,
    /// Runs written over the store's lifetime (merges included).
    pub runs_created: u64,
    /// Bytes written over the store's lifetime (index + heap).
    pub bytes_written: u64,
    /// Lookups answered from disk (key found in a run).
    pub hits: u64,
}

/// A log-structured store of sorted fingerprint-keyed runs.
pub(crate) struct RunStore {
    dir: PathBuf,
    /// File-name prefix distinguishing co-located stores
    /// (`visited-…`, `parents-…`).
    tag: &'static str,
    runs: Vec<Run>,
    bloom: Bloom,
    next_run_id: u64,
    pub(crate) counters: SpillCounters,
}

impl std::fmt::Debug for RunStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStore")
            .field("tag", &self.tag)
            .field("runs", &self.runs.len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl RunStore {
    /// Creates an empty store rooted at `dir` (created if missing).
    pub(crate) fn create(dir: &Path, tag: &'static str) -> Result<RunStore, CheckerError> {
        fs::create_dir_all(dir).map_err(|e| CheckerError::io(dir, e))?;
        Ok(RunStore {
            dir: dir.to_path_buf(),
            tag,
            runs: Vec::new(),
            bloom: Bloom::with_bit_count(1 << 16),
            next_run_id: 0,
            counters: SpillCounters::default(),
        })
    }

    /// Spills `batch` as one new run, then merges if the run count hit
    /// the fan-in. Keys must be unique (the hot tiers guarantee a key
    /// is spilled at most once); order is irrelevant.
    pub(crate) fn spill(&mut self, mut batch: Vec<(u128, Vec<u8>)>) -> Result<(), CheckerError> {
        if batch.is_empty() {
            return Ok(());
        }
        batch.sort_unstable_by_key(|&(key, _)| key);
        self.grow_bloom_for(self.counters.records + batch.len() as u64)?;
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        let index_path = self.dir.join(format!("{}-{run_id:06}.idx", self.tag));
        let heap_path = self.dir.join(format!("{}-{run_id:06}.heap", self.tag));
        {
            let index_file =
                File::create(&index_path).map_err(|e| CheckerError::io(&index_path, e))?;
            let heap_file =
                File::create(&heap_path).map_err(|e| CheckerError::io(&heap_path, e))?;
            let mut index = BufWriter::new(index_file);
            let mut heap = BufWriter::new(heap_file);
            let mut offset = 0u64;
            for (key, payload) in &batch {
                index
                    .write_all(&key.to_le_bytes())
                    .and_then(|()| index.write_all(&offset.to_le_bytes()))
                    .and_then(|()| index.write_all(&(payload.len() as u32).to_le_bytes()))
                    .map_err(|e| CheckerError::io(&index_path, e))?;
                heap.write_all(payload)
                    .map_err(|e| CheckerError::io(&heap_path, e))?;
                offset += payload.len() as u64;
                self.bloom.insert(*key);
            }
            index
                .flush()
                .map_err(|e| CheckerError::io(&index_path, e))?;
            heap.flush().map_err(|e| CheckerError::io(&heap_path, e))?;
            self.counters.bytes_written += batch.len() as u64 * INDEX_RECORD as u64 + offset;
        }
        self.runs.push(Run {
            index: File::open(&index_path).map_err(|e| CheckerError::io(&index_path, e))?,
            heap: File::open(&heap_path).map_err(|e| CheckerError::io(&heap_path, e))?,
            index_path,
            heap_path,
            entries: batch.len() as u64,
        });
        self.counters.records += batch.len() as u64;
        self.counters.runs_created += 1;
        if self.runs.len() >= MERGE_FANIN {
            self.merge_all()?;
        }
        Ok(())
    }

    /// Whether `key` is on disk, counting a hit. No heap I/O.
    pub(crate) fn contains(&mut self, key: u128) -> Result<bool, CheckerError> {
        let found = self.find(key)?.is_some();
        if found {
            self.counters.hits += 1;
        }
        Ok(found)
    }

    /// The payload stored for `key`, if present (empty payloads come
    /// back as an empty vec). Counts a hit when found.
    pub(crate) fn get(&mut self, key: u128) -> Result<Option<Vec<u8>>, CheckerError> {
        let Some((run_ix, offset, len)) = self.find(key)? else {
            return Ok(None);
        };
        self.counters.hits += 1;
        let mut payload = vec![0u8; len as usize];
        let run = &self.runs[run_ix];
        read_exact_at(&run.heap, offset, &mut payload)
            .map_err(|e| CheckerError::io(&run.heap_path, e))?;
        Ok(Some(payload))
    }

    /// Locates `key`: bloom probe, then per-run binary search over the
    /// index records, newest run first.
    fn find(&self, key: u128) -> Result<Option<(usize, u64, u32)>, CheckerError> {
        if self.runs.is_empty() || !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let mut record = [0u8; INDEX_RECORD];
        for (run_ix, run) in self.runs.iter().enumerate().rev() {
            let (mut lo, mut hi) = (0u64, run.entries);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                read_exact_at(&run.index, mid * INDEX_RECORD as u64, &mut record)
                    .map_err(|e| CheckerError::io(&run.index_path, e))?;
                let mut cur = &record[..];
                let found = wire::read_u128(&mut cur).expect("index record");
                match found.cmp(&key) {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => {
                        let offset = wire::read_u64(&mut cur).expect("index record");
                        let len = wire::read_u32(&mut cur).expect("index record");
                        return Ok(Some((run_ix, offset, len)));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Streams every run through a k-way merge into a single run.
    /// Payload bytes are copied run-sequentially (each run's heap was
    /// written in index order), so the merge is pure streaming I/O.
    fn merge_all(&mut self) -> Result<(), CheckerError> {
        struct Head {
            key: u128,
            len: u32,
            index: BufReader<File>,
            heap: BufReader<File>,
            remaining: u64,
        }
        fn advance(head: &mut Head, path: &Path) -> Result<bool, CheckerError> {
            if head.remaining == 0 {
                return Ok(false);
            }
            head.remaining -= 1;
            let mut record = [0u8; INDEX_RECORD];
            head.index
                .read_exact(&mut record)
                .map_err(|e| CheckerError::io(path, e))?;
            let mut cur = &record[..];
            head.key = wire::read_u128(&mut cur).expect("index record");
            let _offset = wire::read_u64(&mut cur).expect("index record");
            head.len = wire::read_u32(&mut cur).expect("index record");
            Ok(true)
        }

        let old_runs = std::mem::take(&mut self.runs);
        let mut heads = Vec::new();
        for run in &old_runs {
            let index = BufReader::new(
                File::open(&run.index_path).map_err(|e| CheckerError::io(&run.index_path, e))?,
            );
            let heap = BufReader::new(
                File::open(&run.heap_path).map_err(|e| CheckerError::io(&run.heap_path, e))?,
            );
            let mut head = Head {
                key: 0,
                len: 0,
                index,
                heap,
                remaining: run.entries,
            };
            if advance(&mut head, &run.index_path)? {
                heads.push((head, run.index_path.clone(), run.heap_path.clone()));
            }
        }

        let run_id = self.next_run_id;
        self.next_run_id += 1;
        let index_path = self.dir.join(format!("{}-{run_id:06}.idx", self.tag));
        let heap_path = self.dir.join(format!("{}-{run_id:06}.heap", self.tag));
        let mut entries = 0u64;
        {
            let mut index = BufWriter::new(
                File::create(&index_path).map_err(|e| CheckerError::io(&index_path, e))?,
            );
            let mut heap = BufWriter::new(
                File::create(&heap_path).map_err(|e| CheckerError::io(&heap_path, e))?,
            );
            let mut offset = 0u64;
            let mut payload = Vec::new();
            while !heads.is_empty() {
                let min_ix = heads
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (h, _, _))| h.key)
                    .map(|(i, _)| i)
                    .expect("heads nonempty");
                let (head, idx_path, hp_path) = &mut heads[min_ix];
                payload.resize(head.len as usize, 0);
                head.heap
                    .read_exact(&mut payload)
                    .map_err(|e| CheckerError::io(&*hp_path, e))?;
                index
                    .write_all(&head.key.to_le_bytes())
                    .and_then(|()| index.write_all(&offset.to_le_bytes()))
                    .and_then(|()| index.write_all(&(payload.len() as u32).to_le_bytes()))
                    .map_err(|e| CheckerError::io(&index_path, e))?;
                heap.write_all(&payload)
                    .map_err(|e| CheckerError::io(&heap_path, e))?;
                offset += payload.len() as u64;
                entries += 1;
                let idx_path = idx_path.clone();
                if !advance(head, &idx_path)? {
                    heads.swap_remove(min_ix);
                }
            }
            index
                .flush()
                .map_err(|e| CheckerError::io(&index_path, e))?;
            heap.flush().map_err(|e| CheckerError::io(&heap_path, e))?;
            self.counters.bytes_written += entries * INDEX_RECORD as u64 + offset;
        }
        for run in old_runs {
            // Best-effort cleanup; a leftover file is dead weight, not
            // a correctness problem.
            let _ = fs::remove_file(&run.index_path);
            let _ = fs::remove_file(&run.heap_path);
        }
        self.runs.push(Run {
            index: File::open(&index_path).map_err(|e| CheckerError::io(&index_path, e))?,
            heap: File::open(&heap_path).map_err(|e| CheckerError::io(&heap_path, e))?,
            index_path,
            heap_path,
            entries,
        });
        self.counters.runs_created += 1;
        Ok(())
    }

    /// Every `(key, payload)` on disk, for checkpoint serialization.
    /// Materializes the whole cold tier; checkpoints already hold the
    /// full visited summary in memory while writing.
    pub(crate) fn iter_all(&self) -> Result<Vec<(u128, Vec<u8>)>, CheckerError> {
        let mut all = Vec::new();
        let mut record = [0u8; INDEX_RECORD];
        for run in &self.runs {
            let mut index = BufReader::new(
                File::open(&run.index_path).map_err(|e| CheckerError::io(&run.index_path, e))?,
            );
            let mut heap = BufReader::new(
                File::open(&run.heap_path).map_err(|e| CheckerError::io(&run.heap_path, e))?,
            );
            for _ in 0..run.entries {
                index
                    .read_exact(&mut record)
                    .map_err(|e| CheckerError::io(&run.index_path, e))?;
                let mut cur = &record[..];
                let key = wire::read_u128(&mut cur).expect("index record");
                let _offset = wire::read_u64(&mut cur).expect("index record");
                let len = wire::read_u32(&mut cur).expect("index record");
                let mut payload = vec![0u8; len as usize];
                heap.read_exact(&mut payload)
                    .map_err(|e| CheckerError::io(&run.heap_path, e))?;
                all.push((key, payload));
            }
        }
        Ok(all)
    }

    /// Grows (and rebuilds) the bloom filter when `target` records
    /// would exceed ~16 bits per record of capacity.
    fn grow_bloom_for(&mut self, target: u64) -> Result<(), CheckerError> {
        let wanted = (target.saturating_mul(16) as usize)
            .next_power_of_two()
            .max(1 << 16);
        if wanted <= self.bloom.capacity_bits() {
            return Ok(());
        }
        let mut bloom = Bloom::with_bit_count(wanted);
        let mut record = [0u8; INDEX_RECORD];
        for run in &self.runs {
            let mut index = BufReader::new(
                File::open(&run.index_path).map_err(|e| CheckerError::io(&run.index_path, e))?,
            );
            for _ in 0..run.entries {
                index
                    .read_exact(&mut record)
                    .map_err(|e| CheckerError::io(&run.index_path, e))?;
                let mut cur = &record[..];
                bloom.insert(wire::read_u128(&mut cur).expect("index record"));
            }
        }
        self.bloom = bloom;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p-store-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A deterministic pseudo-fingerprint stream (splitmix-style), so
    /// tests exercise sparse 128-bit keys without a RNG dependency.
    fn key(i: u64) -> u128 {
        let mut z = (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z as u128) << 64) | (z ^ (z >> 31)) as u128
    }

    #[test]
    fn spill_lookup_and_payload_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut store = RunStore::create(&dir, "visited").unwrap();
        let batch: Vec<(u128, Vec<u8>)> = (0..500)
            .map(|i| (key(i), key(i + 1000).to_le_bytes()[..7].to_vec()))
            .collect();
        store.spill(batch.clone()).unwrap();
        for (k, payload) in &batch {
            assert!(store.contains(*k).unwrap());
            assert_eq!(store.get(*k).unwrap().as_deref(), Some(&payload[..]));
        }
        assert!(!store.contains(key(9_999)).unwrap());
        assert_eq!(store.get(key(9_999)).unwrap(), None);
        assert_eq!(store.counters.records, 500);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn many_spills_merge_and_stay_complete() {
        let dir = temp_dir("merge");
        let mut store = RunStore::create(&dir, "visited").unwrap();
        // 20 batches of 64: crosses the merge fan-in twice.
        for b in 0..20u64 {
            let batch: Vec<(u128, Vec<u8>)> =
                (0..64).map(|i| (key(b * 64 + i), vec![b as u8])).collect();
            store.spill(batch).unwrap();
        }
        assert!(
            store.runs.len() < MERGE_FANIN,
            "merge must bound the run count, have {}",
            store.runs.len()
        );
        assert_eq!(store.counters.records, 20 * 64);
        for b in 0..20u64 {
            for i in 0..64 {
                assert_eq!(
                    store.get(key(b * 64 + i)).unwrap(),
                    Some(vec![b as u8]),
                    "key {b}/{i} lost"
                );
            }
        }
        let mut all = store.iter_all().unwrap();
        all.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(all.len(), 20 * 64);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "duplicate keys");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payloads_cost_no_heap() {
        let dir = temp_dir("empty");
        let mut store = RunStore::create(&dir, "visited").unwrap();
        let batch: Vec<(u128, Vec<u8>)> = (0..100).map(|i| (key(i), Vec::new())).collect();
        store.spill(batch).unwrap();
        assert!(store.contains(key(42)).unwrap());
        assert_eq!(store.get(key(42)).unwrap(), Some(Vec::new()));
        let heap_bytes: u64 = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "heap"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert_eq!(heap_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bloom_grows_without_losing_members() {
        let dir = temp_dir("bloom");
        let mut store = RunStore::create(&dir, "visited").unwrap();
        // Enough records to force at least one bloom rebuild past the
        // 2^16-bit floor.
        let n = 8_000u64;
        store
            .spill((0..n).map(|i| (key(i), Vec::new())).collect())
            .unwrap();
        assert!(store.bloom.capacity_bits() > 1 << 16);
        for i in (0..n).step_by(97) {
            assert!(store.contains(key(i)).unwrap(), "lost key {i}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
